"""Ablation benchmarks for the design choices argued in prose.

1. Placement (§4.2): similarity vs random — covering filters above
   stage 1 and forwarded event copies.
2. Wildcard routing (§4.4): higher-stage attachment vs naive stage-1 —
   max stage-1 event load.
3. Hierarchy depth (§3.2): per-node RLC vs number of stages.
"""

from repro.experiments import ablations
from repro.experiments.common import ScenarioConfig

BASE = ScenarioConfig(
    stage_sizes=(50, 10, 1),
    n_subscribers=400,
    n_events=400,
    n_years=12,
    n_conferences=30,
    n_authors=200,
    n_records=800,
    sibling_rate=0.06,
)


def test_placement_ablation(benchmark, once, report):
    ablation = once(benchmark, ablations.run_placement_ablation, BASE)
    similarity_filters, random_filters = ablation.upper_stage_filters()
    similarity_forwarded, random_forwarded = ablation.forwarded_messages()

    report()
    report("=== Ablation §4.2: similarity vs random placement ===")
    report(f"covering filters above stage 1: {similarity_filters} vs {random_filters}")
    report(f"forwarded event copies:         {similarity_forwarded} vs {random_forwarded}")

    assert similarity_filters <= random_filters
    assert similarity_forwarded <= random_forwarded


def test_wildcard_ablation(benchmark, once, report):
    ablation = once(
        benchmark, ablations.run_wildcard_ablation, BASE, wildcard_rate=0.3
    )
    routed, naive = ablation.max_stage1_load()

    report()
    report("=== Ablation §4.4: wildcard routing vs naive stage-1 attach ===")
    report(f"max events at a stage-1 node: {routed} (routed) vs {naive} (naive)")

    assert routed <= naive


def test_depth_ablation(benchmark, once, report):
    configs = ((1,), (10, 1), (50, 10, 1), (100, 50, 10, 1))
    points = once(benchmark, ablations.run_depth_ablation, BASE, configs)

    report()
    report("=== Ablation §3.2: hierarchy depth vs per-node load ===")
    report(ablations.render_depth(points))

    assert points[-1].max_node_rlc < points[0].max_node_rlc
    assert points[-1].messages > points[0].messages


def _run_bounded_cluster_scenario(compact):
    """Example-5-shaped workload: clusters of filters differing only in a
    numeric bound, with bounds kept through stage 2 so covering merges
    (the g1 collapse) have something to widen."""
    import random

    from repro.core.engine import MultiStageEventSystem
    from repro.events.base import PropertyEvent
    from repro.workloads.subscriptions import SubscriptionGenerator

    generator = SubscriptionGenerator(
        [("class", 1), ("category", 12)], numeric_attribute="price"
    )
    # Covering aggregation is pinned off: it would keep the redundant
    # price bounds from ever reaching stage 2, leaving the compaction
    # merge under test nothing to collapse.
    system = MultiStageEventSystem(
        stage_sizes=(10, 3, 1), seed=5, compact=compact, aggregate=False
    )
    system.advertise(
        "Deal", schema=("class", "category", "price"),
        stage_prefixes=[3, 3, 3, 1],
    )
    rng = random.Random(9)
    for index, filter_ in enumerate(
        generator.clustered_population(rng, cluster_count=15, cluster_size=8)
    ):
        subscriber = system.create_subscriber(f"s{index}")
        system.subscribe(subscriber, filter_, event_class="Deal")
        system.drain()
    publisher = system.create_publisher()
    event_rng = random.Random(10)
    for _ in range(300):
        publisher.publish(PropertyEvent({
            "class": "class-0",
            "category": f"category-{event_rng.randrange(12)}",
            "price": round(event_rng.uniform(10.0, 1000.0), 2),
        }))
    system.drain()
    filters_upper = sum(
        len(node._match_engine())
        for stage in (1, 2)
        for node in system.hierarchy.nodes(stage)
    )
    delivered = sum(s.counters.events_delivered for s in system.subscribers)
    return filters_upper, delivered


def test_compaction_ablation(benchmark, once, report):
    def run_both():
        return (
            _run_bounded_cluster_scenario(compact=False),
            _run_bounded_cluster_scenario(compact=True),
        )

    (plain_filters, plain_delivered), (compacted_filters, compacted_delivered) = once(
        benchmark, run_both
    )

    report()
    report("=== Ablation §4: covering-merge table compaction (g1 collapse) ===")
    report(
        f"stage-1+2 effective filters: {plain_filters} (plain) vs "
        f"{compacted_filters} (compacted)"
    )
    report(f"deliveries: {plain_delivered} vs {compacted_delivered} (must match)")

    assert compacted_filters < plain_filters
    assert plain_delivered == compacted_delivered
