"""Acceptance gates for the flow-control / overload subsystem.

Four gates keep backpressure honest:

1. **Bounded memory**: at 10x saturation with flow control on, the peak
   number of events queued anywhere in the system (broker inbound and
   outbound queues plus the publisher's credit-blocked local queue) must
   stay at or below the sum of the configured queue capacities — the
   memory bound the subsystem exists to enforce.
2. **Do no harm**: below saturation (0.5x) flow control must be
   invisible — zero events shed anywhere, zero rate-limit refusals, and
   goodput identical to the uncontrolled baseline.
3. **Graceful degradation**: at and past saturation, SLO-bounded goodput
   with flow control must be at least the uncontrolled baseline's — a
   system that sheds at the edge must beat one that queues without
   bound and blows its latency budget.
4. **Determinism**: two same-seed 10x runs with tracing on must produce
   byte-identical shed/credit/overload span dumps and equal shed counts.
"""

from dataclasses import replace

from repro.experiments.overload import (
    OverloadConfig,
    queue_capacity_budget,
    run_overload,
    run_point,
)

CONFIG = OverloadConfig()
SATURATION_MULTIPLIER = 10.0


def test_bounded_memory_gate(report):
    """Gate: controlled peak queued <= sum of configured capacities."""
    budget = queue_capacity_budget(CONFIG)
    point = run_point(CONFIG, SATURATION_MULTIPLIER, controlled=True)
    report()
    report("=== Bounded memory gate (flow on, 10x saturation) ===")
    report(f"offered            : {point.offered}")
    report(f"accepted           : {point.accepted}")
    report(f"shed (publisher)   : {point.shed_publisher}")
    report(f"shed (brokers)     : {point.shed_brokers}")
    report(f"peak queued        : {point.peak_queued}")
    report(f"capacity budget    : {budget}")
    assert point.peak_queued <= budget, (
        f"peak queued {point.peak_queued} exceeds the configured capacity "
        f"budget {budget} — a bounded queue is leaking"
    )
    assert point.offered > point.accepted, (
        "a 10x overload run accepted every offered event — backpressure "
        "never engaged"
    )
    # After the drain tail the system must not be sitting on stuck
    # events: queues drain once the open-loop source stops.
    assert point.final_queued <= CONFIG.flow.link_window, (
        f"{point.final_queued} events still queued after the drain tail — "
        "the credit loop deadlocked"
    )


def test_no_shedding_below_saturation_gate(report):
    """Gate: at 0.5x offered load, flow control is invisible."""
    controlled = run_point(CONFIG, 0.5, controlled=True)
    baseline = run_point(CONFIG, 0.5, controlled=False)
    report()
    report("=== Do-no-harm gate (0.5x saturation) ===")
    report(f"controlled: accepted={controlled.accepted}/{controlled.offered} "
           f"goodput={controlled.goodput:.1f}/s shed={controlled.shed_total} "
           f"rate_limited={controlled.rate_limited}")
    report(f"baseline  : accepted={baseline.accepted}/{baseline.offered} "
           f"goodput={baseline.goodput:.1f}/s")
    assert controlled.shed_total == 0, (
        f"{controlled.shed_total} events shed below saturation"
    )
    assert controlled.rate_limited == 0, (
        f"{controlled.rate_limited} publishes rate-limited below saturation "
        "(no publisher_rate is configured)"
    )
    assert controlled.accepted == controlled.offered, (
        "publishes refused below saturation"
    )
    assert controlled.good_deliveries == baseline.good_deliveries, (
        "flow control changed delivery outcomes below saturation"
    )


def test_goodput_under_overload_gate(report):
    """Gate: SLO goodput with flow >= uncontrolled, at and past saturation."""
    report()
    report("=== Graceful degradation gate ===")
    for multiplier in (1.0, 2.0, SATURATION_MULTIPLIER):
        controlled = run_point(CONFIG, multiplier, controlled=True)
        baseline = run_point(CONFIG, multiplier, controlled=False)
        report(f"{multiplier:g}x: controlled goodput {controlled.goodput:.1f}/s "
               f"(p50 {controlled.p50_latency:.3f}s), uncontrolled "
               f"{baseline.goodput:.1f}/s (p50 {baseline.p50_latency:.3f}s)")
        assert controlled.goodput >= baseline.goodput, (
            f"at {multiplier:g}x saturation, flow control degraded goodput: "
            f"{controlled.goodput:.1f}/s < {baseline.goodput:.1f}/s"
        )


def test_flow_determinism_gate(report):
    """Gate: same seed => identical shed/credit/overload traces."""
    first = run_point(CONFIG, SATURATION_MULTIPLIER, controlled=True,
                      tracing=True)
    second = run_point(replace(CONFIG), SATURATION_MULTIPLIER,
                       controlled=True, tracing=True)

    kinds = ("shed", "credit-grant", "overload")
    dump_a = first.system.tracer.dump(kinds=kinds)
    dump_b = second.system.tracer.dump(kinds=kinds)
    report()
    report("=== Flow determinism gate (10x saturation, flow on) ===")
    report(f"flow spans: {len(first.system.tracer.kinds(*kinds))}, "
           f"dump size {len(dump_a)} bytes")
    report(f"shed counts: {first.shed_total} vs {second.shed_total}")
    assert first.shed_total == second.shed_total, (
        "same-seed runs shed different event counts"
    )
    assert dump_a == dump_b, "same-seed flow-control traces differ"
    assert first.shed_total > 0, (
        "a traced 10x run shed nothing — the gate is vacuous"
    )


def test_overload_sweep_report(report, once, benchmark):
    """Regenerate (and time) the full overload sweep table."""
    from repro.experiments.overload import render

    result = once(benchmark, run_overload, CONFIG)
    report()
    report(render(result))
