"""Shared configuration for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper (or
an ablation of a design choice DESIGN.md calls out).  The benchmarks
print the regenerated rows/series — the artifact of the reproduction —
and time the underlying run via pytest-benchmark.

Scale note: the macro benchmarks run the paper's full §5.2 configuration
(100/10/1 nodes, 1000 subscriptions, 1000 events); a run takes on the
order of a second, so pedantic single-round timing is used.
"""

import os
import sys

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single measured round (macro scenarios)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once():
    return run_once


@pytest.fixture()
def report(request):
    """Emit reproduction output past pytest's capture, and archive it.

    The regenerated tables/series are the *artifact* of a benchmark run,
    so they must reach the terminal (and any tee'd log) even without
    ``-s``; a copy lands in ``benchmarks/results/<test>.txt``.
    """
    lines = []
    capman = request.config.pluginmanager.getplugin("capturemanager")

    def emit(text: str = "") -> None:
        lines.append(str(text))
        if capman is not None:
            with capman.global_and_fixture_disabled():
                sys.stdout.write(str(text) + "\n")
                sys.stdout.flush()
        else:
            sys.stdout.write(str(text) + "\n")

    yield emit
    if lines:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        safe_name = request.node.name.replace("/", "_").replace("[", "-").rstrip("]")
        path = os.path.join(RESULTS_DIR, f"{safe_name}.txt")
        with open(path, "w") as f:
            f.write("\n".join(lines) + "\n")
