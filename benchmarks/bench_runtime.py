"""Wall-clock smoke benchmark: the real-runtime backends vs the simulator.

Not a reproduction of a paper table — a release gate for the
real-runtime backends (DESIGN §13/§14).  The same pub/sub workload runs
on each runtime; the socket-based sides must finish within a hard
wall-clock budget and deliver the same event sets, or the CI gate jobs
fail.  The measured numbers (events/s over real sockets vs simulated
ones, one-loop vs one-process-per-broker) land in
``benchmarks/results/``.
"""

import time

from repro.core.engine import MultiStageEventSystem

QUOTE_SCHEMA = ("class", "symbol", "price")
EVENT_COUNT = 200
#: Hard ceiling for the socket run; generous (CI machines are noisy)
#: but low enough to catch a stalled loop or a reconnect storm.
WALL_CLOCK_BUDGET_S = 30.0


class Quote:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


def run_workload(runtime):
    system = MultiStageEventSystem(stage_sizes=(3, 1), seed=1, runtime=runtime)
    try:
        system.register_type(Quote)
        system.advertise("Quote", schema=QUOTE_SCHEMA)
        publisher = system.create_publisher()
        subscriber = system.create_subscriber()
        got = []
        system.subscribe(
            subscriber,
            'class = "Quote" and price < 50.0',
            handler=lambda e, m, s: got.append(e.get_price()),
        )
        if runtime == "sim":
            system.drain()
        else:
            assert system.run_until(lambda: subscriber._homes(), timeout=15.0)
        expected = sum(1 for i in range(EVENT_COUNT) if float(i % 100) < 50.0)
        start = time.perf_counter()
        for i in range(EVENT_COUNT):
            publisher.publish(Quote("Q", float(i % 100)))
        if runtime == "sim":
            system.drain()
        else:
            assert system.run_until(
                lambda: len(got) >= expected, timeout=WALL_CLOCK_BUDGET_S
            ), f"{runtime} run delivered {len(got)}/{expected} in budget"
        elapsed = time.perf_counter() - start
        return sorted(got), elapsed
    finally:
        system.close()


def test_runtime_smoke(report):
    sim_got, sim_elapsed = run_workload("sim")
    start = time.perf_counter()
    asyncio_got, asyncio_elapsed = run_workload("asyncio")
    total = time.perf_counter() - start

    assert asyncio_got == sim_got, "backends disagree on delivered events"
    assert total < WALL_CLOCK_BUDGET_S

    report("runtime smoke: same workload, both backends")
    report(f"  events published          {EVENT_COUNT}")
    report(f"  events delivered          {len(sim_got)} (both backends)")
    report(
        f"  sim backend               {sim_elapsed * 1e3:8.1f} ms "
        f"({len(sim_got) / max(sim_elapsed, 1e-9):10.0f} deliveries/s)"
    )
    report(
        f"  asyncio backend (TCP)     {asyncio_elapsed * 1e3:8.1f} ms "
        f"({len(asyncio_got) / max(asyncio_elapsed, 1e-9):10.0f} deliveries/s)"
    )
    report(f"  wall-clock budget         {WALL_CLOCK_BUDGET_S:.0f} s (hard gate)")


def test_multiprocess_runtime_smoke(report):
    """The one-process-per-broker backend runs the same workload inside
    the same wall-clock budget and agrees with the simulator — brokers
    in separate OS processes, the paper's overlay code unchanged."""
    sim_got, _ = run_workload("sim")
    start = time.perf_counter()
    mp_got, mp_elapsed = run_workload("multiprocess")
    total = time.perf_counter() - start

    assert mp_got == sim_got, "multiprocess backend disagrees on deliveries"
    assert total < WALL_CLOCK_BUDGET_S

    report("runtime smoke: multiprocess backend (one OS process per broker)")
    report(f"  events published          {EVENT_COUNT}")
    report(f"  events delivered          {len(mp_got)}")
    report(
        f"  multiprocess backend      {mp_elapsed * 1e3:8.1f} ms "
        f"({len(mp_got) / max(mp_elapsed, 1e-9):10.0f} deliveries/s)"
    )
    report(f"  wall-clock budget         {WALL_CLOCK_BUDGET_S:.0f} s (hard gate)")
