"""Micro-benchmarks: filter matching engines (§4.6).

The paper presents the naive Figure-6 table "for clarity" and defers
efficient indexing to related work; this bench quantifies the gap
between that table and the counting index on identical populations, at
the per-node filter counts the macro scenarios produce and beyond.
The cached variants measure the routing-decision memo on top of either
engine, including the cache-on/off speedup on a repetitive workload.
``test_compiled_speedup_sweep`` extends the table-size sweep to the
10^4/10^5-filter populations of the paper's Section 5 scalability story
and gates the compiled bitmap engine's >=10x speedup over the counting
index (the results land in ``benchmarks/results/``).
"""

import random
import time

import pytest

from repro.filters.compiled import CompiledMatchEngine
from repro.filters.engine import CachedMatchEngine
from repro.filters.index import CountingIndex
from repro.filters.table import FilterTable
from repro.metrics.counters import CacheStats
from repro.workloads.subscriptions import SubscriptionGenerator

GENERATOR = SubscriptionGenerator(
    [("class", 5), ("category", 40), ("vendor", 200)],
    numeric_attribute="price",
)

ENGINES = {
    "table": FilterTable,
    "index": CountingIndex,
    "compiled": lambda: CompiledMatchEngine(use_numpy=False),
    "cached-table": lambda: CachedMatchEngine(FilterTable()),
    "cached-index": lambda: CachedMatchEngine(CountingIndex()),
    "cached-compiled": lambda: CachedMatchEngine(
        CompiledMatchEngine(use_numpy=False)
    ),
}


def build_population(count, seed=7):
    rng = random.Random(seed)
    return GENERATOR.dissimilar_population(rng, count)


def build_events(count, seed=11):
    rng = random.Random(seed)
    events = []
    for _ in range(count):
        events.append(
            {
                "class": f"class-{rng.randrange(5)}",
                "category": f"category-{rng.randrange(40)}",
                "vendor": f"vendor-{rng.randrange(200)}",
                "price": round(rng.uniform(10.0, 1000.0), 2),
            }
        )
    return events


def build_repetitive_events(distinct=50, repeats=40, seed=13):
    """A hot-path workload: a small set of events republished many times."""
    rng = random.Random(seed)
    base = build_events(distinct, seed=seed)
    events = base * repeats
    rng.shuffle(events)
    return events


@pytest.mark.parametrize(
    "engine_name", ["table", "index", "compiled", "cached-table", "cached-index"]
)
@pytest.mark.parametrize("population_size", [100, 1000, 5000])
def test_match_throughput(benchmark, engine_name, population_size):
    engine = ENGINES[engine_name]()
    for position, filter_ in enumerate(build_population(population_size)):
        engine.insert(filter_, position)
    events = build_events(200)

    def match_all():
        total = 0
        for event in events:
            total += len(engine.match(event))
        return total

    matched = benchmark(match_all)
    assert matched >= 0


def test_engines_agree_at_scale():
    engines = [factory() for factory in ENGINES.values()]
    for position, filter_ in enumerate(build_population(2000)):
        for engine in engines:
            engine.insert(filter_, position)
    reference = engines[0]
    for event in build_events(100):
        expected = reference.destinations(event)
        for engine in engines[1:]:
            assert engine.destinations(event) == expected


def test_cache_speedup_on_repetitive_workload(report):
    """Acceptance gate: >=2x match throughput with the routing cache on.

    A broker in steady state sees the same few event shapes over and
    over; the memo turns each repeat into a dict hit instead of a full
    counting pass over the population.
    """
    population = build_population(5000)
    events = build_repetitive_events(distinct=50, repeats=40)

    def timed(engine):
        for position, filter_ in enumerate(population):
            engine.insert(filter_, position)
        # Warm-up pass so both variants run on hot structures.
        for event in events[:50]:
            engine.match(event)
        start = time.perf_counter()
        total = 0
        for event in events:
            total += len(engine.match(event))
        return time.perf_counter() - start, total

    stats = CacheStats()
    uncached_time, uncached_total = timed(CountingIndex())
    cached_time, cached_total = timed(
        CachedMatchEngine(CountingIndex(), stats=stats)
    )
    assert cached_total == uncached_total
    assert stats.hits > stats.misses  # the workload really is repetitive

    speedup = uncached_time / cached_time
    report()
    report("=== Routing-decision cache on/off (counting index, 5000 filters) ===")
    report(
        f"uncached: {uncached_time * 1e3:.1f} ms, "
        f"cached: {cached_time * 1e3:.1f} ms, speedup: {speedup:.1f}x "
        f"(hits={stats.hits}, misses={stats.misses}, "
        f"hit rate={stats.hit_rate():.2f})"
    )
    assert speedup >= 2.0, (
        f"cache must give >=2x on a repetitive workload, got {speedup:.2f}x"
    )


def test_compiled_speedup_sweep(report):
    """Acceptance gate: compiled bitmap matching >=10x the counting index
    at 10^4- and 10^5-filter tables (§5-scale subscription populations).

    Events run through ``match_batch`` on the compiled engine — the shape
    broker dispatch uses — and through per-event ``match`` on the
    counting index (its only shape).  Every event's match list must be
    identical between engines before any timing is trusted.
    """
    numpy_engine = CompiledMatchEngine()
    variants = [("compiled", lambda: CompiledMatchEngine(use_numpy=False))]
    if numpy_engine.use_numpy:
        variants.append(("compiled+numpy", CompiledMatchEngine))

    report()
    report("=== Compiled bitmap engine vs counting index (table-size sweep) ===")
    gate_sizes = {10_000, 100_000}
    gated_speedups = {}
    for size, event_count in ((1_000, 100), (10_000, 50), (100_000, 20)):
        population = build_population(size)
        events = build_events(event_count)

        index = CountingIndex()
        for position, filter_ in enumerate(population):
            index.insert(filter_, position)
        index.match(events[0])  # warm
        index_start = time.perf_counter()
        expected = [index.match(event) for event in events]
        index_time = time.perf_counter() - index_start

        row = [
            f"{size:>7} filters, {event_count:>3} events: "
            f"index {index_time * 1e3:8.2f} ms"
        ]
        for name, factory in variants:
            engine = factory()
            for position, filter_ in enumerate(population):
                engine.insert(filter_, position)
            engine.match_batch(events[:2])  # warm: compile + float cache
            compiled_start = time.perf_counter()
            results = engine.match_batch(events)
            compiled_time = time.perf_counter() - compiled_start
            assert results == expected, f"{name} diverged at {size} filters"
            speedup = index_time / compiled_time
            row.append(f"{name} {compiled_time * 1e3:7.2f} ms ({speedup:6.1f}x)")
            if size in gate_sizes and name == "compiled":
                gated_speedups[size] = speedup
        report("  " + ", ".join(row))

    for size, speedup in sorted(gated_speedups.items()):
        assert speedup >= 10.0, (
            f"compiled engine must be >=10x the counting index at {size} "
            f"filters, got {speedup:.1f}x"
        )


@pytest.mark.parametrize("engine_name", ["table", "index", "compiled"])
def test_insert_throughput(benchmark, engine_name):
    population = build_population(1000)

    def insert_all():
        engine = ENGINES[engine_name]()
        for position, filter_ in enumerate(population):
            engine.insert(filter_, position)
        return engine

    engine = benchmark(insert_all)
    assert len(engine) == len(set(population))
