"""Micro-benchmarks: filter matching engines (§4.6).

The paper presents the naive Figure-6 table "for clarity" and defers
efficient indexing to related work; this bench quantifies the gap
between that table and the counting index on identical populations, at
the per-node filter counts the macro scenarios produce and beyond.
"""

import random

import pytest

from repro.filters.index import CountingIndex
from repro.filters.table import FilterTable
from repro.workloads.subscriptions import SubscriptionGenerator

GENERATOR = SubscriptionGenerator(
    [("class", 5), ("category", 40), ("vendor", 200)],
    numeric_attribute="price",
)


def build_population(count, seed=7):
    rng = random.Random(seed)
    return GENERATOR.dissimilar_population(rng, count)


def build_events(count, seed=11):
    rng = random.Random(seed)
    events = []
    for _ in range(count):
        events.append(
            {
                "class": f"class-{rng.randrange(5)}",
                "category": f"category-{rng.randrange(40)}",
                "vendor": f"vendor-{rng.randrange(200)}",
                "price": round(rng.uniform(10.0, 1000.0), 2),
            }
        )
    return events


@pytest.mark.parametrize("engine_name", ["table", "index"])
@pytest.mark.parametrize("population_size", [100, 1000, 5000])
def test_match_throughput(benchmark, engine_name, population_size):
    engine = FilterTable() if engine_name == "table" else CountingIndex()
    for position, filter_ in enumerate(build_population(population_size)):
        engine.insert(filter_, position)
    events = build_events(200)

    def match_all():
        total = 0
        for event in events:
            total += len(engine.match(event))
        return total

    matched = benchmark(match_all)
    assert matched >= 0


def test_engines_agree_at_scale():
    table, index = FilterTable(), CountingIndex()
    for position, filter_ in enumerate(build_population(2000)):
        table.insert(filter_, position)
        index.insert(filter_, position)
    for event in build_events(100):
        assert table.destinations(event) == index.destinations(event)


@pytest.mark.parametrize("engine_name", ["table", "index"])
def test_insert_throughput(benchmark, engine_name):
    population = build_population(1000)

    def insert_all():
        engine = FilterTable() if engine_name == "table" else CountingIndex()
        for position, filter_ in enumerate(population):
            engine.insert(filter_, position)
        return engine

    engine = benchmark(insert_all)
    assert len(engine) == len(set(population))
