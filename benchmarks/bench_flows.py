"""Acceptance gates: in-broker information flows (DESIGN §15).

Four gates over the seeded telemetry sweep (10× fan-in: 10 sensors per
region, one reading each per one-second tumbling window, with a stage-2
broker crash/restart mid-stream):

- **bandwidth**: the per-region rollup flow cuts dashboard delivered
  events *and* downlink bytes ≥5× against the flow-free twin;
- **raw-path byte-identity**: single-sensor witnesses nowhere near a
  flow deliver the identical value sequences in both runs — installing
  a flow must not perturb the raw path;
- **audit**: the exactly-once verifier is CLEAN on every seed, in both
  runs, with only the crash window as excuse;
- **soft-state crash semantics**: hosting the flow on a stage-2 broker
  and crashing it drops the open windows with ``window-dropped`` spans,
  the registrar's renewals re-install the flow, and the audit stays
  CLEAN with the dropped-window excusal intervals
  (``dropped_window_excusals``) — a derived-event gap is excused iff
  its input window was explicitly dropped by the crash.

Plus a determinism gate: same-seed flow-enabled runs produce
byte-identical trace dumps, ``derive`` spans included.

The rendered flow report lands in ``benchmarks/results/`` (the CI
artifact).
"""

import time

from repro.experiments.flows import (
    FlowsConfig,
    render,
    run_comparison,
    run_flows,
    run_subtree_crash,
)

SEEDS = (7, 11, 23)

#: The ISSUE's bar: ≥5x reduction at 10x fan-in.
MIN_REDUCTION = 5.0


def test_flows_gate(report):
    """Gate: bandwidth reduction + raw-path identity + clean audits."""
    start = time.perf_counter()
    comparisons = [run_comparison(FlowsConfig(seed=seed)) for seed in SEEDS]
    elapsed = time.perf_counter() - start

    report()
    report(f"=== Flows gate ({len(comparisons)} seeds, {elapsed:.1f} s wall) ===")
    for comparison in comparisons:
        seed = comparison.flow.config.seed
        report()
        report(render(comparison))

        # The headline trade: one derived event per region per window
        # instead of the full fan-in, on the dashboards' downlink.
        assert comparison.event_reduction >= MIN_REDUCTION, (
            f"seed {seed}: delivered-event reduction "
            f"{comparison.event_reduction:.1f}x < {MIN_REDUCTION}x"
        )
        assert comparison.byte_reduction >= MIN_REDUCTION, (
            f"seed {seed}: downlink-byte reduction "
            f"{comparison.byte_reduction:.1f}x < {MIN_REDUCTION}x"
        )

        # Subscribers not behind a flow must not notice the flow at all.
        assert comparison.witnesses_identical, (
            f"seed {seed}: witness deliveries diverged between the "
            f"flow run and the flow-free twin"
        )
        for name, values in comparison.flow.witness_values.items():
            assert values, f"seed {seed}: witness {name} delivered nothing"

        # Exactly-once, crash included, in both runs; and the flow run
        # really derived events (otherwise the comparison is vacuous).
        assert comparison.flow.clean, (
            f"seed {seed}: flow-run audit violated\n"
            f"{comparison.flow.audit.render()}"
        )
        assert comparison.twin.clean, (
            f"seed {seed}: twin audit violated\n"
            f"{comparison.twin.audit.render()}"
        )
        assert comparison.flow.derived_published > 0
        assert comparison.twin.derived_published == 0


def test_subtree_crash_gate(report):
    """Gate: dropped windows are announced, excused, and re-installed."""
    report()
    report("=== Subtree-crash gate (flow hosted on a stage-2 broker) ===")
    for seed in SEEDS:
        outcome = run_subtree_crash(FlowsConfig(seed=seed))
        report(
            f"seed {seed}: dropped={outcome.windows_dropped} "
            f"reinstalled={outcome.reinstalled} "
            f"derived={outcome.derived_published} "
            f"audit={'CLEAN' if outcome.clean else 'DIRTY'}"
        )
        # The crash caught open window state and announced the loss.
        assert outcome.windows_dropped > 0, (
            f"seed {seed}: crash dropped no windows (gate is vacuous)"
        )
        assert len(outcome.excusals) == outcome.windows_dropped
        # Refresh-or-restore: the registrar's renewals re-installed the
        # flow after the restart, and it resumed deriving.
        assert outcome.reinstalled, f"seed {seed}: flow not re-installed"
        assert outcome.derived_published > 0
        # The recorded excusal rule keeps the audit CLEAN.
        assert outcome.clean, (
            f"seed {seed}: audit violated\n{outcome.audit.render()}"
        )


def test_flows_determinism(report):
    """Gate: same-seed flow runs are byte-identical, derive spans included."""
    report()
    report("=== Flows determinism gate ===")
    for seed in SEEDS[:2]:
        first = run_flows(FlowsConfig(seed=seed), flows_on=True)
        second = run_flows(FlowsConfig(seed=seed), flows_on=True)
        assert first.trace_dump, f"seed {seed}: empty trace dump"
        assert b"derive" in first.trace_dump, (
            f"seed {seed}: no derive spans in the trace dump"
        )
        assert first.trace_dump == second.trace_dump, (
            f"seed {seed}: same-seed trace dumps differ"
        )
        assert first.witness_values == second.witness_values
        report(
            f"seed {seed}: {len(first.trace_dump)} trace bytes, "
            f"byte-identical across runs"
        )
