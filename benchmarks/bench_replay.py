"""Acceptance gate: durable log, replay, and exactly-once audit (§11).

Three gates over the seeded replay sweep (catch-up subscribers draining
history then going live, plus a broker crash/restart recovered from the
root's log):

- **convergence**: every catch-up session reaches live delivery within
  a bound derived from its history size and the configured replay rate;
- **audit**: the exactly-once verifier finds zero gaps and zero
  duplicates outside the crash window, for the from-the-start
  subscriber and every catch-up origin, across several seeds;
- **flow composition**: history replay is paced — a small credit window
  visibly throttles an unbounded nominal rate (credit stalls at the
  root), and a small rate binds even with a large window.

The rendered replay report and audit verdicts land in
``benchmarks/results/`` (the CI artifact).
"""

import os
import time

from repro.experiments.replay import ReplayConfig, render, run_replay

from .conftest import RESULTS_DIR

SEEDS = (7, 11, 23)


def run_suite(seeds=SEEDS, **overrides):
    return [run_replay(ReplayConfig(seed=seed, **overrides)) for seed in seeds]


def test_replay_gate(report):
    """Gate: bounded catch-up convergence + clean audit across seeds."""
    start = time.perf_counter()
    results = run_suite()
    elapsed = time.perf_counter() - start

    report()
    report(f"=== Replay gate ({len(results)} seeds, {elapsed:.1f} s wall) ===")
    audits = []
    for result in results:
        config = result.config
        report()
        report(render(result))
        audits.append((config.seed, result.audit))

        # Every catch-up went live, within the replay-rate bound (one
        # batch interval of slack per batch, plus protocol slack for the
        # switchover handshake).
        assert result.converged, (
            f"seed {config.seed}: not all catch-ups reached live"
        )
        bound = config.history_events / config.replay_rate + 2.0
        for outcome in result.catch_ups:
            assert outcome.convergence_time <= bound, (
                f"seed {config.seed}: {outcome.subscriber} took "
                f"{outcome.convergence_time:.2f}s to live (bound {bound:.2f}s)"
            )
            # History made each session whole: every entitled record,
            # exactly once.
            assert outcome.history_delivered == outcome.expected_history, (
                f"seed {config.seed}: {outcome.subscriber} history "
                f"{outcome.history_delivered}/{outcome.expected_history}"
            )

        # The audit-grade exactly-once verdict, catch-up and
        # crash-recovery paths both in scope.
        assert result.audit.clean, (
            f"seed {config.seed}: audit violated\n{result.audit.render()}"
        )
        assert result.audit.expected == result.audit.delivered
        # The crash really exercised recovery (otherwise the gate is
        # vacuous).
        assert result.replay_events_sent > 0, (
            f"seed {config.seed}: crash recovery never replayed"
        )

    # Archive the audit verdicts as a standalone artifact.
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "replay-audit.txt"), "w") as f:
        for seed, audit in audits:
            f.write(f"seed {seed}\n{'-' * 20}\n{audit.render()}\n\n")


def test_replay_rate_respects_flow_credits(report):
    """Gate: history pacing composes with PR 5's credit windows."""
    # A 4-credit window throttles an effectively unbounded nominal rate:
    # the root must stall on credits yet still converge and audit clean.
    throttled = run_suite(
        seeds=(7,),
        link_window=4,
        replay_rate=1e6,
        replay_batch=64,
        crash_duration=0.0,
    )[0]
    report()
    report("=== credit-bound replay (window 4, nominal rate 1e6/s) ===")
    report(render(throttled))
    assert throttled.converged
    assert throttled.clean
    assert throttled.system.root.counters.credit_stalls > 0, (
        "a 4-credit window never stalled a 64-event replay batch — "
        "history is not credit-paced"
    )

    # Conversely a small configured rate binds even with a huge window:
    # 60 records at 50/s cannot go live faster than 1.1 simulated
    # seconds.
    paced = run_suite(
        seeds=(7,),
        link_window=256,
        replay_rate=50.0,
        replay_batch=5,
        crash_duration=0.0,
    )[0]
    report()
    report("=== rate-bound replay (window 256, rate 50/s) ===")
    report(render(paced))
    assert paced.converged
    assert paced.clean
    slowest = max(c.convergence_time for c in paced.catch_ups)
    assert slowest >= 1.0, (
        f"60-record history at 50/s went live in {slowest:.2f}s — the "
        "replay rate is not enforced"
    )


def test_replay_bench_timing(benchmark, once):
    """Timing reference: one full seeded replay run."""
    result = once(benchmark, run_replay, ReplayConfig(seed=7))
    assert result.clean
