"""Benchmark: multi-stage vs the §2.1 architectures on one workload.

Regenerates the quantitative comparisons the paper makes in prose:

- centralized server RLC = 1 (§5.1's normalization);
- broadcast/topic-based flood the edges with the full event stream;
- multi-stage keeps every broker's RLC well below 1 *and* delivers the
  identical event multiset (end-to-end soundness).
"""

from repro.experiments import comparison
from repro.experiments.common import ScenarioConfig

SCALE = ScenarioConfig(
    stage_sizes=(100, 10, 1),
    n_subscribers=500,
    n_events=500,
    placement="random",
    n_years=30,
    n_conferences=100,
    n_authors=500,
    n_records=3000,
    author_exponent=1.1,
    record_exponent=0.9,
    sibling_rate=0.06,
)


def test_architecture_comparison(benchmark, once, report):
    results = once(benchmark, comparison.run_comparison, SCALE)

    report()
    report("=== §2.1 architectures on the identical workload ===")
    report(comparison.render(results))

    reference = results["centralized"].deliveries
    for name, result in results.items():
        assert result.deliveries == reference, f"{name} delivered differently"

    assert abs(results["centralized"].max_broker_rlc - 1.0) < 1e-9
    assert results["multistage"].max_broker_rlc < 0.5
    assert results["broadcast"].edge_avg_received == SCALE.n_events
    assert results["multistage"].edge_avg_received < SCALE.n_events / 5
    assert results["multistage"].edge_avg_mr > results["broadcast"].edge_avg_mr


def test_multiclass_comparison(benchmark, once, report):
    """Two event classes: topic-based recovers class selectivity only;
    multi-stage recovers full content selectivity (§3.4's degeneration
    claim, quantified)."""
    from repro.experiments.multiclass import MulticlassConfig, render as render_mc
    from repro.experiments.multiclass import run_multiclass

    config = MulticlassConfig(
        stage_sizes=(20, 5, 1), n_subscribers=300, n_events=600
    )
    results = once(benchmark, run_multiclass, config)

    report()
    report("=== Multi-class workload: Stock + Auction (§3.4) ===")
    report(render_mc(results))

    reference = results["multistage"].deliveries
    for name, result in results.items():
        assert result.deliveries == reference, name
    assert (
        results["multistage"].edge_avg_received
        < results["topicbased"].edge_avg_received
        < results["broadcast"].edge_avg_received
    )
