"""Acceptance gate: fault tolerance of the control plane (§4.3).

One seeded chaos schedule — 10% per-link loss, 5% duplication, latency
jitter, and a stage-2 broker crash/restart in the middle — must not cost
a single delivery of any event published outside the fault window, must
never deliver twice, and must leave the covering invariant holding at
every broker within a bounded convergence time after heal.  Several
seeds guard against a lucky schedule.
"""

import time

from repro.experiments.chaos import ChaosConfig, render, run_chaos

SEEDS = (7, 11, 23)


def run_suite(seeds=SEEDS):
    results = []
    for seed in seeds:
        results.append(run_chaos(ChaosConfig(seed=seed)))
    return results


def test_chaos_gate(report):
    """Gate: exactly-once outside faults + bounded reconvergence."""
    start = time.perf_counter()
    results = run_suite()
    elapsed = time.perf_counter() - start

    report()
    report(f"=== Chaos gate ({len(results)} seeds, {elapsed:.1f} s wall) ===")
    for result in results:
        config = result.config
        report()
        report(render(result))

        # Every event published outside the fault window reaches every
        # matching subscriber exactly once.
        assert result.pre_ratio == 1.0, (
            f"seed {config.seed}: pre-fault delivery ratio "
            f"{result.pre_ratio} != 1.0"
        )
        assert result.post_ratio == 1.0, (
            f"seed {config.seed}: post-heal delivery ratio "
            f"{result.post_ratio} != 1.0"
        )
        assert result.exactly_once, (
            f"seed {config.seed}: duplicate deliveries "
            f"(pre max {result.pre_max_copies}, post max "
            f"{result.post_max_copies})"
        )

        # The covering invariant holds everywhere after convergence, and
        # convergence is bounded (well under a lease expiry, 3xTTL).
        assert result.converged, (
            f"seed {config.seed}: {result.violations_after} covering "
            f"violations still open after {config.max_convergence}s"
        )
        assert result.convergence_time <= config.ttl, (
            f"seed {config.seed}: convergence took "
            f"{result.convergence_time}s (> TTL {config.ttl}s)"
        )

        # The schedule actually bit: messages were dropped on the wire
        # and the reliable channel had to retransmit.
        assert result.dropped_messages > 0, f"seed {config.seed}: no drops"
        assert result.control_retransmits > 0, (
            f"seed {config.seed}: faults never exercised retransmission"
        )
