"""Micro-benchmark: covering-index subsumption vs naive pairwise.

The broker control plane answers "is this filter covered?" and "which
filters does it cover?" on every uplink change.  Naively that is O(n)
full ``Filter.covers`` implication checks per query; the
:class:`~repro.filters.covering_index.CoveringIndex` prunes candidates
with equality buckets and bisected ordering bounds first.  This bench
measures both on the same clustered population and gates the speedup —
with a correctness assertion, because a fast wrong answer is worthless.
"""

import random
import time

from repro.filters.covering_index import CoveringIndex
from repro.workloads.subscriptions import SubscriptionGenerator

GENERATOR = SubscriptionGenerator(
    [("class", 5), ("category", 40), ("vendor", 200)],
    numeric_attribute="price",
)

POPULATION_SIZE = 5000
PROBE_COUNT = 80


def build_population(count, seed=23):
    rng = random.Random(seed)
    return GENERATOR.clustered_population(
        rng, cluster_count=count // 20, cluster_size=20
    )


def naive_covered_by(pool, probe):
    return [g for g in pool if g.covers(probe)]


def naive_covers_of(pool, probe):
    return [g for g in pool if probe.covers(g)]


def test_covering_index_speedup(report):
    """Acceptance gate: >=5x over naive pairwise at 5000 filters."""
    population = build_population(POPULATION_SIZE)
    assert len(population) == POPULATION_SIZE

    index = CoveringIndex()
    build_start = time.perf_counter()
    for filter_ in population:
        index.add(filter_)
    build_time = time.perf_counter() - build_start
    pool = list(index.filters())  # deduplicated stored set

    rng = random.Random(31)
    probes = rng.sample(population, PROBE_COUNT // 2) + build_population(
        PROBE_COUNT // 2, seed=47
    )[: PROBE_COUNT // 2]

    # Warm-up + correctness: the pruned answers must equal naive pairwise.
    for probe in probes[:10]:
        assert index.covered_by(probe) == naive_covered_by(pool, probe)
        assert index.covers_of(probe) == naive_covers_of(pool, probe)

    index.covers_checks = 0
    index_start = time.perf_counter()
    index_results = [
        (index.covered_by(probe), index.covers_of(probe)) for probe in probes
    ]
    index_time = time.perf_counter() - index_start
    checks = index.covers_checks

    naive_start = time.perf_counter()
    naive_results = [
        (naive_covered_by(pool, probe), naive_covers_of(pool, probe))
        for probe in probes
    ]
    naive_time = time.perf_counter() - naive_start

    assert index_results == naive_results
    naive_checks = 2 * len(pool) * len(probes)

    speedup = naive_time / index_time
    report()
    report(
        f"=== Covering index vs naive pairwise "
        f"({len(pool)} filters, {len(probes)} probes) ==="
    )
    report(
        f"build: {build_time * 1e3:.1f} ms; query: naive {naive_time * 1e3:.1f} ms, "
        f"indexed {index_time * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    report(
        f"pairwise covers checks: naive {naive_checks}, indexed {checks} "
        f"(pruning factor {naive_checks / max(1, checks):.0f}x)"
    )
    assert speedup >= 5.0, (
        f"covering index must be >=5x naive pairwise at "
        f"{POPULATION_SIZE} filters, got {speedup:.2f}x"
    )


def test_covering_index_at_section5_scale(report):
    """The control plane stays sub-linear at 10^4 stored filters.

    Naive pairwise covering at this size is too slow to time against in
    full, so correctness is spot-checked on a probe subset and the gate
    is absolute: the indexed queries must answer well under the naive
    engine's per-probe budget extrapolated from the 5000-filter gate.
    """
    population = build_population(10_000, seed=29)
    index = CoveringIndex()
    build_start = time.perf_counter()
    for filter_ in population:
        index.add(filter_)
    build_time = time.perf_counter() - build_start
    pool = list(index.filters())

    rng = random.Random(37)
    probes = rng.sample(population, 40)
    for probe in probes[:5]:  # spot-check against naive pairwise
        assert index.covered_by(probe) == naive_covered_by(pool, probe)
        assert index.covers_of(probe) == naive_covers_of(pool, probe)

    index.covers_checks = 0
    query_start = time.perf_counter()
    for probe in probes:
        index.covered_by(probe)
        index.covers_of(probe)
    query_time = time.perf_counter() - query_start
    checks = index.covers_checks
    naive_checks = 2 * len(pool) * len(probes)

    report()
    report(f"=== Covering index at 10^4 filters ({len(probes)} probes) ===")
    report(
        f"build: {build_time * 1e3:.1f} ms; query: {query_time * 1e3:.1f} ms "
        f"({query_time / len(probes) * 1e3:.2f} ms/probe); covers checks "
        f"{checks} vs naive {naive_checks} "
        f"(pruning factor {naive_checks / max(1, checks):.0f}x)"
    )
    assert checks < naive_checks / 10, (
        "candidate pruning must cut pairwise covers checks >=10x at 10^4 "
        f"filters, performed {checks} of {naive_checks}"
    )


def test_incremental_maximal_under_churn(report):
    """The maximal set stays exact across removals (uncover bookkeeping)."""
    population = build_population(1000, seed=5)
    index = CoveringIndex()
    for filter_ in population:
        index.add(filter_)
    pool = list(index.filters())

    rng = random.Random(9)
    removed = rng.sample(pool, len(pool) // 3)
    churn_start = time.perf_counter()
    for filter_ in removed:
        index.discard(filter_)
    churn_time = time.perf_counter() - churn_start

    removed_set = set(removed)
    live = [f for f in pool if f not in removed_set]
    expected = [
        f
        for f in live
        if not any(g.covers(f) and not f.covers(g) for g in live)
    ]
    assert index.maximal() == expected
    report()
    report(
        f"=== Incremental maximal set under churn ===\n"
        f"removed {len(removed)}/{len(pool)} filters in "
        f"{churn_time * 1e3:.1f} ms; maximal set exact "
        f"({len(expected)} filters)"
    )
