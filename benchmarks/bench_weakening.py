"""Micro-benchmarks: covering checks and filter weakening (§3.3, §4.1).

The subscription path evaluates covering (Definition 2) at every node on
the way down and weakening at every insertion; these two operations set
the control-plane cost of the whole architecture.
"""

import random

from repro.core.stages import AttributeStageAssociation
from repro.core.weakening import merge_covering, weaken_filter, weakening_chain
from repro.workloads.subscriptions import SubscriptionGenerator

GENERATOR = SubscriptionGenerator(
    [("class", 5), ("category", 30), ("vendor", 100)],
    numeric_attribute="price",
)

ASSOCIATION = AttributeStageAssociation.uniform(GENERATOR.attributes, stages=4)


def population(count, seed=3):
    return GENERATOR.dissimilar_population(random.Random(seed), count)


def test_covering_check_throughput(benchmark):
    filters = population(300)
    weak = [weaken_filter(f, ASSOCIATION, 2) for f in filters]

    def check_all():
        covered = 0
        for weakened, original in zip(weak, filters):
            if weakened.covers(original):
                covered += 1
        return covered

    covered = benchmark(check_all)
    assert covered == len(filters)  # weakening always covers


def test_weakening_chain_throughput(benchmark):
    filters = population(300)

    def weaken_all():
        chains = [weakening_chain(f, ASSOCIATION) for f in filters]
        return len(chains)

    assert benchmark(weaken_all) == 300


def test_covering_merge_throughput(benchmark):
    clustered = GENERATOR.clustered_population(random.Random(5), 40, 25)

    def merge():
        return merge_covering(clustered)

    merged = benchmark(merge)
    assert len(merged) <= 40
