"""Benchmark regenerating the §5.3 RLC table (the paper's only table).

Prints the reproduced table next to the paper's reported values and
asserts the qualitative shape the paper claims:

- every broker node's RLC is far below the centralized server's 1;
- per-node RLC rises from the user level toward the middle stages and
  drops again at the root;
- the global total lands around 1 (work is delegated, not multiplied).
"""

from repro.experiments import rlc_table


def test_rlc_table(benchmark, once, report):
    result = once(benchmark, rlc_table.run_bibliographic, rlc_table.PAPER_SCALE)

    report()
    report("=== Paper §5.3: RLC table (multi-stage vs centralized = 1) ===")
    report(rlc_table.render(result))

    # Shape assertions (see EXPERIMENTS.md for measured-vs-paper numbers).
    for stage in (1, 2, 3):
        for rlc in result.rlc_values(stage):
            assert rlc < 1.0, "no broker may reach the centralized load"
    assert result.rlc_node_average(0) < result.rlc_node_average(1)
    assert result.rlc_node_average(1) < result.rlc_node_average(2)
    assert result.rlc_node_average(3) < result.rlc_node_average(2)
    assert 0.1 < result.rlc_global_total() < 1.5
