"""Benchmark: per-node load vs subscriber count (§5.3 scalability claim).

"The addition of more subscribers does not overload the existing nodes":
peak broker Load Complexity must grow sub-linearly in the subscription
count, while the centralized server's LC grows linearly by definition.
The root's LC should barely move at all — its filter table collapses to
the most-general filters regardless of how many subscribers exist.
"""

from repro.experiments import scalability
from repro.experiments.common import ScenarioConfig

BASE = ScenarioConfig(
    stage_sizes=(50, 10, 1),
    n_events=400,
    placement="random",
    n_years=30,
    n_conferences=100,
    n_authors=500,
    n_records=3000,
    author_exponent=1.1,
    record_exponent=0.9,
    sibling_rate=0.06,
)

COUNTS = (125, 250, 500, 1000)


def test_scalability_sweep(benchmark, once, report):
    points = once(benchmark, scalability.run_scalability, BASE, COUNTS)

    report()
    report("=== §5.3 claim: per-node load vs number of subscribers ===")
    report(scalability.render(points))

    subscriber_growth = COUNTS[-1] / COUNTS[0]
    broker_growth = scalability.growth_factor(points)
    centralized_growth = points[-1].centralized_lc / points[0].centralized_lc
    report(
        f"subscribers x{subscriber_growth:.0f}: broker LC x{broker_growth:.1f}, "
        f"centralized LC x{centralized_growth:.0f}"
    )

    assert broker_growth < subscriber_growth / 2, "broker load must be sub-linear"
    assert centralized_growth >= subscriber_growth * 0.99
    # The root's table collapses to most-general filters: near-flat LC.
    top = max(points[0].max_lc_by_stage)
    assert (
        points[-1].max_lc_by_stage[top]
        <= points[0].max_lc_by_stage[top] * 2
    )
