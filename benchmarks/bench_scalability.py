"""Benchmark: per-node load vs subscriber count (§5.3 scalability claim).

"The addition of more subscribers does not overload the existing nodes":
peak broker Load Complexity must grow sub-linearly in the subscription
count, while the centralized server's LC grows linearly by definition.
The root's LC should barely move at all — its filter table collapses to
the most-general filters regardless of how many subscribers exist.

The aggregation ablation compares covering-based uplink aggregation on
vs off at the top of the sweep: upper-stage tables and ``req-Insert``
control traffic must shrink substantially while every subscriber's
delivery trace stays identical (soundness via Proposition 1,
completeness via the withdraw-last ordering).
"""

from dataclasses import replace

from repro.experiments import scalability
from repro.experiments.common import ScenarioConfig, run_bibliographic

BASE = ScenarioConfig(
    stage_sizes=(50, 10, 1),
    n_events=400,
    placement="random",
    n_years=30,
    n_conferences=100,
    n_authors=500,
    n_records=3000,
    author_exponent=1.1,
    record_exponent=0.9,
    sibling_rate=0.06,
)

COUNTS = (125, 250, 500, 1000)


def test_scalability_sweep(benchmark, once, report):
    points = once(benchmark, scalability.run_scalability, BASE, COUNTS)

    report()
    report("=== §5.3 claim: per-node load vs number of subscribers ===")
    report(scalability.render(points))

    subscriber_growth = COUNTS[-1] / COUNTS[0]
    broker_growth = scalability.growth_factor(points)
    centralized_growth = points[-1].centralized_lc / points[0].centralized_lc
    report(
        f"subscribers x{subscriber_growth:.0f}: broker LC x{broker_growth:.1f}, "
        f"centralized LC x{centralized_growth:.0f}"
    )

    assert broker_growth < subscriber_growth / 2, "broker load must be sub-linear"
    assert centralized_growth >= subscriber_growth * 0.99
    # The root's table collapses to most-general filters: near-flat LC.
    top = max(points[0].max_lc_by_stage)
    assert (
        points[-1].max_lc_by_stage[top]
        <= points[0].max_lc_by_stage[top] * 2
    )


def test_aggregation_ablation_at_scale(report):
    """Acceptance gate: covering aggregation at 1000 subscribers.

    Stage-2/3 filters held and total ``req-Insert`` messages must drop by
    at least 40% with aggregation on, and per-subscriber delivery traces
    must be identical between the two arms.  A quarter of subscriptions
    wildcard the full schema (``wildcard_attribute="year"`` blanks the
    most general attribute and everything below it), so most stage-1
    nodes hold an everything-filter that covers their whole uplink.
    """
    config = replace(
        BASE,
        n_subscribers=COUNTS[-1],
        wildcard_rate=0.25,
        wildcard_attribute="year",
    )
    on = run_bibliographic(replace(config, aggregate=True))
    off = run_bibliographic(replace(config, aggregate=False))

    assert on.deliveries == off.deliveries, (
        "aggregation must not change any subscriber's delivery trace"
    )
    assert on.deliveries and sum(len(t) for t in on.deliveries.values()) > 0

    filters_on = on.filters_per_stage()
    filters_off = off.filters_per_stage()
    req_on = on.aggregation_totals()["req_inserts_sent"]
    req_off = off.aggregation_totals()["req_inserts_sent"]

    report()
    report("=== Covering aggregation on/off (1000 subscribers) ===")
    report(f"filters held by stage: on={filters_on}, off={filters_off}")
    report(
        f"req-Inserts: on={req_on}, off={req_off} "
        f"(suppressed={on.aggregation_totals()['propagations_suppressed']})"
    )
    for stage in (2, 3):
        drop = 1.0 - filters_on[stage] / filters_off[stage]
        report(f"stage-{stage} filters drop: {drop:.0%}")
        assert drop >= 0.40, (
            f"stage-{stage} filters must drop >=40%, got {drop:.0%}"
        )
    req_drop = 1.0 - req_on / req_off
    report(f"req-Insert drop: {req_drop:.0%}")
    assert req_drop >= 0.40, f"req-Inserts must drop >=40%, got {req_drop:.0%}"
