"""Benchmark regenerating Figure 7 (matching rate per node).

Prints the three MR series (levels 0-2) and the subscriber average, and
asserts the paper's qualitative claims: pre-filtering pushes level-0 and
level-1 matching rates toward 1, and the subscriber average lands in the
paper's high-MR regime (reported: 0.87).
"""

from repro.experiments import figure7


def test_figure7(benchmark, once, report):
    result = once(benchmark, figure7.run_bibliographic, figure7.FIGURE7_SCALE)

    report()
    report("=== Paper Figure 7: matching rate of the nodes ===")
    report(figure7.render(result))

    average = result.subscriber_average_mr()
    assert 0.7 <= average <= 1.0, f"subscriber MR {average} out of the paper's regime"
    level1 = result.mr_values(1)
    assert sum(level1) / len(level1) > 0.7
    for stage in (0, 1, 2):
        for value in result.mr_values(stage):
            assert 0.0 <= value <= 1.0
