"""Acceptance gates for the observability layer.

Three gates keep tracing honest:

1. **Overhead**: with tracing *off*, the instrumentation must cost at
   most 5% of the scalability sweep.  The off path is one attribute load
   and branch per emission site, so the gate measures that guard's
   micro-cost and multiplies it by a deliberately generous upper bound
   on guard executions in a measured sweep — if even the over-estimate
   stays under 5% of the sweep's wall time, the real cost certainly
   does.  Macro off-vs-on chaos timings are reported alongside for
   context (they include the on-path span allocation, which the budget
   does not cover).
2. **Completeness**: in a traced chaos run — loss, duplication, jitter,
   and a broker crash — every delivered event's spans must reconstruct
   a contiguous publisher-to-subscriber path.
3. **Determinism**: two same-seed traced chaos runs must produce
   byte-identical trace dumps and identical sampled series.
"""

import time
from dataclasses import replace

from repro.experiments.chaos import ChaosConfig, run_chaos
from repro.experiments.common import ScenarioConfig, run_bibliographic
from repro.obs.tracing import EventTracer

#: CI-sized scalability sweep (matches the --quick experiment config).
SWEEP = ScenarioConfig(stage_sizes=(20, 5, 1), n_subscribers=200, n_events=200)
SWEEP_SUBSCRIBER_COUNTS = (125, 250)

OVERHEAD_BUDGET = 0.05


def _guard_cost_per_check(iterations: int = 500_000) -> float:
    """Measured seconds per disabled-tracer emission guard."""
    tracer = EventTracer(enabled=False)
    start = time.perf_counter()
    for _ in range(iterations):
        if tracer.enabled:
            raise AssertionError("tracer must stay disabled")
    return (time.perf_counter() - start) / iterations


def test_tracing_off_overhead_gate(report):
    """Gate: tracing-off guard cost <= 5% of the scalability sweep."""
    start = time.perf_counter()
    results = []
    for count in SWEEP_SUBSCRIBER_COUNTS:
        config = ScenarioConfig(**{**SWEEP.__dict__, "n_subscribers": count})
        results.append(run_bibliographic(config))
    sweep_time = time.perf_counter() - start

    # Upper-bound the guard executions the sweep performed: every network
    # send checks the tracer at most twice (drop path, then once per
    # duplicated copy <= 3), every broker checks twice per event (queue
    # meta + hop span), subscribers and publishers once per event.  Four
    # checks per message plus three per processed event over-counts all
    # of that.
    checks = 0
    for result in results:
        stats = result.system.network.stats
        messages = (
            stats.total_messages
            + stats.dropped_messages
            + stats.duplicated_messages
        )
        events = sum(
            counters.events_received
            for named in result.counters_by_stage.values()
            for _, counters in named
        )
        checks += 4 * messages + 3 * events + result.total_events

    per_check = _guard_cost_per_check()
    estimated = checks * per_check
    fraction = estimated / sweep_time

    report()
    report("=== Tracing overhead gate (tracing off) ===")
    report(f"sweep wall time          : {sweep_time:.3f} s")
    report(f"guard executions (bound) : {checks}")
    report(f"guard micro-cost         : {per_check * 1e9:.1f} ns/check")
    report(f"estimated guard overhead : {estimated * 1e3:.3f} ms "
           f"({fraction:.2%} of sweep, budget {OVERHEAD_BUDGET:.0%})")
    assert fraction <= OVERHEAD_BUDGET, (
        f"disabled-tracing overhead estimate {fraction:.2%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} of the sweep"
    )

    # Context: macro chaos timings off vs on (includes span allocation).
    t0 = time.perf_counter()
    off = run_chaos(ChaosConfig())
    t_off = time.perf_counter() - t0
    t0 = time.perf_counter()
    on = run_chaos(ChaosConfig(tracing=True))
    t_on = time.perf_counter() - t0
    report(f"chaos run, tracing off   : {t_off:.3f} s")
    report(f"chaos run, tracing on    : {t_on:.3f} s "
           f"({len(on.tracer)} spans recorded)")
    assert len(off.tracer) == 0, "disabled tracer recorded spans"


def test_trace_completeness_gate(report):
    """Gate: every delivered event reconstructs a contiguous path."""
    result = run_chaos(ChaosConfig(tracing=True))
    tracer = result.tracer

    delivered = [
        span for span in tracer.kinds("deliver") if span.detail("delivered", 0)
    ]
    assert delivered, "chaos run traced no deliveries"

    broken = tracer.incomplete_deliveries()
    report()
    report("=== Trace completeness gate ===")
    report(f"spans recorded        : {len(tracer)}")
    report(f"events traced         : {len(tracer.event_ids())}")
    report(f"delivery spans        : {len(delivered)}")
    report(f"broken delivery paths : {len(broken)}")
    assert broken == [], "delivered events with non-contiguous span chains:\n" + (
        "\n".join(path.render() for path in broken[:5])
    )

    # Cross-check against ground-truth accounting: one delivering span
    # per counted delivery (a span's `delivered` detail is the per-copy
    # subscription count, so sum the details).
    counted = sum(
        subscriber.counters.events_delivered
        for subscriber in result.system.subscribers
    )
    traced = sum(span.detail("delivered", 0) for span in delivered)
    report(f"deliveries (counters) : {counted}")
    report(f"deliveries (spans)    : {traced}")
    assert counted == traced, "trace and counters disagree on deliveries"


def test_trace_determinism_gate(report):
    """Gate: same seed => byte-identical trace dump + identical series."""
    config = ChaosConfig(tracing=True)
    first = run_chaos(config)
    second = run_chaos(replace(config))

    dump_a = first.tracer.dump()
    dump_b = second.tracer.dump()
    report()
    report("=== Trace determinism gate ===")
    report(f"dump size: {len(dump_a)} bytes, {len(first.tracer)} spans")
    assert dump_a == dump_b, "same-seed trace dumps differ"

    assert first.sampler is not None and second.sampler is not None
    assert first.sampler.times == second.sampler.times
    for metric in ("events_per_s", "queue_depth", "table_size",
                   "retransmits_per_s"):
        assert first.sampler.node_series(metric) == second.sampler.node_series(
            metric
        ), f"same-seed sampled series differ for {metric}"
    report("sampled series identical across runs")
