#!/usr/bin/env python
"""The paper's Section-5 simulation, at a laptop-friendly scale.

Builds the bibliographic workload (author / conference / year / title),
a 3-stage broker hierarchy, hundreds of subscribers, and prints the two
artifacts of the paper's evaluation:

- the RLC table of §5.3 (with the paper's reference values alongside);
- the Figure-7 matching-rate series as ASCII sparklines.

Run:  python examples/bibliography_feed.py            # quick scale
      python examples/bibliography_feed.py --paper    # 100/10/1 nodes
"""

import sys

from repro.experiments.common import ScenarioConfig, run_bibliographic
from repro.experiments import figure7, rlc_table


def main() -> None:
    if "--paper" in sys.argv:
        config = rlc_table.PAPER_SCALE
        print("running at paper scale (100/10/1 nodes, 1000 subscribers)...")
    else:
        config = ScenarioConfig(
            stage_sizes=(20, 5, 1), n_subscribers=300, n_events=400
        )
        print("running at quick scale (20/5/1 nodes, 300 subscribers)...")

    result = run_bibliographic(config)

    print()
    print("=== RLC table (paper §5.3) ===")
    print(rlc_table.render(result))
    print()
    print("=== Figure 7 (matching rate per node) ===")
    print(figure7.render(result))
    print()
    print(
        f"network carried {result.system.network.stats.total_messages} messages "
        f"({result.total_events} events published, "
        f"{result.total_subscriptions} subscriptions)"
    )


if __name__ == "__main__":
    main()
