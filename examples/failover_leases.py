#!/usr/bin/env python
"""Soft-state subscriptions under failures (Section 4.3).

The paper's TTL scheme "handles process failure and network partitions
well, in which case explicit unsubscribe messages cannot be sent".  This
example shows all three decay paths:

1. a healthy subscriber keeps renewing -> its filters stay put;
2. a *crashed* subscriber (stops renewing) -> its filters evaporate from
   the whole path within 3xTTL, with no explicit message;
3. an explicit unsubscribe -> immediate removal at the home node, decay
   above it.

Run:  python examples/failover_leases.py
"""

from repro import MultiStageEventSystem


class Alert:
    def __init__(self, severity: int, service: str):
        self._severity = severity
        self._service = service

    def get_severity(self) -> int:
        return self._severity

    def get_service(self) -> str:
        return self._service


def filters_in_overlay(system) -> int:
    return sum(len(node.table) for node in system.hierarchy.nodes())


def main() -> None:
    ttl = 10.0
    system = MultiStageEventSystem(stage_sizes=(4, 1), ttl=ttl, seed=3)
    system.register_type(Alert)
    system.advertise("Alert", schema=("class", "service", "severity"))

    publisher = system.create_publisher("monitoring")
    steady = system.create_subscriber("steady")
    doomed = system.create_subscriber("doomed")
    polite = system.create_subscriber("polite")

    inbox = {"steady": 0, "doomed": 0, "polite": 0}

    def counter(name):
        return lambda e, m, s: inbox.__setitem__(name, inbox[name] + 1)

    subs = {}
    for name, subscriber in (("steady", steady), ("doomed", doomed), ("polite", polite)):
        subs[name] = system.subscribe(
            subscriber,
            f'class = "Alert" and service = "db-{name}" and severity >= 2',
            handler=counter(name),
        )[0]
    system.drain()
    print(f"t={system.sim.now:.0f}: filters in overlay: {filters_in_overlay(system)}")

    system.start_maintenance()

    # Simulate a crash: 'doomed' never renews.
    doomed.stop_maintenance()

    # 'polite' unsubscribes explicitly halfway through.
    system.sim.schedule(
        2.5 * ttl, polite.unsubscribe, subs["polite"].subscription_id
    )

    # Publish a probe alert every TTL to watch delivery change.
    def probe():
        for name in ("steady", "doomed", "polite"):
            publisher.publish(Alert(3, f"db-{name}"))
        system.sim.schedule(ttl, probe)

    probe()

    for checkpoint in (1, 2, 3, 4, 5):
        system.run_for(ttl)
        print(
            f"t={system.sim.now:.0f}: filters={filters_in_overlay(system)} "
            f"inbox={inbox}"
        )

    system.stop_maintenance()
    print()
    print("steady kept receiving; doomed's filters decayed without any")
    print("unsubscribe message; polite's vanished immediately at its home")
    print("node and decayed above - exactly the paper's §4.3 behaviour.")


if __name__ == "__main__":
    main()
