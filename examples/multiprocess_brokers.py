#!/usr/bin/env python
"""Brokers as real OS processes, crashes as real SIGKILLs (DESIGN §14).

``runtime="asyncio"`` already put the overlay on real sockets, but every
broker still lived on the driver's event loop — a "crash" left all its
Python objects conveniently intact.  ``runtime="multiprocess"`` removes
the convenience: each broker is its own spawned process with its own
asyncio loop and data server, and ``system.kill`` delivers an actual
``SIGKILL`` — no destructors, no flushes, no goodbye frames.

This example:

- builds a 3-broker hierarchy, one OS process per broker (watch the
  pids), with the driver hosting only the publisher and subscriber;
- publishes quotes and shows them routed across process boundaries
  using PR 8's length-prefixed JSON frame wire format unchanged;
- SIGKILLs the subscriber's home broker mid-run;
- restores it: a *fresh process* recovers purely from the on-disk JSONL
  event log and the §4.3 refresh-or-restore lease renewals, and
  delivery resumes.

Run:  python examples/multiprocess_brokers.py
"""

import os
import tempfile

from repro import MultiStageEventSystem
from repro.log.config import LogConfig


class Quote:
    """A stock quote event."""

    def __init__(self, symbol: str, price: float):
        self._symbol = symbol
        self._price = price

    def get_symbol(self) -> str:
        return self._symbol

    def get_price(self) -> float:
        return self._price


def main() -> None:
    segments = tempfile.mkdtemp(prefix="repro-segments-")
    system = MultiStageEventSystem(
        stage_sizes=(2, 1),
        seed=1,
        ttl=2.0,  # short leases so recovery is quick in real time
        runtime="multiprocess",
        log=LogConfig(directory=segments, segment_size=4),
    )
    system.register_type(Quote)
    system.advertise("Quote", schema=("class", "symbol", "price"))

    print(f"driver pid {os.getpid()}; broker worker processes:")
    for name, snapshot in sorted(system.sim.poll_workers().items()):
        print(f"  {name:6s} pid {snapshot.get('pid')}")

    publisher = system.create_publisher("feed")
    subscriber = system.create_subscriber("alice")
    received = []
    system.subscribe(
        subscriber,
        'class = "Quote" and price < 100.0',
        handler=lambda event, meta, sub: received.append(event.get_price()),
    )
    assert system.run_until(lambda: subscriber._homes(), timeout=20.0)
    system.start_maintenance()

    for i in range(5):
        publisher.publish(Quote("ACME", float(i)))
    assert system.run_until(lambda: len(received) >= 5, timeout=15.0)
    print(f"delivered across processes: {sorted(received)}")

    home = subscriber._homes()[0]
    old_pid = system.sim.worker(home.name).process.pid
    print(f"SIGKILL {home.name} (pid {old_pid}) ...")
    system.kill(home)
    assert not system.sim.worker(home.name).process.is_alive()

    system.restore(home)
    new_pid = system.sim.worker(home.name).process.pid
    print(f"restored {home.name} as fresh process (pid {new_pid})")
    assert new_pid != old_pid
    assert system.run_until(
        lambda: home.stat("alive") and (home.stat("table_size") or 0) > 0,
        timeout=15.0,
    ), "renewals never rebuilt the restarted broker's table"

    publisher.publish(Quote("ACME", 99.0))
    assert system.run_until(lambda: 99.0 in received, timeout=15.0), (
        "no delivery through the restarted broker"
    )
    print(f"delivery resumed after recovery: {sorted(received)}")

    system.stop_maintenance()
    system.close()
    print("ok")


if __name__ == "__main__":
    main()
