#!/usr/bin/env python
"""The paper's running example, end to end (Sections 3.4 and 4).

Reproduces, executably:

- Example 4's ``Stock`` class and reflection-based meta-data;
- the ``BuyFilter`` closure — a *stateful* subscription no conjunctive
  filter can express, split into an indexable cover (routed through the
  overlay) and a residual predicate (evaluated only at the subscriber);
- the weakening ladder ``f -> f1 -> g2 -> g3`` of Section 3.4, printed
  stage by stage;
- a live run where two subscribers with ``BuyFilter(Foo, 10.0, 0.95)``
  and ``BuyFilter(Foo, 11.0, 0.97)`` receive exactly the events the
  paper's semantics dictate.

Run:  python examples/stock_ticker.py
"""

from repro import MultiStageEventSystem, parse_filter, weakening_chain
from repro.core.stages import AttributeStageAssociation
from repro.workloads.stocks import STOCK_SCHEMA, Stock, StockWorkload


class BuyFilter:
    """The paper's stateful filter: buy when the price keeps dropping.

    Matches stock events cheaper than ``maximum`` whose price is below a
    percentage of the previous *matching* event's price.
    """

    def __init__(self, symbol: str, maximum: float, threshold: float):
        self.symbol = symbol
        self.maximum = maximum
        self.threshold = threshold
        self._last = 0.0

    def indexable_cover(self):
        """The conjunctive filter f1/g1 of Section 3.4: type, symbol, and
        price ceiling — but not the price-difference logic."""
        return parse_filter(
            f'class = "Stock" and symbol = "{self.symbol}" '
            f"and price < {self.maximum}"
        )

    def residual(self, stock: Stock) -> bool:
        price = stock.get_price()
        if price >= self.maximum:
            return False
        match = price <= self._last * self.threshold
        self._last = price
        return match


def show_weakening_ladder() -> None:
    """Print the f -> f1 -> g2 -> g3 ladder of Section 3.4."""
    association = AttributeStageAssociation.from_prefixes(STOCK_SCHEMA, [3, 3, 2, 1])
    f1 = parse_filter('class = "Stock" and symbol = "Foo" and price < 10.0')
    print("Weakening ladder for BuyFilter(Foo, 10.0, 0.95):")
    for stage, weakened in enumerate(weakening_chain(f1, association)):
        print(f"  stage {stage}: {weakened}")
    print()


def main() -> None:
    show_weakening_ladder()

    system = MultiStageEventSystem(stage_sizes=(4, 2, 1), seed=7)
    system.register_type(Stock)
    system.advertise("Stock", schema=STOCK_SCHEMA)

    publisher = system.create_publisher("exchange")
    buyer_f = system.create_subscriber("buyer-f")
    buyer_g = system.create_subscriber("buyer-g")

    f = BuyFilter("Foo", 10.0, 0.95)
    g = BuyFilter("Foo", 11.0, 0.97)
    bought = {"buyer-f": [], "buyer-g": []}

    def handler_for(name):
        def handler(event, metadata, subscription):
            bought[name].append(event.get_price())
            print(f"  {name} buys {event.get_symbol()} @ {event.get_price()}")

        return handler

    system.subscribe(
        buyer_f, f.indexable_cover(), residual=f.residual,
        handler=handler_for("buyer-f"),
    )
    system.subscribe(
        buyer_g, g.indexable_cover(), residual=g.residual,
        handler=handler_for("buyer-g"),
    )
    system.drain()

    # A falling-then-rising price path; only the drops below the
    # threshold of the previous matching price trigger buys.
    prices = [10.5, 9.8, 9.0, 8.9, 8.0, 8.2, 7.4]
    print("quote stream:", prices)
    for price in prices:
        publisher.publish(Stock("Foo", price))
        system.drain()

    print(f"buyer-f bought at: {bought['buyer-f']}")
    print(f"buyer-g bought at: {bought['buyer-g']}")

    # A random-walk stream over many symbols exercises the same pipeline
    # at a more realistic scale.
    workload = StockWorkload(__import__("random").Random(3), n_symbols=20)
    for quote in workload.quotes(200):
        publisher.publish(quote)
    system.drain()
    print(
        f"after 200 random quotes: buyer-f received "
        f"{buyer_f.counters.events_received} events, "
        f"delivered {buyer_f.counters.events_delivered}"
    )


if __name__ == "__main__":
    main()
