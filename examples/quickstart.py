#!/usr/bin/env python
"""Quickstart: publish typed events, subscribe with content filters.

Demonstrates the core loop of the library in ~40 lines:

1. define an application event type following the accessor convention;
2. build a multi-stage broker hierarchy;
3. advertise the event class (schema in generality order);
4. subscribe with a content filter written as plain text;
5. publish events and watch only the matching ones arrive.

Run:  python examples/quickstart.py
"""

from repro import MultiStageEventSystem


class Stock:
    """An encapsulated event type: private state, public accessors."""

    def __init__(self, symbol: str, price: float):
        self._symbol = symbol
        self._price = price

    def get_symbol(self) -> str:
        return self._symbol

    def get_price(self) -> float:
        return self._price


def main() -> None:
    # A small hierarchy: 4 stage-1 brokers, 2 stage-2, 1 root.
    system = MultiStageEventSystem(stage_sizes=(4, 2, 1), seed=42)
    system.register_type(Stock)
    system.advertise("Stock", schema=("class", "symbol", "price"))

    publisher = system.create_publisher("ticker")
    subscriber = system.create_subscriber("alice")

    received = []

    def on_stock(event, metadata, subscription):
        received.append(event)
        print(f"  alice <- {event.get_symbol()} @ {event.get_price()}")

    # Filters can be written as text; unspecified attributes are wildcards.
    system.subscribe(
        subscriber,
        'class = "Stock" and symbol = "Foo" and price < 10.0',
        handler=on_stock,
    )
    system.drain()  # let the join protocol settle

    print("publishing 4 quotes...")
    publisher.publish(Stock("Foo", 9.0))   # matches
    publisher.publish(Stock("Foo", 12.0))  # price too high
    publisher.publish(Stock("Bar", 5.0))   # wrong symbol
    publisher.publish(Stock("Foo", 8.5))   # matches
    system.drain()

    assert [e.get_price() for e in received] == [9.0, 8.5]
    print(f"delivered {len(received)}/4 events — perfect end-to-end filtering")

    # The brokers never touched the Stock objects: the root routed on
    # reflected meta-data alone, using the weakest filter of the ladder.
    root = system.root
    print(f"root filter table: {[str(f) for f in root.table.filters()]}")


if __name__ == "__main__":
    main()
