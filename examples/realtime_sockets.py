#!/usr/bin/env python
"""Real sockets, same overlay: the asyncio runtime backend (DESIGN §13).

Every other example drives the overlay inside the deterministic
simulator.  This one runs the *identical* broker/subscriber code over
real localhost TCP — ``runtime="asyncio"`` swaps the ``Executor`` and
``Transport`` bindings and nothing else:

- a publisher feeds a 2-level broker hierarchy over length-prefixed
  JSON frames on real sockets;
- every broker persists its event log to JSONL segment files on disk;
- the subscriber's home broker is killed mid-run (socket torn down,
  soft state and in-memory log gone);
- on restart the broker reloads its log from the on-disk segments,
  lease renewals rebuild its subscription table, and delivery resumes.

Run:  python examples/realtime_sockets.py
"""

import os
import tempfile

from repro import MultiStageEventSystem
from repro.log.config import LogConfig


class Quote:
    """A stock quote event."""

    def __init__(self, symbol: str, price: float):
        self._symbol = symbol
        self._price = price

    def get_symbol(self) -> str:
        return self._symbol

    def get_price(self) -> float:
        return self._price


def main() -> None:
    segments = tempfile.mkdtemp(prefix="repro-segments-")
    system = MultiStageEventSystem(
        stage_sizes=(2, 1),
        seed=1,
        ttl=2.0,  # short leases so recovery is quick in real time
        runtime="asyncio",
        log=LogConfig(directory=segments, segment_size=4),
    )
    system.register_type(Quote)
    system.advertise("Quote", schema=("class", "symbol", "price"))

    publisher = system.create_publisher("feed")
    subscriber = system.create_subscriber("alice")
    received = []
    system.subscribe(
        subscriber,
        'class = "Quote" and price < 100.0',
        handler=lambda event, meta, sub: received.append(event.get_price()),
    )
    system.run_until(lambda: subscriber._homes(), timeout=10.0)
    system.start_maintenance()

    print("== phase 1: publish over real TCP ==")
    for i in range(5):
        publisher.publish(Quote("ACME", float(i)))
    system.run_until(lambda: len(received) >= 5, timeout=10.0)
    print(f"delivered: {received}")
    print(f"on-disk segments: {sorted(os.listdir(segments))}")

    home = subscriber._homes()[0]
    endpoint = system.network.endpoint(home)
    print(f"\n== phase 2: kill broker {home.name} (port {endpoint.port}) ==")
    system.kill(home)
    system.run_until(lambda: home.crashed, timeout=5.0)
    print(f"endpoint state: {endpoint.state}; in-memory log: {home.log}")

    print(f"\n== phase 3: restart {home.name}, recover from disk ==")
    system.restore(home)
    system.run_until(lambda: not home.crashed and home.log is not None, timeout=10.0)
    print(
        f"endpoint state: {endpoint.state} (same port: {endpoint.port}); "
        f"log records recovered from JSONL: {len(home.log)}"
    )
    system.run_until(lambda: len(home.table) > 0, timeout=10.0)
    print("subscription table rebuilt by lease renewal")

    publisher.publish(Quote("ACME", 99.0))
    system.run_until(lambda: 99.0 in received, timeout=10.0)
    print(f"post-restart delivery works: {received}")
    print(f"\nendpoint FSM history: {endpoint.history}")

    system.stop_maintenance()
    system.close()


if __name__ == "__main__":
    main()
