#!/usr/bin/env python
"""Flow control under overload: backpressure, bounded queues, shedding.

Every broker here processes at a finite rate while a firehose publisher
offers events several times faster than the overlay can serve them.
Without flow control that is congestion collapse: queues (and delivery
latency) grow without bound.  With a :class:`~repro.flow.FlowConfig`:

- the root grants the publisher one credit per event it *processes*, so
  acceptance self-throttles to the service capacity (hop-by-hop
  backpressure, piggybacked on the existing reliable-channel acks);
- events the publisher cannot send wait in a bounded local queue whose
  overflow is shed observably — counted per reason and visible as
  ``shed`` spans in the causal trace;
- total queued memory stays under the sum of the configured capacities
  no matter how hard the source pushes.

A second run adds a token-bucket rate limit at the publisher, moving the
refusals from queue overflow to explicit rate limiting.

Run:  python examples/overload_shedding.py
"""

from repro import MultiStageEventSystem
from repro.flow import FlowConfig


class Tick:
    """A market tick event."""

    def __init__(self, symbol: str, price: float):
        self._symbol = symbol
        self._price = price

    def get_symbol(self) -> str:
        return self._symbol

    def get_price(self) -> float:
        return self._price


def run_firehose(flow, rate_limit=None, label=""):
    system = MultiStageEventSystem(
        stage_sizes=(2, 1),
        seed=23,
        flow=flow,
        service_rate=200.0,   # each broker serves 200 events/s
        service_batch=8,
    )
    system.advertise("Tick", schema=("class", "symbol", "price"))

    delivered = []
    subscriber = system.create_subscriber("trader")
    system.subscribe(
        subscriber,
        'class = "Tick" and symbol = "ACME"',
        handler=lambda event, meta, sub: delivered.append(event.get_price()),
    )
    system.drain()

    publisher = system.create_publisher("firehose", rate_limit=rate_limit)
    accepted = 0
    peak_queued = 0

    # Offer 1000 events/s against 200/s of service for two seconds.
    def blast():
        nonlocal accepted
        if publisher.publish(Tick("ACME", 100.0)):
            accepted += 1

    def probe():
        nonlocal peak_queued
        peak_queued = max(peak_queued, system.total_queue_depth())

    feed = system.sim.every(0.001, blast)
    probe_handle = system.sim.every(0.01, probe)
    system.run_for(2.0)
    feed.cancel()
    system.run_for(1.0)  # let the bounded queues drain
    probe_handle.cancel()

    counters = publisher.counters
    print(f"--- {label} ---")
    print(f"offered        : {publisher.events_published + counters.rate_limited}")
    print(f"accepted       : {accepted}")
    print(f"delivered      : {len(delivered)}")
    print(f"rate-limited   : {counters.rate_limited}")
    print(f"shed           : {system.total_events_shed()} "
          f"({dict(sorted(counters.sheds_by_reason.items()))})")
    print(f"peak queued    : {peak_queued}")
    print(f"still queued   : {system.total_queue_depth()}")
    print()
    return accepted, delivered, peak_queued


def main() -> None:
    flow = FlowConfig(queue_capacity=64, link_window=16,
                      publisher_queue_capacity=32)
    # Every bounded queue's capacity, summed: 3 broker inbound queues,
    # the root's two outbound queues, the publisher's local queue.
    budget = 3 * flow.queue_capacity + 2 * flow.outbound_capacity + 32

    accepted, delivered, peak = run_firehose(
        flow, label="credit backpressure only"
    )
    # Backpressure throttled acceptance to roughly service capacity, and
    # everything accepted was delivered once the source stopped.
    assert accepted < 1000, "backpressure never engaged"
    assert peak <= budget, "queues exceeded configured bounds"
    assert len(delivered) >= accepted - flow.link_window

    accepted_rl, _, _ = run_firehose(
        flow, rate_limit=150.0, label="with 150/s token-bucket rate limit"
    )
    assert accepted_rl <= accepted, "rate limit admitted more than credits"

    print("the firehose offered 5x the overlay's capacity; flow control")
    print("kept memory bounded and shed the excess at the edge, visibly.")


if __name__ == "__main__":
    main()
