#!/usr/bin/env python
"""Durable subscriptions: offline buffering at the home node (§2.1).

The paper's overlay nodes are "in charge of storing events for
temporarily disconnected subscribers with durable subscriptions".  This
example runs a mobile-style client that sleeps through part of a feed:

- while disconnected (durable), its home node buffers matching events;
- on reconnection the buffer replays in publish order;
- a non-durable peer simply misses the same window;
- an absence longer than the 3xTTL lease window loses the subscription
  entirely — durability never outlives the soft state (§4.3).

Run:  python examples/durable_subscriptions.py
"""

from repro import MultiStageEventSystem


class Reading:
    """A sensor reading event."""

    def __init__(self, sensor: str, value: float):
        self._sensor = sensor
        self._value = value

    def get_sensor(self) -> str:
        return self._sensor

    def get_value(self) -> float:
        return self._value


def main() -> None:
    ttl = 20.0
    system = MultiStageEventSystem(stage_sizes=(4, 1), ttl=ttl, seed=17)
    system.advertise("Reading", schema=("class", "sensor", "value"))

    publisher = system.create_publisher("sensor-hub")
    laptop = system.create_subscriber("laptop")      # durable
    dashboard = system.create_subscriber("dashboard")  # non-durable

    inboxes = {"laptop": [], "dashboard": []}

    def collector(name):
        return lambda event, meta, sub: inboxes[name].append(event.get_value())

    for name, subscriber in (("laptop", laptop), ("dashboard", dashboard)):
        system.subscribe(
            subscriber,
            'class = "Reading" and sensor = "temp" and value >= 30.0',
            handler=collector(name),
        )
    system.drain()
    system.start_maintenance()

    def burst(values):
        for value in values:
            publisher.publish(Reading("temp", value))
        system.run_for(1.0)

    burst([31.0])
    print(f"t={system.sim.now:>5.1f}  both online:        {inboxes}")

    # Both clients drop off the network; only the laptop asked for
    # durability.
    laptop.disconnect(durable=True)
    dashboard.disconnect(durable=False)
    system.run_for(1.0)
    burst([32.0, 29.0, 33.0])  # 29.0 never matches anyone
    print(f"t={system.sim.now:>5.1f}  both offline:       {inboxes}")

    laptop.reconnect()
    dashboard.reconnect()
    system.run_for(1.0)
    print(f"t={system.sim.now:>5.1f}  reconnected:        {inboxes}")
    assert inboxes["laptop"] == [31.0, 32.0, 33.0]
    assert inboxes["dashboard"] == [31.0]

    # Sleep through the whole lease window: the subscription is gone.
    laptop.disconnect(durable=True)
    system.run_for(ttl * 4)
    burst([35.0])
    laptop.reconnect()
    system.run_for(1.0)
    print(f"t={system.sim.now:>5.1f}  after 4xTTL sleep:  {inboxes}")
    assert 35.0 not in inboxes["laptop"]
    print()
    print("durable buffering bridged the short outage; the long outage")
    print("decayed with the lease — durability never outlives soft state.")
    system.stop_maintenance()


if __name__ == "__main__":
    main()
