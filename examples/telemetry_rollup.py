#!/usr/bin/env python
"""In-broker information flows: per-region telemetry rollups (DESIGN §15).

Six sensors in two regions publish readings every half second.  The
dashboards do not want raw readings — they want a per-region average
per window.  Installing a tumbling-window rollup *flow on the root
broker* derives one ``TelemetryRollup`` event per region per window and
republishes it through the normal matching/covering/delivery path, so
the dashboards' downlink carries one event per window instead of the
full sensor fan-in, while a raw-path watcher keeps receiving its single
sensor feed untouched.

The same code runs on the deterministic simulator and on real localhost
TCP sockets:

    python examples/telemetry_rollup.py          # runtime="sim"
    python examples/telemetry_rollup.py asyncio  # real sockets
"""

import sys

from repro import MultiStageEventSystem
from repro.workloads.telemetry import TELEMETRY_EVENT_CLASS, TELEMETRY_SCHEMA, TelemetryWorkload

WINDOW = 0.5  # seconds (simulated or wall, per runtime)
ROUNDS = 4


def main(runtime: str = "sim") -> None:
    system = MultiStageEventSystem(
        stage_sizes=(2, 1), seed=3, runtime=runtime, tracing=True
    )
    workload = TelemetryWorkload(
        system.rngs.stream("telemetry"), n_regions=2, sensors_per_region=3
    )
    system.advertise(TELEMETRY_EVENT_CLASS, schema=TELEMETRY_SCHEMA)

    # The flow: avg(reading) per region per 0.5 s tumbling window,
    # hosted on the root broker (which sees every published event).
    # install_flows auto-advertises the derived TelemetryRollup class.
    system.install_flows([workload.rollup_flow(window=WINDOW)])

    publisher = system.create_publisher("sensors")
    rollups = []
    dashboards = []
    for region in workload.regions:
        dashboard = system.create_subscriber(f"dashboard-{region}")
        system.subscribe(
            dashboard,
            workload.rollup_subscription(region),
            handler=lambda e, m, s: rollups.append(
                (m["region"], m["avg_reading"], m["n"])
            ),
        )
        dashboards.append(dashboard)

    # A raw-path watcher: one sensor's feed, untouched by the flow.
    raw = []
    watcher = system.create_subscriber("watcher")
    system.subscribe(
        watcher,
        workload.sensor_subscription(workload.regions[0], 0),
        handler=lambda e, m, s: raw.append(m["reading"]),
    )
    ready = dashboards + [watcher]
    system.run_until(
        lambda: all(s._homes() for s in ready) and system.root.flows(),
        timeout=10.0,
    )

    print(f"== runtime={runtime}: {ROUNDS} rounds of readings ==")
    raw_published = 0
    for _ in range(ROUNDS):
        for reading in workload.readings_round():
            publisher.publish(reading, event_class=TELEMETRY_EVENT_CLASS)
            raw_published += 1
        system.run_for(WINDOW)
    expected = ROUNDS * len(workload.regions)
    system.run_until(lambda: len(rollups) >= expected, timeout=10.0)

    print(f"raw events published : {raw_published}")
    print(f"rollups delivered    : {len(rollups)}")
    for region, avg, n in rollups:
        print(f"  {region}: avg_reading={avg:.3f} over n={n}")
    print(f"watcher raw feed     : {len(raw)} readings (flow-independent)")
    derive_spans = system.tracer.kinds("derive")
    if derive_spans:
        span = derive_spans[0]
        print(
            f"first derive span    : {span.node} flow={span.detail('flow')} "
            f"inputs={span.detail('inputs')}"
        )
    system.close()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "sim")
