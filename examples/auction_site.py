#!/usr/bin/env python
"""Multi-class auction site: Example 5/6, wildcards, and polymorphism.

Shows three things the simpler examples don't:

1. **two event classes** (Stock and Auction) coexisting in one overlay,
   with Example 6's ``G_Auction`` attribute-stage association;
2. **wildcard subscriptions** (§4.4): a subscriber interested in *all*
   vehicle auctions regardless of capacity/price attaches higher in the
   hierarchy (watch its home node's stage);
3. **type-based subscriptions** (§2.1 "event safety"): subscribing to a
   base class delivers events of subtypes advertised *later*, without
   the subscriber doing anything — the paper's polymorphic-events claim.

Run:  python examples/auction_site.py
"""

import random

from repro import MultiStageEventSystem
from repro.workloads.auctions import (
    AUCTION_SCHEMA,
    Auction,
    AuctionWorkload,
    EXAMPLE6_PREFIXES,
)
from repro.workloads.stocks import STOCK_SCHEMA, Stock


class CharityAuction(Auction):
    """A subtype added later by the publisher — subscribers to Auction
    receive these without re-subscribing."""

    def __init__(self, product, kind, capacity, price, cause):
        super().__init__(product, kind, capacity, price)
        self._cause = cause

    def get_cause(self) -> str:
        return self._cause


def main() -> None:
    system = MultiStageEventSystem(stage_sizes=(6, 3, 1), seed=11)
    system.register_type(Stock)
    system.register_type(Auction)

    # Two classes advertised with their own schemas / stage associations.
    system.advertise("Stock", schema=STOCK_SCHEMA)
    system.advertise(
        "Auction", schema=AUCTION_SCHEMA, stage_prefixes=EXAMPLE6_PREFIXES
    )

    publisher = system.create_publisher("market")
    car_hunter = system.create_subscriber("car-hunter")
    fleet_buyer = system.create_subscriber("fleet-buyer")
    everything = system.create_subscriber("auction-archive")

    log = []

    def logger(name):
        return lambda event, meta, sub: log.append((name, meta.get("kind"), meta.get("price")))

    # Example 5's f4: small cheap cars only.
    system.subscribe(
        car_hunter,
        'class = "Auction" and product = "Vehicle" and kind = "Car" '
        "and capacity < 2000 and price < 10000.0",
        handler=logger("car-hunter"),
    )
    # Wildcard subscription: all vehicles, any kind/capacity/price.
    # 'kind' and everything less general are unspecified -> wildcards.
    system.subscribe(
        fleet_buyer,
        'class = "Auction" and product = "Vehicle"',
        handler=logger("fleet-buyer"),
    )
    # Type-based subscription: every Auction, including future subtypes.
    system.subscribe(everything, event_class=Auction, handler=logger("archive"))
    system.drain()

    for name, subscriber in (("car-hunter", car_hunter), ("fleet-buyer", fleet_buyer)):
        sub = subscriber.subscriptions()[0]
        home = subscriber.home_of(sub.subscription_id)
        print(f"{name} attached at {home.name} (stage {home.stage})")

    workload = AuctionWorkload(random.Random(5))
    for listing in workload.listings(60):
        publisher.publish(listing)
    publisher.publish(Auction("Vehicle", "Car", 1500, 8_000.0))  # f4 match
    system.drain()

    # The publisher now *extends the type hierarchy*; the archive
    # subscriber picks up the new subtype automatically.
    system.register_type(CharityAuction)
    system.advertise(
        "CharityAuction",
        schema=AUCTION_SCHEMA,
        stage_prefixes=EXAMPLE6_PREFIXES,
    )
    system.drain()
    publisher.publish(CharityAuction("Furniture", "Chair", 4, 120.0, "library fund"))
    system.drain()

    by_name = {}
    for name, kind, price in log:
        by_name.setdefault(name, []).append((kind, price))
    for name in ("car-hunter", "fleet-buyer", "archive"):
        deliveries = by_name.get(name, [])
        print(f"{name}: {len(deliveries)} deliveries")
    charity = [entry for entry in by_name.get("archive", []) if entry[0] == "Chair"]
    print(f"archive received the CharityAuction (new subtype): {bool(charity)}")


if __name__ == "__main__":
    main()
