"""Unit tests for the simulated-time token bucket (flow/ratelimit.py)."""

import pytest

from repro.flow import RateLimiter


class TestRateLimiter:
    def test_burst_is_available_immediately(self):
        limiter = RateLimiter(rate=10.0, burst=3.0)
        assert all(limiter.allow(0.0) for _ in range(3))
        assert not limiter.allow(0.0)
        assert limiter.denied == 1

    def test_refills_at_rate(self):
        limiter = RateLimiter(rate=10.0, burst=2.0)
        limiter.allow(0.0)
        limiter.allow(0.0)
        assert not limiter.allow(0.05)  # refilled 0.5 token
        assert limiter.allow(0.1)       # one full token back

    def test_refill_is_capped_at_burst(self):
        limiter = RateLimiter(rate=100.0, burst=2.0)
        assert limiter.allow(1000.0)
        assert limiter.allow(1000.0)
        assert not limiter.allow(1000.0)

    def test_time_never_runs_backwards(self):
        """An out-of-order timestamp must not mint extra tokens."""
        limiter = RateLimiter(rate=1.0, burst=1.0)
        assert limiter.allow(5.0)
        assert not limiter.allow(4.0)
        assert not limiter.allow(5.0)

    def test_fractional_cost(self):
        limiter = RateLimiter(rate=1.0, burst=1.0)
        assert limiter.allow(0.0, n=0.5)
        assert limiter.allow(0.0, n=0.5)
        assert not limiter.allow(0.0, n=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, burst=0.5)
