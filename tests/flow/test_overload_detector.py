"""Unit tests for the EWMA overload detector (flow/overload.py)."""

import pytest

from repro.flow import NORMAL, OVERLOADED, OverloadDetector


class TestOverloadDetector:
    def test_starts_normal(self):
        detector = OverloadDetector(capacity=100)
        assert detector.state == NORMAL
        assert not detector.overloaded
        assert detector.transitions == 0

    def test_single_spike_does_not_trip_it(self):
        """The EWMA smooths a one-sample burst below the watermark."""
        detector = OverloadDetector(capacity=100, alpha=0.4, high=0.75)
        assert detector.observe(0.0, 100) is None  # ewma = 40 < 75
        assert not detector.overloaded

    def test_sustained_depth_trips_overload_once(self):
        detector = OverloadDetector(capacity=100, alpha=0.4, high=0.75, low=0.25)
        transitions = [detector.observe(float(t), 100) for t in range(10)]
        assert OVERLOADED in transitions
        assert transitions.count(OVERLOADED) == 1
        assert detector.overloaded
        assert detector.transitions == 1

    def test_hysteresis_requires_low_watermark_to_recover(self):
        detector = OverloadDetector(capacity=100, alpha=1.0, high=0.75, low=0.25)
        assert detector.observe(0.0, 80) == OVERLOADED
        # Between the watermarks: still overloaded (no flapping).
        assert detector.observe(1.0, 50) is None
        assert detector.overloaded
        assert detector.observe(2.0, 10) == NORMAL
        assert not detector.overloaded
        assert detector.transitions == 2

    def test_transition_hook_sees_state_time_and_ewma(self):
        seen = []
        detector = OverloadDetector(
            capacity=10, alpha=1.0, high=0.5, low=0.1,
            on_transition=lambda state, now, ewma: seen.append((state, now, ewma)),
        )
        detector.observe(3.5, 9)
        assert seen == [(OVERLOADED, 3.5, 9.0)]

    def test_reset_forgets_history(self):
        detector = OverloadDetector(capacity=10, alpha=1.0, high=0.5, low=0.1)
        detector.observe(0.0, 9)
        assert detector.overloaded
        detector.reset()
        assert detector.state == NORMAL
        assert detector.ewma == 0.0
        # transitions is a lifetime counter, not soft state.
        assert detector.transitions == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadDetector(capacity=0)
        with pytest.raises(ValueError):
            OverloadDetector(capacity=10, alpha=0.0)
        with pytest.raises(ValueError):
            OverloadDetector(capacity=10, high=0.3, low=0.5)
