"""Unit tests for the sender-side credit window (flow/credits.py)."""

import pytest

from repro.flow import CreditWindow


class TestCreditWindow:
    def test_starts_full(self):
        window = CreditWindow(4)
        assert window.available == 4
        assert not window.exhausted

    def test_take_spends_and_reports(self):
        window = CreditWindow(2)
        assert window.take()
        assert window.take()
        assert window.exhausted
        assert not window.take()
        assert window.available == 0

    def test_failed_take_counts_a_stall_and_changes_nothing(self):
        window = CreditWindow(1)
        assert window.take()
        assert not window.take()
        assert not window.take()
        assert window.stalls == 2
        assert window.available == 0

    def test_take_many_is_all_or_nothing(self):
        window = CreditWindow(3)
        assert not window.take(4)
        assert window.available == 3
        assert window.take(3)
        assert window.exhausted

    def test_grant_replenishes(self):
        window = CreditWindow(3)
        window.take(3)
        window.grant(2)
        assert window.available == 2
        assert window.take(2)

    def test_grant_is_capped_at_capacity(self):
        window = CreditWindow(3)
        window.take(1)
        window.grant(10)
        assert window.available == 3

    def test_negative_grant_rejected(self):
        with pytest.raises(ValueError):
            CreditWindow(3).grant(-1)

    def test_reset_restores_full_window(self):
        window = CreditWindow(5)
        window.take(5)
        window.reset()
        assert window.available == 5
        assert not window.exhausted

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            CreditWindow(0)
