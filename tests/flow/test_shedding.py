"""Unit tests for bounded queues and shedding policies (flow/shedding.py)."""

import pytest

from repro.flow import POLICIES, BoundedQueue


class TestBoundedQueueBasics:
    def test_unbounded_never_sheds(self):
        queue = BoundedQueue(None)
        for i in range(1000):
            accepted, shed = queue.offer(i)
            assert accepted and shed == []
        assert len(queue) == 1000

    def test_fifo_order(self):
        queue = BoundedQueue(4)
        for i in range(3):
            queue.offer(i)
        assert [queue.popleft() for _ in range(3)] == [0, 1, 2]

    def test_drain_empties_and_returns_in_order(self):
        queue = BoundedQueue(4)
        for i in range(3):
            queue.offer(i)
        assert queue.drain() == [0, 1, 2]
        assert len(queue) == 0
        assert not queue

    def test_capacity_and_policy_validation(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)
        with pytest.raises(ValueError):
            BoundedQueue(4, policy="drop_random")
        assert "drop_tail" in POLICIES

    def test_per_call_capacity_override(self):
        """The overload detector shrinks effective capacity per offer."""
        queue = BoundedQueue(10)
        queue.offer(1)
        queue.offer(2)
        accepted, shed = queue.offer(3, capacity=2)
        assert not accepted and shed == [3]
        accepted, _ = queue.offer(3)  # configured bound still admits
        assert accepted


class TestDropTail:
    def test_rejects_the_arrival(self):
        queue = BoundedQueue(2, "drop_tail")
        queue.offer("a")
        queue.offer("b")
        accepted, shed = queue.offer("c")
        assert not accepted
        assert shed == ["c"]
        assert list(queue) == ["a", "b"]


class TestDropOldest:
    def test_evicts_head_to_admit_arrival(self):
        queue = BoundedQueue(2, "drop_oldest")
        queue.offer("a")
        queue.offer("b")
        accepted, shed = queue.offer("c")
        assert accepted
        assert shed == ["a"]
        assert list(queue) == ["b", "c"]


class TestPriorityBySelectivity:
    def _queue(self, capacity=3):
        return BoundedQueue(
            capacity, "priority_by_selectivity", priority=lambda item: item[1]
        )

    def test_evicts_lowest_priority(self):
        queue = self._queue()
        queue.offer(("a", 5))
        queue.offer(("b", 1))
        queue.offer(("c", 3))
        accepted, shed = queue.offer(("d", 4))
        assert accepted
        assert shed == [("b", 1)]
        assert list(queue) == [("a", 5), ("c", 3), ("d", 4)]

    def test_arrival_loses_ties(self):
        queue = self._queue(capacity=1)
        queue.offer(("a", 2))
        accepted, shed = queue.offer(("b", 2))
        assert not accepted
        assert shed == [("b", 2)]
        assert list(queue) == [("a", 2)]

    def test_oldest_equal_priority_evicted_first(self):
        queue = self._queue()
        queue.offer(("old", 1))
        queue.offer(("new", 1))
        queue.offer(("top", 9))
        accepted, shed = queue.offer(("mid", 5))
        assert accepted
        assert shed == [("old", 1)]

    def test_priority_evaluated_once_at_admission(self):
        calls = []

        def priority(item):
            calls.append(item)
            return 1.0

        queue = BoundedQueue(2, "priority_by_selectivity", priority=priority)
        queue.offer("a")
        queue.offer("b")
        queue.offer("c")
        queue.offer("d")
        assert calls == ["a", "b", "c", "d"]
