"""Unit tests for FlowConfig validation (flow/config.py)."""

from dataclasses import replace

import pytest

from repro.flow import FlowConfig


class TestFlowConfig:
    def test_defaults_are_valid_and_frozen(self):
        config = FlowConfig()
        assert config.queue_capacity == 128
        assert config.policy == "drop_tail"
        with pytest.raises(AttributeError):
            config.queue_capacity = 1

    def test_replace_revalidates(self):
        config = FlowConfig()
        with pytest.raises(ValueError):
            replace(config, link_window=0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("queue_capacity", 0),
            ("outbound_capacity", 0),
            ("link_window", 0),
            ("control_window", -1),
            ("policy", "coin_flip"),
            ("publisher_queue_capacity", 0),
            ("publisher_rate", 0.0),
            ("ewma_alpha", 1.5),
            ("overload_low", 0.9),  # >= overload_high
            ("overload_capacity_factor", 0.0),
        ],
    )
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            FlowConfig(**{field: value})

    def test_priority_policy_accepted(self):
        config = FlowConfig(policy="priority_by_selectivity")
        assert config.policy == "priority_by_selectivity"
