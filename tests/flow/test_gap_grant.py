"""Regression test for the DESIGN §10 credit leak (gap-grant fix).

Credits are granted back as the receiver *processes* events, so an
event lost on the wire used to strand its credit forever: the data
plane is deliberately best-effort (no retransmit), and nothing on the
receiving side ever learned the event existed.  Under sustained loss
the sender's window ratcheted towards zero and the link starved.

The fix numbers credit-backed events with per-link data-frame
sequence numbers (:class:`~repro.overlay.messages.DataFrame`); a
receiver seeing frame N+k after N knows k events died on the wire and
grants their credits back immediately.  ``FlowConfig(gap_grant=False)``
keeps the wire format but disables the grant — the ablation these
tests use to prove the leak is real and the fix closes it.
"""

from repro.core.engine import MultiStageEventSystem
from repro.flow import FlowConfig
from repro.sim.network import FaultPlan

LINK_WINDOW = 8


class Alert:
    def __init__(self, topic, level):
        self._topic = topic
        self._level = level

    def get_topic(self):
        return self._topic

    def get_level(self):
        return self._level


def run_lossy(gap_grant, seed=11, publishes=300, loss=0.1):
    """Publish through a 10%-lossy publisher->root link; return
    (system, publisher, delivered levels)."""
    flow = FlowConfig(link_window=LINK_WINDOW, gap_grant=gap_grant)
    system = MultiStageEventSystem(
        stage_sizes=(4, 2, 1), seed=seed, ttl=30.0, flow=flow, tracing=True
    )
    system.advertise("Alert", schema=("class", "topic", "level"))
    system.drain()
    publisher = system.create_publisher("source")
    subscriber = system.create_subscriber("sink")
    got = []
    system.subscribe(
        subscriber,
        'class = "Alert" and topic = "db"',
        handler=lambda e, m, s: got.append(m["level"]),
    )
    system.drain()

    plan = FaultPlan(seed)
    plan.add_window(
        0.0, 1e9, loss=loss, links=[(publisher, system.root)]
    )
    system.network.install_faults(plan)

    for level in range(publishes):
        publisher.publish(Alert("db", level), event_class="Alert")
        system.run_for(0.01)
    system.run_for(5.0)
    return system, publisher, got


def test_gap_grant_recovers_credits_lost_to_the_wire():
    system, publisher, got = run_lossy(gap_grant=True)
    root = system.root

    # The wire really did eat data frames...
    assert root.counters.credit_gap_grants > 0
    # ...yet every lost event's credit came back: once the dust settles
    # the publisher's window is full again and nothing is stuck locally.
    assert publisher._window.available == LINK_WINDOW
    assert publisher.pending_count == 0
    # Lost events are genuinely lost (data plane is best-effort), but the
    # link kept flowing: the surviving ~90% reached the subscriber.
    assert len(got) > 200


def test_without_gap_grant_the_window_leaks():
    system, publisher, got = run_lossy(gap_grant=False)
    root = system.root

    # Ablated: the root saw the same gaps but granted nothing for them.
    assert root.counters.credit_gap_grants == 0
    # The credits of every swallowed event are stranded: the window can
    # never refill, and with ~30 losses against an 8-credit window the
    # link starved long before the run ended.
    assert publisher._window.available < LINK_WINDOW
    leaked = LINK_WINDOW - publisher._window.available - publisher.pending_count
    assert leaked + publisher.pending_count > 0
    # Starvation is visible end-to-end: far fewer events got through
    # than with the fix.
    assert len(got) < 200


def test_gap_grant_is_idle_on_a_clean_wire():
    flow = FlowConfig(link_window=LINK_WINDOW, gap_grant=True)
    system = MultiStageEventSystem(
        stage_sizes=(4, 2, 1), seed=3, ttl=30.0, flow=flow
    )
    system.advertise("Alert", schema=("class", "topic", "level"))
    system.drain()
    publisher = system.create_publisher("source")
    subscriber = system.create_subscriber("sink")
    got = []
    system.subscribe(
        subscriber,
        'class = "Alert" and topic = "db"',
        handler=lambda e, m, s: got.append(m["level"]),
    )
    system.drain()
    for level in range(100):
        publisher.publish(Alert("db", level), event_class="Alert")
        system.run_for(0.01)
    system.run_for(2.0)

    assert system.root.counters.credit_gap_grants == 0
    assert got == list(range(100))
    assert publisher._window.available == LINK_WINDOW
