"""Run the doctests embedded in module docstrings.

The API documentation carries runnable examples; this keeps them honest.
"""

import doctest

import pytest

import repro.core.stages
import repro.core.weakening
import repro.events.base
import repro.events.closures
import repro.filters.constraints
import repro.filters.disjunction
import repro.filters.filter
import repro.sim.rng
import repro.workloads.distributions

MODULES = [
    repro.core.stages,
    repro.core.weakening,
    repro.events.base,
    repro.events.closures,
    repro.filters.constraints,
    repro.filters.disjunction,
    repro.filters.filter,
    repro.sim.rng,
    repro.workloads.distributions,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
    assert result.attempted > 0, f"no doctests found in {module.__name__}"
