"""Unit tests for the broadcast baseline (§2.1)."""

from repro.baselines.broadcast import BroadcastSystem


class Quote:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


def test_every_subscriber_receives_every_event():
    system = BroadcastSystem()
    publisher = system.create_publisher()
    subscribers = []
    for i in range(3):
        subscriber = system.create_subscriber()
        system.subscribe(subscriber, f'symbol = "S{i}"', event_class="Stock")
        subscribers.append(subscriber)
    for i in range(5):
        publisher.publish(Quote("S0", float(i)), event_class="Stock")
    system.drain()
    for subscriber in subscribers:
        assert subscriber.counters.events_received == 5


def test_local_filtering_delivers_only_matches():
    system = BroadcastSystem()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = []
    system.subscribe(
        subscriber, 'symbol = "A"', event_class="Stock",
        handler=lambda e, m, s: got.append(m["symbol"]),
    )
    publisher.publish(Quote("A", 1.0), event_class="Stock")
    publisher.publish(Quote("B", 1.0), event_class="Stock")
    system.drain()
    assert got == ["A"]
    assert subscriber.counters.events_matched == 1


def test_fabric_holds_no_filters():
    system = BroadcastSystem()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, 'symbol = "A"', event_class="Stock")
    publisher.publish(Quote("A", 1.0), event_class="Stock")
    system.drain()
    assert system.fabric.counters.filters_held == 0
    assert system.fabric.counters.filter_evaluations == 0
    assert system.fabric.counters.events_received == 1


def test_joining_twice_does_not_duplicate_delivery():
    system = BroadcastSystem()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, 'symbol = "A"', event_class="Stock")
    system.subscribe(subscriber, 'symbol = "B"', event_class="Stock")
    publisher.publish(Quote("A", 1.0), event_class="Stock")
    system.drain()
    assert subscriber.counters.events_received == 1
    assert subscriber.counters.events_delivered == 1


def test_message_volume_scales_with_subscribers():
    system = BroadcastSystem()
    publisher = system.create_publisher()
    for i in range(10):
        subscriber = system.create_subscriber()
        system.subscribe(subscriber, 'symbol = "never"', event_class="Stock")
    publisher.publish(Quote("A", 1.0), event_class="Stock")
    system.drain()
    # 1 publisher->fabric + 10 fabric->subscriber.
    assert system.network.stats.total_messages == 11
