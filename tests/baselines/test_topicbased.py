"""Unit tests for the topic-based baseline (degenerate content routing)."""

import pytest

from repro.baselines.topicbased import TopicBasedSystem


class Quote:
    def __init__(self, symbol):
        self._symbol = symbol

    def get_symbol(self):
        return self._symbol


class Listing:
    def __init__(self, item):
        self._item = item

    def get_item(self):
        return self._item


def test_events_routed_by_class_topic():
    system = TopicBasedSystem()
    publisher = system.create_publisher()
    stocks = system.create_subscriber()
    auctions = system.create_subscriber()
    system.subscribe(stocks, None, event_class="Quote")
    system.subscribe(auctions, None, event_class="Listing")
    publisher.publish(Quote("A"), event_class="Quote")
    publisher.publish(Listing("chair"), event_class="Listing")
    publisher.publish(Quote("B"), event_class="Quote")
    system.drain()
    assert stocks.counters.events_received == 2
    assert auctions.counters.events_received == 1


def test_content_selectivity_is_local_only():
    """Members of a topic receive the whole topic and filter locally —
    exactly the g3 degeneration of §3.4."""
    system = TopicBasedSystem()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = []
    system.subscribe(
        subscriber, 'symbol = "A"', event_class="Quote",
        handler=lambda e, m, s: got.append(m["symbol"]),
    )
    publisher.publish(Quote("A"), event_class="Quote")
    publisher.publish(Quote("B"), event_class="Quote")
    system.drain()
    assert got == ["A"]
    assert subscriber.counters.events_received == 2  # whole topic


def test_event_without_members_is_dropped():
    system = TopicBasedSystem()
    publisher = system.create_publisher()
    publisher.publish(Quote("A"), event_class="Quote")
    system.drain()
    assert system.hub.counters.events_received == 1
    assert system.hub.counters.events_matched == 0


def test_subscription_requires_topic():
    system = TopicBasedSystem()
    subscriber = system.create_subscriber()
    with pytest.raises(ValueError):
        system.subscribe(subscriber, 'symbol = "A"', event_class="")


def test_duplicate_join_is_single_membership():
    system = TopicBasedSystem()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, 'symbol = "A"', event_class="Quote")
    system.subscribe(subscriber, 'symbol = "B"', event_class="Quote")
    publisher.publish(Quote("A"), event_class="Quote")
    system.drain()
    assert subscriber.counters.events_received == 1
    assert system.hub.topics() == ["Quote"]


def test_hub_counts_one_evaluation_per_event():
    system = TopicBasedSystem()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, None, event_class="Quote")
    publisher.publish(Quote("A"), event_class="Quote")
    publisher.publish(Quote("B"), event_class="Quote")
    system.drain()
    assert system.hub.counters.filter_evaluations == 2
