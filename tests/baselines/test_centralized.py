"""Unit tests for the centralized baseline (§2.1)."""

from repro.baselines.centralized import CentralizedSystem
from repro.core.advertisement import Advertisement
from repro.core.stages import AttributeStageAssociation
from repro.events.base import PropertyEvent

ADV = Advertisement(
    "Stock",
    AttributeStageAssociation.from_prefixes(("class", "symbol", "price"), [3, 2, 1]),
)


class Quote:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


def build():
    system = CentralizedSystem(seed=0)
    system.advertise(ADV)
    return system


def test_delivery_through_the_server():
    system = build()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = []
    system.subscribe(
        subscriber, 'symbol = "A" and price < 10', event_class="Stock",
        handler=lambda e, m, s: got.append(m["price"]),
    )
    publisher.publish(Quote("A", 5.0), event_class="Stock")
    publisher.publish(Quote("A", 15.0), event_class="Stock")
    publisher.publish(Quote("B", 5.0), event_class="Stock")
    system.drain()
    assert got == [5.0]


def test_server_filters_so_edges_see_only_matches():
    system = build()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, 'symbol = "A"', event_class="Stock")
    publisher.publish(Quote("A", 1.0), event_class="Stock")
    publisher.publish(Quote("B", 1.0), event_class="Stock")
    system.drain()
    assert subscriber.counters.events_received == 1
    assert subscriber.counters.events_matched == 1  # edge MR = 1


def test_server_rlc_is_exactly_one():
    system = build()
    publisher = system.create_publisher()
    for i in range(5):
        subscriber = system.create_subscriber()
        system.subscribe(subscriber, f'symbol = "S{i}"', event_class="Stock")
    for i in range(20):
        publisher.publish(Quote(f"S{i % 7}", float(i)), event_class="Stock")
    system.drain()
    assert system.server_rlc() == 1.0


def test_rlc_is_one_even_with_duplicate_filters():
    """Identical subscriptions still count individually at the server."""
    system = build()
    publisher = system.create_publisher()
    for _ in range(4):
        subscriber = system.create_subscriber()
        system.subscribe(subscriber, 'symbol = "A"', event_class="Stock")
    publisher.publish(Quote("A", 1.0), event_class="Stock")
    system.drain()
    assert system.server_rlc() == 1.0


def test_residual_at_edge():
    system = build()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = []
    system.subscribe(
        subscriber, 'symbol = "A"', event_class="Stock",
        residual=lambda q: q.get_price() > 3,
        handler=lambda e, m, s: got.append(m["price"]),
    )
    publisher.publish(Quote("A", 5.0), event_class="Stock")
    publisher.publish(Quote("A", 1.0), event_class="Stock")
    system.drain()
    assert got == [5.0]


def test_unadvertised_class_subscribes_without_standardization():
    system = CentralizedSystem()
    subscriber = system.create_subscriber()
    subscription = system.subscribe(subscriber, "x = 1", event_class="Raw")
    assert subscription.filter.matches(PropertyEvent(x=1))


def test_table_engine_variant():
    system = CentralizedSystem(engine="table")
    system.advertise(ADV)
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = []
    system.subscribe(
        subscriber, 'symbol = "A"', event_class="Stock",
        handler=lambda e, m, s: got.append(1),
    )
    publisher.publish(Quote("A", 1.0), event_class="Stock")
    system.drain()
    assert got == [1]
