"""Unit tests for envelopes and (un)marshaling."""

from repro.events.base import PropertyEvent
from repro.events.serialization import marshal, unmarshal


class Order:
    def __init__(self, item, quantity):
        self._item = item
        self._quantity = quantity

    def get_item(self):
        return self._item

    def get_quantity(self):
        return self._quantity

    def total(self, unit_price):
        # Behaviour that travels with the object but is invisible to brokers.
        return unit_price * self._quantity


def test_marshal_extracts_metadata():
    envelope = marshal(Order("widget", 3))
    assert envelope.metadata["item"] == "widget"
    assert envelope.metadata["quantity"] == 3
    assert envelope.metadata["class"] == "Order"
    assert envelope.event_class == "Order"


def test_marshal_class_name_override():
    assert marshal(Order("w", 1), class_name="PurchaseOrder").event_class == (
        "PurchaseOrder"
    )


def test_unmarshal_round_trips_the_object():
    original = Order("widget", 3)
    recovered = unmarshal(marshal(original))
    assert isinstance(recovered, Order)
    assert recovered.get_item() == "widget"
    assert recovered.total(2.0) == 6.0


def test_weakened_envelope_keeps_payload():
    envelope = marshal(Order("widget", 3))
    weakened = envelope.weakened(["class", "item"])
    assert "quantity" not in weakened.metadata
    assert weakened.metadata["item"] == "widget"
    # The encapsulated object is untouched by meta-data weakening.
    assert unmarshal(weakened).get_quantity() == 3


def test_property_event_marshals_as_its_own_metadata():
    event = PropertyEvent(a=1, b=2)
    envelope = marshal(event)
    assert envelope.metadata == event
    assert unmarshal(envelope) == event


def test_envelope_size_model():
    envelope = marshal(Order("widget", 3))
    assert len(envelope) > len(envelope.payload)


def test_payload_not_in_repr():
    envelope = marshal(Order("widget", 3))
    assert "payload" not in repr(envelope) or "b'" not in repr(envelope)
