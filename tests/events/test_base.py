"""Unit tests for PropertyEvent."""

import pytest

from repro.events.base import CLASS_ATTRIBUTE, PropertyEvent


def test_mapping_protocol():
    e = PropertyEvent({"symbol": "Foo", "price": 10.0})
    assert e["symbol"] == "Foo"
    assert len(e) == 2
    assert set(e) == {"symbol", "price"}
    assert "price" in e
    assert "volume" not in e
    assert e.get("volume") is None
    assert dict(e) == {"symbol": "Foo", "price": 10.0}


def test_kwargs_construction():
    e = PropertyEvent(symbol="Foo", price=1.0)
    assert e["price"] == 1.0


def test_pairs_construction():
    e = PropertyEvent([("a", 1), ("b", 2)])
    assert e["b"] == 2


def test_kwargs_override_mapping():
    e = PropertyEvent({"a": 1}, a=2)
    assert e["a"] == 2


def test_non_string_keys_rejected():
    with pytest.raises(TypeError):
        PropertyEvent({1: "x"})


def test_immutability():
    e = PropertyEvent(a=1)
    with pytest.raises(AttributeError):
        e.anything = 2
    with pytest.raises(TypeError):
        e["a"] = 2


def test_event_class_property():
    assert PropertyEvent({CLASS_ATTRIBUTE: "Stock"}).event_class == "Stock"
    assert PropertyEvent(a=1).event_class is None


def test_restricted_to():
    e = PropertyEvent(a=1, b=2, c=3)
    restricted = e.restricted_to(["a", "c", "missing"])
    assert dict(restricted) == {"a": 1, "c": 3}


def test_restricted_to_empty():
    assert dict(PropertyEvent(a=1).restricted_to([])) == {}


def test_with_properties():
    e = PropertyEvent(a=1)
    updated = e.with_properties(b=2, a=9)
    assert dict(updated) == {"a": 9, "b": 2}
    assert dict(e) == {"a": 1}  # original untouched


def test_equality_with_event_and_mapping():
    assert PropertyEvent(a=1) == PropertyEvent(a=1)
    assert PropertyEvent(a=1) == {"a": 1}
    assert PropertyEvent(a=1) != PropertyEvent(a=2)


def test_hashable():
    assert hash(PropertyEvent(a=1)) == hash(PropertyEvent(a=1))
    assert len({PropertyEvent(a=1), PropertyEvent(a=1), PropertyEvent(a=2)}) == 2


def test_properties_view():
    e = PropertyEvent(a=1)
    assert e.properties["a"] == 1


def test_repr_lists_properties():
    assert "symbol='Foo'" in repr(PropertyEvent(symbol="Foo"))
