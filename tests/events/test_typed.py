"""Unit tests for reflection-based meta-data extraction (Section 3.4)."""

from repro.events.base import CLASS_ATTRIBUTE
from repro.events.typed import (
    TypedEvent,
    _accessor_attribute_name,
    reflect_attributes,
    to_property_event,
)


class PythonStyleStock:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


class JavaStyleStock:
    """Example 4 verbatim, modulo syntax."""

    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def getSymbol(self):
        return self._symbol

    def getPrice(self):
        return self._price


class TestAccessorNames:
    def test_python_style(self):
        assert _accessor_attribute_name("get_symbol") == "symbol"

    def test_java_style(self):
        assert _accessor_attribute_name("getSymbol") == "symbol"
        assert _accessor_attribute_name("getPrice") == "price"

    def test_plain_get_is_not_an_accessor(self):
        assert _accessor_attribute_name("get") is None
        assert _accessor_attribute_name("get_") is None

    def test_non_get_names_rejected(self):
        assert _accessor_attribute_name("fetch_symbol") is None
        assert _accessor_attribute_name("getter") is None


class TestReflection:
    def test_python_accessors(self):
        assert reflect_attributes(PythonStyleStock("Foo", 9.0)) == {
            "symbol": "Foo",
            "price": 9.0,
        }

    def test_java_accessors(self):
        assert reflect_attributes(JavaStyleStock("Foo", 9.0)) == {
            "symbol": "Foo",
            "price": 9.0,
        }

    def test_properties_are_reflected(self):
        class WithProperty:
            def __init__(self):
                self._x = 42

            @property
            def level(self):
                return self._x

        assert reflect_attributes(WithProperty()) == {"level": 42}

    def test_private_state_is_never_read_directly(self):
        class Secret:
            def __init__(self):
                self._password = "hunter2"
                self.plain_field = "visible-but-not-an-accessor"

            def get_public(self):
                return "ok"

        attrs = reflect_attributes(Secret())
        assert attrs == {"public": "ok"}

    def test_methods_with_parameters_ignored(self):
        class Parameterized:
            def get_value(self):
                return 1

            def get_scaled(self, factor):
                return factor

        assert reflect_attributes(Parameterized()) == {"value": 1}

    def test_methods_with_default_args_are_accessors(self):
        class Defaulted:
            def get_value(self, precision=2):
                return round(3.14159, precision)

        assert reflect_attributes(Defaulted()) == {"value": 3.14}

    def test_inherited_accessors_reflected(self):
        class Extended(PythonStyleStock):
            def get_exchange(self):
                return "NYSE"

        attrs = reflect_attributes(Extended("Foo", 9.0))
        assert attrs == {"symbol": "Foo", "price": 9.0, "exchange": "NYSE"}


class TestToPropertyEvent:
    def test_adds_class_attribute(self):
        metadata = to_property_event(PythonStyleStock("Foo", 9.0))
        assert metadata[CLASS_ATTRIBUTE] == "PythonStyleStock"
        assert metadata["symbol"] == "Foo"

    def test_class_name_override(self):
        metadata = to_property_event(PythonStyleStock("Foo", 9.0), class_name="Stock")
        assert metadata[CLASS_ATTRIBUTE] == "Stock"

    def test_property_event_passes_through(self):
        from repro.events.base import PropertyEvent

        original = PropertyEvent(a=1)
        assert to_property_event(original) is original


class TestTypedEventBase:
    def test_attributes_and_conversion(self):
        class Ping(TypedEvent):
            def __init__(self, target):
                self._target = target

            def get_target(self):
                return self._target

        ping = Ping("host-1")
        assert ping.attributes() == {"target": "host-1"}
        assert ping.to_property_event()["class"] == "Ping"
        assert "target='host-1'" in repr(ping)
