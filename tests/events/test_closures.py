"""Unit tests for filter closures (the BuyFilter pattern, Section 3.4)."""

import pytest

from repro.events.closures import FilterClosure
from repro.filters.filter import Filter
from repro.filters.parser import parse_filter


class FakeStock:
    def __init__(self, price):
        self._price = price

    def get_price(self):
        return self._price


def test_pure_closure_is_just_the_filter():
    closure = FilterClosure(parse_filter("price < 10"))
    assert closure.is_pure
    assert closure.matches({"price": 5})
    assert not closure.matches({"price": 15})


def test_residual_runs_after_indexable_part():
    calls = []

    def residual(event):
        calls.append(event)
        return event["price"] > 3

    closure = FilterClosure(parse_filter("price < 10"), residual=residual)
    assert closure.matches({"price": 5})
    assert not closure.matches({"price": 2})
    # Indexable rejection short-circuits: the residual never sees it.
    assert not closure.matches({"price": 50})
    assert {"price": 50} not in calls


def test_residual_receives_typed_event_with_separate_metadata():
    closure = FilterClosure(
        parse_filter("price < 10"),
        residual=lambda stock: stock.get_price() != 7,
    )
    stock = FakeStock(5)
    assert closure.matches(stock, metadata={"price": 5})
    assert not closure.matches(FakeStock(7), metadata={"price": 7})


def test_stateful_residual_buyfilter_semantics():
    """The paper's BuyFilter: price below 95% of the previous match."""
    state = {"last": 0.0}

    def buy(stock):
        price = stock.get_price()
        match = price <= state["last"] * 0.95
        state["last"] = price
        return match

    closure = FilterClosure(parse_filter("price < 10.0"), residual=buy)

    def feed(price):
        return closure.matches(FakeStock(price), metadata={"price": price})

    assert not feed(9.8)   # no previous matching price
    assert feed(9.0)       # 9.0 <= 9.8 * 0.95
    assert not feed(8.9)   # 8.9 > 9.0 * 0.95 = 8.55
    assert feed(8.0)       # 8.0 <= 8.9 * 0.95 = 8.455


def test_indexable_part_covers_the_closure():
    """The overlay only ever sees the cover: residuals can only narrow."""
    closure = FilterClosure(
        parse_filter("price < 10"), residual=lambda e: e["price"] % 2 == 0
    )
    for price in range(20):
        event = {"price": price}
        if closure.matches(event):
            assert closure.matches_metadata(event)


def test_residual_under_bottom_rejected():
    with pytest.raises(ValueError):
        FilterClosure(Filter.bottom(), residual=lambda e: True)


def test_repr_and_name():
    named = FilterClosure(parse_filter("a = 1"), name="my-sub")
    assert "my-sub" in repr(named)
    assert "pure" in repr(FilterClosure(parse_filter("a = 1")))
    assert "residual" in repr(
        FilterClosure(parse_filter("a = 1"), residual=lambda e: True)
    )
