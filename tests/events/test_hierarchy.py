"""Unit tests for the runtime type registry."""

import pytest

from repro.events.hierarchy import TypeRegistry


class Event:
    pass


class StockEvent(Event):
    pass


class TechStockEvent(StockEvent):
    pass


class AuctionEvent(Event):
    pass


@pytest.fixture()
def registry():
    r = TypeRegistry()
    r.register_all([Event, StockEvent, TechStockEvent, AuctionEvent])
    return r


def test_register_returns_name():
    r = TypeRegistry()
    assert r.register(StockEvent) == "StockEvent"


def test_register_custom_name():
    r = TypeRegistry()
    assert r.register(StockEvent, "Stock") == "Stock"
    assert r.class_of("Stock") is StockEvent


def test_reregistration_is_idempotent():
    r = TypeRegistry()
    r.register(StockEvent)
    r.register(StockEvent)
    assert len(r) == 1


def test_name_conflict_rejected():
    r = TypeRegistry()
    r.register(StockEvent, "Thing")
    with pytest.raises(ValueError):
        r.register(AuctionEvent, "Thing")


def test_class_renaming_rejected():
    r = TypeRegistry()
    r.register(StockEvent, "A")
    with pytest.raises(ValueError):
        r.register(StockEvent, "B")


def test_lookups(registry):
    assert registry.name_of(StockEvent) == "StockEvent"
    assert registry.class_of("AuctionEvent") is AuctionEvent
    assert registry.is_registered(StockEvent)
    assert not registry.is_registered(int)
    assert "StockEvent" in registry


def test_unknown_lookups_raise(registry):
    with pytest.raises(KeyError):
        registry.name_of(int)
    with pytest.raises(KeyError):
        registry.class_of("Unknown")


def test_conforms(registry):
    assert registry.conforms("TechStockEvent", "StockEvent")
    assert registry.conforms("TechStockEvent", "Event")
    assert registry.conforms("StockEvent", "StockEvent")
    assert not registry.conforms("StockEvent", "TechStockEvent")
    assert not registry.conforms("AuctionEvent", "StockEvent")


def test_conformers(registry):
    assert set(registry.conformers("StockEvent")) == {
        "StockEvent",
        "TechStockEvent",
    }
    assert set(registry.conformers("Event")) == {
        "Event",
        "StockEvent",
        "TechStockEvent",
        "AuctionEvent",
    }


def test_ancestors(registry):
    assert set(registry.ancestors("TechStockEvent")) == {
        "TechStockEvent",
        "StockEvent",
        "Event",
    }


def test_lineage_nearest_first(registry):
    assert registry.lineage(TechStockEvent) == [
        "TechStockEvent",
        "StockEvent",
        "Event",
    ]


def test_lineage_skips_unregistered():
    r = TypeRegistry()
    r.register(Event)
    r.register(TechStockEvent)  # StockEvent deliberately unregistered
    assert r.lineage(TechStockEvent) == ["TechStockEvent", "Event"]


def test_names_in_registration_order(registry):
    assert registry.names() == [
        "Event",
        "StockEvent",
        "TechStockEvent",
        "AuctionEvent",
    ]
