"""Property-based tests (hypothesis) for the window/collapse algebra.

Pin the invariants the flows subsystem leans on (DESIGN §15):

- tumbling windows **partition** the input: however events and timer
  fires interleave, no input event is lost or double-counted across
  window boundaries, and each emitted window's count equals the
  brute-force count of events falling in it;
- sliding-window aggregates equal a brute-force recomputation over the
  retained span, in both time and count mode;
- collapse preserves per-key last-value semantics: one emission per
  key per flush, carrying the final event's attributes and the exact
  number of inputs it stands for.

The machines are driven directly (no broker, no timers armed) — they
are pure state machines over ``(metadata, now)`` by construction.
"""

import math
from collections import defaultdict

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.streams.operators import CollapseState, WindowState
from repro.streams.spec import Aggregate, CollapseSpec, WindowSpec

KEYS = ("a", "b", "c")

#: (key, value) input events; values small ints so sums are exact.
events_strategy = st.lists(
    st.tuples(st.sampled_from(KEYS), st.integers(min_value=-50, max_value=50)),
    min_size=0,
    max_size=60,
)

#: Non-decreasing event times in [0, 10).
times_strategy = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False, width=32),
    min_size=0,
    max_size=60,
).map(sorted)


def tumbling_time_spec(size):
    return WindowSpec(
        kind="tumbling",
        mode="time",
        size=size,
        group_by=("key",),
        aggregates=(
            Aggregate("", "count", "n_events"),
            Aggregate("value", "sum", "total"),
        ),
    )


@settings(max_examples=60, deadline=None)
@given(
    events=events_strategy,
    times=times_strategy,
    size=st.sampled_from((0.5, 1.0, 2.5)),
    timer_mask=st.lists(st.booleans(), min_size=0, max_size=60),
)
def test_tumbling_time_partition(events, times, size, timer_mask):
    """No event lost or double-counted across tumbling boundaries."""
    n = min(len(events), len(times))
    events, times = events[:n], times[:n]
    state = WindowState(tumbling_time_spec(size))

    emitted = []
    for i, ((key, value), now) in enumerate(zip(events, times)):
        # Interleave timer fires arbitrarily (the broker's lazy timer
        # may or may not have fired before the next arrival).
        if i < len(timer_mask) and timer_mask[i]:
            emitted.extend(state.on_timer(now))
        emitted.extend(
            state.on_event({"key": key, "value": value}, now, ("p", i))
        )
    emitted.extend(state.flush(times[-1] if times else 0.0))

    # Brute force: events grouped by (key, window index).
    expected = defaultdict(lambda: [0, 0])
    for (key, value), now in zip(events, times):
        bucket = expected[(key, math.floor(now / size))]
        bucket[0] += 1
        bucket[1] += value
    got = {}
    for emission in emitted:
        props = emission.properties
        index = math.floor(props["window_start"] / size + 0.5)
        window_key = (props["key"], index)
        # Partition: each (key, window) emitted at most once.
        assert window_key not in got, f"window {window_key} emitted twice"
        got[window_key] = [props["n_events"], props["total"]]
        assert props["n"] == props["n_events"] == emission.n_inputs
        assert props["window_end"] == props["window_start"] + size

    assert got == dict(expected)
    # Conservation: every input counted exactly once overall.
    assert sum(v[0] for v in got.values()) == len(events)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=-50, max_value=50), min_size=0, max_size=50
    ),
    times=times_strategy,
    size=st.sampled_from((1.0, 2.0)),
    slide=st.sampled_from((0.5, 1.0)),
)
def test_sliding_time_equals_brute_force(values, times, size, slide):
    """Each sliding emission equals recomputing over (t - size, t]."""
    n = min(len(values), len(times))
    values, times = values[:n], times[:n]
    spec = WindowSpec(
        kind="sliding",
        mode="time",
        size=size,
        slide=slide,
        aggregates=(
            Aggregate("value", "sum", "total"),
            Aggregate("value", "avg", "mean"),
            Aggregate("value", "min", "low"),
            Aggregate("value", "max", "high"),
        ),
    )
    state = WindowState(spec)

    cursor = 0
    fires = []
    # Drive exactly as the broker's aligned timer would: fire at every
    # multiple of `slide` that has passed, then feed the next event.
    boundary = slide
    for value, now in zip(values, times):
        while boundary <= now:
            fires.append((boundary, state.on_timer(boundary)))
            boundary += slide
        state.on_event({"value": value}, now, ("p", cursor))
        cursor += 1
    final = times[-1] + size if times else size
    while boundary <= final:
        fires.append((boundary, state.on_timer(boundary)))
        boundary += slide

    for fire_time, emissions in fires:
        # The driver fires a boundary before feeding an event stamped
        # exactly on it (as the broker's timer does at equal sim time),
        # so the retained span at fire time t is (t - size, t).
        window = [
            v
            for v, t in zip(values, times)
            if fire_time - size < t < fire_time
        ]
        if not window:
            assert emissions == []
            continue
        assert len(emissions) == 1
        props = emissions[0].properties
        assert props["n"] == len(window)
        assert props["total"] == sum(window)
        assert props["mean"] == sum(window) / len(window)
        assert props["low"] == min(window)
        assert props["high"] == max(window)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=-50, max_value=50), min_size=0, max_size=50
    ),
    size=st.integers(min_value=1, max_value=6),
    slide=st.integers(min_value=1, max_value=6),
)
def test_sliding_count_equals_brute_force(values, size, slide):
    """Count-sliding emissions cover the last `size` events, every `slide`."""
    if slide > size:
        slide = size
    spec = WindowSpec(
        kind="sliding",
        mode="count",
        size=size,
        slide=slide,
        aggregates=(Aggregate("value", "sum", "total"),),
    )
    state = WindowState(spec)
    emitted = []
    for i, value in enumerate(values):
        emitted.extend(state.on_event({"value": value}, float(i), ("p", i)))

    expected = [
        values[max(0, i - size): i]
        for i in range(1, len(values) + 1)
        if i % slide == 0
    ]
    assert len(emitted) == len(expected)
    for emission, window in zip(emitted, expected):
        assert emission.properties["n"] == len(window)
        assert emission.properties["total"] == sum(window)


@settings(max_examples=60, deadline=None)
@given(events=events_strategy, max_batch=st.sampled_from((None, 3)))
def test_collapse_last_value_per_key(events, max_batch):
    """Collapse keeps the last value per key and the exact input count."""
    spec = CollapseSpec(keys=("key",), interval=1.0, max_batch=max_batch)
    state = CollapseState(spec)

    emitted = []
    fed = defaultdict(int)
    last = {}
    for i, (key, value) in enumerate(events):
        metadata = {"class": "E", "key": key, "value": value, "seq": i}
        fed[key] += 1
        last[key] = metadata
        for emission in state.on_event(metadata, float(i), ("p", i)):
            emitted.append((key, emission))
            fed[key] = 0  # batch-triggered flush resets the count
            del last[key]
    for emission in state.on_timer(float(len(events))):
        key = emission.properties["key"]
        emitted.append((key, emission))
        assert emission.properties["collapsed_n"] == fed[key]
        # Last-value semantics: the final event's attributes survive,
        # minus the reserved class attribute.
        survivor = {k: v for k, v in last[key].items() if k != "class"}
        survivor["collapsed_n"] = fed[key]
        assert emission.properties == survivor

    # Conservation: collapsed_n sums to the number of inputs.
    assert sum(e.properties["collapsed_n"] for _, e in emitted) == len(events)
    if max_batch is not None:
        for _, emission in emitted:
            assert emission.properties["collapsed_n"] <= max_batch
    assert state.pending() == []
