"""Flow spec validation and FlowGraph construction."""

import pickle

import pytest

from repro.filters.constraints import AttributeConstraint
from repro.filters.filter import Filter
from repro.filters.operators import EQ
from repro.streams import (
    Aggregate,
    CollapseSpec,
    DeriveSpec,
    FlowGraph,
    FlowSpec,
    WindowSpec,
)

TELEMETRY = Filter([AttributeConstraint("class", EQ, "Telemetry")])


def window_spec(**overrides):
    base = dict(
        kind="tumbling",
        mode="time",
        size=1.0,
        group_by=("region",),
        aggregates=(Aggregate("reading", "avg", "avg_reading"),),
    )
    base.update(overrides)
    return WindowSpec(**base)


def flow_spec(name="rollup", operator=None, **overrides):
    base = dict(
        name=name,
        input_filter=TELEMETRY,
        output_class="TelemetryRollup",
        operator=operator or window_spec(),
    )
    base.update(overrides)
    return FlowSpec(**base)


class TestAggregate:
    def test_unknown_combiner_rejected(self):
        with pytest.raises(ValueError, match="combiner"):
            Aggregate("reading", "median", "out")

    def test_non_count_needs_attribute(self):
        with pytest.raises(ValueError, match="source attribute"):
            Aggregate("", "sum", "out")

    def test_count_needs_no_attribute(self):
        assert Aggregate("", "count", "n_readings").combiner == "count"


class TestWindowSpec:
    def test_tumbling_rejects_slide(self):
        with pytest.raises(ValueError, match="no slide"):
            window_spec(slide=0.5)

    def test_sliding_needs_slide_within_size(self):
        with pytest.raises(ValueError, match="slide"):
            window_spec(kind="sliding")
        with pytest.raises(ValueError, match="slide"):
            window_spec(kind="sliding", slide=2.0)
        assert window_spec(kind="sliding", slide=0.5).slide == 0.5

    def test_count_mode_needs_integral_size(self):
        with pytest.raises(ValueError, match="integral"):
            window_spec(mode="count", size=2.5)
        assert window_spec(mode="count", size=4).size == 4

    def test_needs_an_aggregate(self):
        with pytest.raises(ValueError, match="aggregate"):
            window_spec(aggregates=())

    def test_bad_kind_and_mode(self):
        with pytest.raises(ValueError, match="kind"):
            window_spec(kind="hopping")
        with pytest.raises(ValueError, match="mode"):
            window_spec(mode="bytes")


class TestCollapseSpec:
    def test_needs_interval_or_max_batch(self):
        with pytest.raises(ValueError, match="interval"):
            CollapseSpec(keys=("region",))

    def test_needs_keys(self):
        with pytest.raises(ValueError, match="key"):
            CollapseSpec(keys=(), interval=1.0)

    def test_bad_bounds(self):
        with pytest.raises(ValueError, match="interval"):
            CollapseSpec(keys=("region",), interval=0.0)
        with pytest.raises(ValueError, match="max_batch"):
            CollapseSpec(keys=("region",), max_batch=0)


class TestFlowSpec:
    def test_name_reserves_colon_and_slash(self):
        for bad in ("a:b", "a/b", ""):
            with pytest.raises(ValueError):
                flow_spec(name=bad)

    def test_operator_kind(self):
        assert flow_spec().operator_kind == "window"
        collapse = flow_spec(operator=CollapseSpec(keys=("region",), interval=1.0))
        assert collapse.operator_kind == "collapse"
        assert flow_spec(operator=DeriveSpec()).operator_kind == "derive"

    def test_output_schema_window(self):
        assert flow_spec().output_schema() == (
            "class",
            "region",
            "avg_reading",
            "window_start",
            "window_end",
            "n",
        )

    def test_output_schema_collapse_and_derive(self):
        collapse = flow_spec(
            operator=CollapseSpec(keys=("region", "sensor"), interval=1.0)
        )
        assert collapse.output_schema() == ("class", "region", "sensor", "collapsed_n")
        derive = flow_spec(
            operator=DeriveSpec(
                select=("region", "reading"), rename=(("reading", "value"),)
            )
        )
        assert derive.output_schema() == ("class", "region", "value")

    def test_specs_are_picklable(self):
        # Specs travel over the control channel on every runtime backend.
        spec = flow_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


class TestFlowGraph:
    def test_builders_and_iteration(self):
        graph = FlowGraph()
        graph.window(
            "rollup",
            TELEMETRY,
            "TelemetryRollup",
            size=1.0,
            group_by=("region",),
            aggregates=(("reading", "avg", "avg_reading"),),
        )
        graph.collapse(
            "dedup", TELEMETRY, "TelemetryLatest", keys=("sensor",), interval=0.5
        )
        graph.derive(
            "mirror", TELEMETRY, "TelemetryMirror", select=("region", "reading")
        )
        assert len(graph) == 3
        assert [f.name for f in graph] == ["rollup", "dedup", "mirror"]
        assert [f.operator_kind for f in graph.flows()] == [
            "window",
            "collapse",
            "derive",
        ]

    def test_duplicate_name_rejected(self):
        graph = FlowGraph([flow_spec()])
        with pytest.raises(ValueError, match="duplicate"):
            graph.window(
                "rollup",
                TELEMETRY,
                "Other",
                size=1.0,
                aggregates=(("reading", "sum", "total"),),
            )

    def test_by_broker_grouping(self):
        graph = FlowGraph(
            [
                flow_spec(name="at-root"),
                flow_spec(name="at-n2", broker="N2.0"),
                flow_spec(name="also-n2", broker="N2.0"),
            ]
        )
        grouped = graph.by_broker()
        assert set(grouped) == {None, "N2.0"}
        assert [f.name for f in grouped["N2.0"]] == ["at-n2", "also-n2"]
