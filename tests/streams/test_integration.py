"""End-to-end flows through the overlay: install, derive, crash, renew.

These drive :meth:`MultiStageEventSystem.install_flows` over the
deterministic simulator and pin the broker-side contract of DESIGN §15:

- derived events re-enter the normal publish path (matched, covered,
  logged, traced) under the reserved ``(broker:flow, seq)`` namespace
  and count toward ``events_published`` exactly once, at the deriving
  broker;
- operator state is soft state: a crash drops open windows with
  ``window-dropped`` spans and the registrar's renewals re-install the
  flow (refresh-or-restore), with derived sequence numbers continuing
  monotonically;
- identical re-installs are pure lease refreshes (window state
  survives), changed specs rebuild the machine, silent flows expire
  with their lease;
- a flow never consumes its own output, and the metrics layer
  tolerates brokers with zero flows.
"""

import pytest

from repro.core.engine import MultiStageEventSystem
from repro.filters.filter import Filter
from repro.log import LogConfig, dropped_window_excusals
from repro.metrics.report import aggregate_stream_counters, render_stream_summary
from repro.workloads.telemetry import (
    ROLLUP_EVENT_CLASS,
    TELEMETRY_EVENT_CLASS,
    TELEMETRY_SCHEMA,
    TelemetryWorkload,
)

WINDOW = 1.0


def build_system(**overrides):
    options = dict(
        stage_sizes=(2, 2, 1),
        seed=5,
        ttl=30.0,
        tracing=True,
        log=LogConfig(),
    )
    options.update(overrides)
    system = MultiStageEventSystem(**options)
    workload = TelemetryWorkload(
        system.rngs.stream("telemetry"), n_regions=2, sensors_per_region=4
    )
    system.advertise(TELEMETRY_EVENT_CLASS, schema=TELEMETRY_SCHEMA)
    system.drain()
    return system, workload


def publish_windows(system, workload, publisher, n_windows):
    step = WINDOW / (len(workload.regions) * 4)
    published = 0
    for _ in range(n_windows):
        for reading in workload.readings_round():
            publisher.publish(reading, event_class=TELEMETRY_EVENT_CLASS)
            published += 1
            system.run_for(step)
    system.run_for(2 * WINDOW)
    return published


class TestDerivedPath:
    def test_rollup_end_to_end(self):
        system, workload = build_system()
        system.install_flows([workload.rollup_flow(window=WINDOW)])
        system.drain()
        root = system.root
        assert root.flows() == ("region-rollup",)

        rollups = []
        subscriber = system.create_subscriber("dash")
        system.subscribe(
            subscriber,
            workload.rollup_subscription("r0"),
            handler=lambda e, m, s: rollups.append(dict(m)),
        )
        system.drain()
        publisher = system.create_publisher("feed")
        published = publish_windows(system, workload, publisher, 3)

        assert len(rollups) == 3
        for rollup in rollups:
            assert rollup["class"] == ROLLUP_EVENT_CLASS
            assert rollup["region"] == "r0"
            assert rollup["n"] == 4
            assert rollup["window_end"] == rollup["window_start"] + WINDOW

        # Derived events are published exactly once, at the deriving
        # broker; raw publishes ride the publisher-runtime path and
        # never touch the broker-side counter.
        nodes = system.hierarchy.nodes()
        derived = 3 * len(workload.regions)
        assert root.counters.events_published == derived
        assert sum(n.counters.events_published for n in nodes) == derived
        assert root.counters.flow_events_in == published
        assert root.counters.flow_events_out == derived

        # Derived ids live in the reserved namespace and are logged at
        # the deriving broker with contiguous sequences from 0.
        namespace = f"{root.name}:region-rollup"
        assert root.log.watermarks()[namespace] == derived - 1

        # derive spans carry provenance; the publish span at the
        # deriving broker makes every delivered path reconstructible.
        derive_spans = system.tracer.kinds("derive")
        assert len(derive_spans) == derived
        for span in derive_spans:
            assert span.node == root.name
            assert span.detail("flow") == "region-rollup"
            assert span.detail("op") == "window"
            assert span.detail("inputs") == 4
        assert system.tracer.incomplete_deliveries() == []

    def test_flow_never_consumes_own_output(self):
        # A match-everything derive flow sees its own derived events
        # re-enter the broker; the reserved-namespace skip must keep the
        # cascade at exactly one derived event per raw input.
        system, workload = build_system()
        graph_filter = Filter([])  # matches every event class
        from repro.streams import FlowGraph

        graph = FlowGraph()
        graph.derive("mirror", graph_filter, "Mirror", select=("region", "reading"))
        system.install_flows(graph)
        system.drain()

        publisher = system.create_publisher("feed")
        published = publish_windows(system, workload, publisher, 1)
        root = system.root
        assert root.counters.flow_events_out == published
        assert root.counters.events_published == published


class TestCrashSemantics:
    def attach_archiver(self, system, workload, at_node):
        archiver = system.create_subscriber("archive")
        system.subscribe(
            archiver,
            workload.archive_subscription(),
            handler=lambda e, m, s: None,
            at_node=at_node,
        )
        system.drain()
        return archiver

    def test_crash_drops_windows_and_renewal_reinstalls(self):
        system, workload = build_system()
        stage1 = system.hierarchy.stage1_nodes()
        victim = stage1[0].parent
        registrar = system.install_flows(
            [workload.rollup_flow(window=WINDOW, broker=victim.name)]
        )
        self.attach_archiver(system, workload, stage1[0])
        registrar.ttl = 2.0
        registrar.start_maintenance()

        publisher = system.create_publisher("feed")
        step = WINDOW / 8
        for _ in range(12):  # a window and a half in flight
            for reading in workload.readings_round()[:4]:
                publisher.publish(reading, event_class=TELEMETRY_EVENT_CLASS)
            system.run_for(step)

        assert victim.flows() == ("region-rollup",)
        seq_before = victim.log.watermarks().get(
            f"{victim.name}:region-rollup", -1
        )
        victim.crash()

        # Soft state gone, loss announced, audit excusals derivable.
        assert victim.flows() == ()
        assert victim.counters.flow_windows_dropped > 0
        dropped_spans = system.tracer.kinds("window-dropped")
        assert len(dropped_spans) == victim.counters.flow_windows_dropped
        for span in dropped_spans:
            assert span.detail("reason") == "crash"
            assert span.detail("pending") > 0
        assert len(dropped_window_excusals(system.tracer)) == len(dropped_spans)

        victim.restart()
        # The registrar's next renewal re-installs the flow.
        system.run_for(3 * registrar.ttl)
        assert victim.flows() == ("region-rollup",)

        for _ in range(16):  # two more full windows
            for reading in workload.readings_round()[:4]:
                publisher.publish(reading, event_class=TELEMETRY_EVENT_CLASS)
            system.run_for(step)
        system.run_for(2 * WINDOW)

        # Derived sequences continued monotonically: no id reuse across
        # the crash (the log would have rejected duplicates silently).
        seq_after = victim.log.watermarks()[f"{victim.name}:region-rollup"]
        assert seq_after > seq_before
        registrar.stop_maintenance()

    def test_identical_reinstall_is_pure_refresh(self):
        system, workload = build_system()
        spec = workload.rollup_flow(window=WINDOW)
        registrar = system.install_flows([spec])
        system.drain()
        root = system.root

        rollups = []
        subscriber = system.create_subscriber("dash")
        system.subscribe(
            subscriber,
            workload.rollup_subscription("r0"),
            handler=lambda e, m, s: rollups.append(m["n"]),
        )
        system.drain()
        publisher = system.create_publisher("feed")

        # Half a window of events, a mid-window re-install of the
        # identical spec, then the other half: the open window must
        # survive the refresh and emit the full count.  (No drain()
        # here — draining would run the armed boundary timer and close
        # the window early.)
        for reading in workload.readings_round()[:2]:
            publisher.publish(reading, event_class=TELEMETRY_EVENT_CLASS)
        system.run_for(0.05)
        registrar.install(root, spec)
        system.run_for(0.05)
        for reading in workload.readings_round()[:2]:
            publisher.publish(reading, event_class=TELEMETRY_EVENT_CLASS)
        system.run_for(2 * WINDOW)
        assert rollups == [4]

    def test_changed_spec_rebuilds_the_machine(self):
        system, workload = build_system()
        registrar = system.install_flows([workload.rollup_flow(window=WINDOW)])
        system.drain()
        root = system.root

        publisher = system.create_publisher("feed")
        for reading in workload.readings_round()[:2]:
            publisher.publish(reading, event_class=TELEMETRY_EVENT_CLASS)
        system.run_for(0.2)
        assert root._flows["region-rollup"].pending_windows()

        # Same name, different window size: a fresh machine, no carry-over.
        registrar.install(root, workload.rollup_flow(window=2 * WINDOW))
        system.drain()
        assert root.flows() == ("region-rollup",)
        assert root._flows["region-rollup"].pending_windows() == []
        assert root._flows["region-rollup"].spec.operator.size == 2 * WINDOW

    def test_silent_flow_lease_expires(self):
        system, workload = build_system(ttl=2.0)
        registrar = system.install_flows([workload.rollup_flow(window=WINDOW)])
        system.drain()
        root = system.root
        assert root.flows() == ("region-rollup",)

        # Broker maintenance purges; the registrar stays silent.
        system.start_maintenance()
        registrar.stop_maintenance()
        system.run_for(system.ttl * root.expiry_factor + 2 * system.ttl)
        assert root.flows() == ()
        removes = system.tracer.kinds("flow-remove")
        assert removes and removes[-1].detail("reason") == "lease-expired"
        system.stop_maintenance()


class TestMetricsTolerance:
    def test_report_tolerates_zero_flow_brokers(self):
        # Snapshot dicts from pre-flows sessions carry no flow counters
        # at all; the stream report must render zeros, not KeyError.
        bare = {"events_processed": 7}
        table = render_stream_summary([("N1.0", bare)])
        assert "TOTAL" in table
        totals = aggregate_stream_counters([bare, {"flow_events_in": 3}])
        assert totals["flow_events_in"] == 3
        assert totals["flows_installed"] == 0

    def test_live_counters_render(self):
        system, workload = build_system()
        system.install_flows([workload.rollup_flow(window=WINDOW)])
        system.drain()
        publisher = system.create_publisher("feed")
        publish_windows(system, workload, publisher, 1)
        named = [(n.name, n.counters) for n in system.hierarchy.nodes()]
        table = render_stream_summary(named)
        assert system.root.name in table
        snapshot = system.root.counters.snapshot()
        assert snapshot["flow_events_out"] == len(workload.regions)


class TestEngineValidation:
    def test_unknown_hosting_broker_rejected(self):
        system, workload = build_system()
        with pytest.raises(KeyError, match="no broker"):
            system.install_flows(
                [workload.rollup_flow(window=WINDOW, broker="N9.9")]
            )

    def test_output_class_auto_advertised(self):
        system, workload = build_system()
        system.install_flows([workload.rollup_flow(window=WINDOW)])
        advertisement = system.advertisements.get(ROLLUP_EVENT_CLASS)
        assert advertisement is not None
