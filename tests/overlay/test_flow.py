"""Integration tests for credit flow control, backpressure, and
shedding across the overlay (see repro.flow and DESIGN.md §10).

Covers the windowed reliable channel, hop-by-hop backpressure from a
finite-speed broker back to publishers, credit-loop recovery under wire
faults and broker crashes, observable shedding from durable offline
buffers, and the name-keyed durable state regression."""

import pytest

from repro.core.engine import MultiStageEventSystem
from repro.flow import FlowConfig
from repro.overlay.channel import ReliableReceiver, ReliableSender
from repro.overlay.messages import (
    Ack,
    Disconnect,
    Publish,
    Reconnect,
    Sequenced,
)
from repro.sim.kernel import Process, Simulator
from repro.sim.network import FaultPlan


class Alert:
    def __init__(self, topic, level):
        self._topic = topic
        self._level = level

    def get_topic(self):
        return self._topic

    def get_level(self):
        return self._level


def make_system(**kwargs):
    defaults = dict(stage_sizes=(4, 2, 1), seed=21, ttl=10.0)
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.advertise("Alert", schema=("class", "topic", "level"))
    return system


def setup_subscriber(system, text='class = "Alert" and topic = "db"'):
    subscriber = system.create_subscriber()
    got = []
    system.subscribe(
        subscriber, text, handler=lambda e, m, s: got.append(m["level"])
    )
    system.drain()
    return subscriber, got


# ----------------------------------------------------------------------
# Windowed reliable channel
# ----------------------------------------------------------------------


class _Wire:
    def __init__(self):
        self.frames = []
        self.retransmits = 0

    def send(self, frame):
        self.frames.append(frame)

    def on_retransmit(self, count):
        self.retransmits += count


def test_flow_window_bounds_outstanding_frames():
    sim = Simulator()
    wire = _Wire()
    sender = ReliableSender(sim, wire.send, wire.on_retransmit, window=2)
    for payload in ("a", "b", "c", "d"):
        sender.send(payload)
    assert len(wire.frames) == 2
    assert sender.outstanding == 2
    assert len(sender.pending) == 2
    # Acking the first frame opens one slot: "c" goes out, in order.
    sender.on_ack(Ack(0, 0))
    assert [f.payload for f in wire.frames] == ["a", "b", "c"]
    sender.on_ack(Ack(0, 2))
    assert [f.payload for f in wire.frames] == ["a", "b", "c", "d"]
    sender.on_ack(Ack(0, 3))
    assert sender.idle
    sim.run()  # fully acked: the retransmit timer is disarmed


def test_flow_peer_credits_cap_effective_window():
    sim = Simulator()
    wire = _Wire()
    sender = ReliableSender(sim, wire.send, wire.on_retransmit, window=8)
    sender.send("a")
    # The receiver advertises a single buffer slot: even with a window of
    # 8, only one frame may be outstanding.
    sender.on_ack(Ack(0, 0, credits=1))
    sender.send("b")
    sender.send("c")
    assert len(wire.frames) == 2
    assert len(sender.pending) == 1
    # A wider advertisement releases the queued frame.
    sender.on_ack(Ack(0, 1, credits=4))
    assert [f.payload for f in wire.frames] == ["a", "b", "c"]


def test_flow_no_progress_ack_still_updates_credits():
    """A duplicate ack carrying a fresh credit advertisement must open
    the window even though it acknowledges nothing new."""
    sim = Simulator()
    wire = _Wire()
    sender = ReliableSender(sim, wire.send, wire.on_retransmit, window=8)
    sender.send("a")
    sender.on_ack(Ack(0, 0, credits=0))  # receiver full
    sender.send("b")
    assert len(wire.frames) == 1
    sender.on_ack(Ack(0, 0, credits=2))  # same seq, space opened
    assert [f.payload for f in wire.frames] == ["a", "b"]


def test_flow_receiver_capacity_advertises_free_space():
    receiver = ReliableReceiver(capacity=3)
    delivered = []
    ack = receiver.on_frame(Sequenced(0, 0, "a"), delivered.append)
    assert ack.credits == 3  # delivered immediately, buffer empty
    # An out-of-order frame occupies the reorder buffer.
    ack = receiver.on_frame(Sequenced(0, 2, "c"), delivered.append)
    assert ack.credits == 2
    ack = receiver.on_frame(Sequenced(0, 1, "b"), delivered.append)
    assert ack.credits == 3
    assert delivered == ["a", "b", "c"]


def test_flow_reset_clears_window_state():
    sim = Simulator()
    wire = _Wire()
    sender = ReliableSender(sim, wire.send, wire.on_retransmit, window=1)
    sender.send("a")
    sender.send("b")
    sender.on_ack(Ack(0, -1, credits=0))
    assert sender.pending
    sender.reset()
    assert sender.idle
    assert sender.peer_credits is None
    sender.send("c")
    assert wire.frames[-1].epoch == 1 and wire.frames[-1].seq == 0


def test_flow_window_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ReliableSender(sim, lambda f: None, window=0)
    with pytest.raises(ValueError):
        ReliableReceiver(capacity=0)


# ----------------------------------------------------------------------
# End-to-end backpressure
# ----------------------------------------------------------------------


def _firehose(system, publisher, count, interval):
    accepted = 0
    sent = 0

    def blast():
        nonlocal accepted, sent
        if sent >= count:
            return
        sent += 1
        if publisher.publish(Alert("db", sent), event_class="Alert"):
            accepted += 1

    feed = system.sim.every(interval, blast)
    system.run_for(count * interval + interval)
    feed.cancel()
    return lambda: accepted


def test_flow_backpressure_propagates_to_publisher():
    """A finite-speed overlay with flow control throttles the publisher
    to roughly its service capacity; queues stay bounded and everything
    accepted is delivered once the source stops."""
    flow = FlowConfig(queue_capacity=32, link_window=8,
                      publisher_queue_capacity=16, outbound_capacity=16)
    system = make_system(flow=flow, service_rate=100.0, service_batch=4)
    publisher = system.create_publisher("firehose")
    _, got = setup_subscriber(system)

    # Offer 500 events/s against 100/s of service for one second.
    accepted_fn = _firehose(system, publisher, count=500, interval=0.002)
    peak = system.total_queue_depth()
    system.run_for(3.0)  # drain tail
    accepted = accepted_fn()

    assert accepted < 500, "backpressure never engaged"
    assert publisher.counters.events_shed > 0
    assert publisher.counters.sheds_by_reason["publisher-overflow"] > 0
    budget = (
        7 * flow.queue_capacity
        + 6 * flow.outbound_capacity
        + flow.publisher_queue_capacity
    )
    assert peak <= budget
    # No broker shed anything: with compliant credit senders the bounded
    # broker queues never overflow below overload mode.
    assert all(
        node.counters.events_shed == 0 for node in system.hierarchy.nodes()
    )
    # Everything admitted was eventually delivered — the loop drained.
    assert len(got) == accepted
    assert system.total_queue_depth() == 0


def test_flow_off_below_capacity_is_transparent():
    """At offered loads the overlay can absorb, flow control must not
    change what gets delivered."""
    results = {}
    for flow in (None, FlowConfig()):
        system = make_system(flow=flow, service_rate=1000.0)
        publisher = system.create_publisher("feed")
        _, got = setup_subscriber(system)
        for level in range(20):
            assert publisher.publish(Alert("db", level), event_class="Alert")
            system.run_for(0.05)
        system.run_for(1.0)
        results["on" if flow else "off"] = got
        assert system.total_events_shed() == 0
    assert results["on"] == results["off"] == list(range(20))


def test_flow_grants_ride_reliable_channels_through_loss():
    """A *bounded* lossy fault window must not deadlock the credit loop:
    grants travel on reliable channels (retransmitted until acked), and
    after heal the publisher's window keeps turning over.

    Lost DATA frames do leak their credit (documented limitation, DESIGN
    §10), so the expected loss count must stay below ``link_window`` —
    here ~15 lost frames per link against a window of 32."""
    flow = FlowConfig()  # link_window=32 absorbs the bounded leak
    system = make_system(flow=flow, service_rate=200.0, service_batch=4)
    publisher = system.create_publisher("feed")
    _, got = setup_subscriber(system)

    plan = FaultPlan(seed=9)
    plan.add_window(0.5, 2.5, loss=0.15)
    system.network.install_faults(plan)

    sent = 0

    def blast():
        nonlocal sent
        sent += 1
        publisher.publish(Alert("db", sent), event_class="Alert")

    feed = system.sim.every(0.02, blast)
    system.run_for(5.0)  # through the window and past heal
    feed.cancel()
    system.run_for(3.0)

    delivered_before = len(got)
    assert delivered_before > 0
    # The loop still turns over after heal: fresh publishes are accepted
    # and delivered (a leaked/deadlocked window would refuse or strand
    # them).
    for level in range(1000, 1010):
        publisher.publish(Alert("db", level), event_class="Alert")
        system.run_for(0.05)
    system.run_for(2.0)
    assert got[-10:] == list(range(1000, 1010))
    assert system.total_queue_depth() == 0


def test_flow_broker_crash_resets_credit_windows():
    """Crash/restart of a mid-tree broker resets the credit windows on
    its links (reset-to-full on the new incarnation) instead of leaking
    the credits that died with it."""
    flow = FlowConfig(queue_capacity=32, link_window=8)
    system = make_system(flow=flow, service_rate=200.0, service_batch=4)
    publisher = system.create_publisher("feed")
    subscriber, got = setup_subscriber(system)
    home = subscriber.home_of(subscriber.subscriptions()[0].subscription_id)
    victim = home.parent
    assert victim.stage == 2
    system.start_maintenance()
    system.run_for(1.0)

    def blast():
        publisher.publish(Alert("db", 1), event_class="Alert")

    feed = system.sim.every(0.01, blast)
    system.run_for(1.0)
    victim.crash()
    system.run_for(1.0)
    victim.restart()
    system.run_for(2.0)
    feed.cancel()
    system.run_for(3.0)

    delivered_before = len(got)
    assert delivered_before > 0
    # Post-recovery the full path works and nothing is wedged.
    for level in range(2000, 2005):
        publisher.publish(Alert("db", level), event_class="Alert")
        system.run_for(0.05)
    system.run_for(2.0)
    assert got[-5:] == list(range(2000, 2005))
    assert victim.queue_depth() == 0
    system.stop_maintenance()


def test_flow_sheds_are_traced_deterministically():
    """Shed events leave spans carrying the event's trace id and the
    reason, and two same-seed runs shed identically."""

    def run():
        flow = FlowConfig(queue_capacity=16, link_window=4,
                          publisher_queue_capacity=8)
        system = make_system(flow=flow, service_rate=50.0, service_batch=2,
                             tracing=True)
        publisher = system.create_publisher("feed")
        setup_subscriber(system)
        for level in range(200):
            publisher.publish(Alert("db", level), event_class="Alert")
            system.run_for(0.002)
        system.run_for(3.0)
        return system

    first, second = run(), run()
    sheds = first.tracer.kinds("shed")
    assert sheds, "an oversubscribed run must shed"
    assert all(s.detail("reason") == "publisher-overflow" for s in sheds)
    assert all(s.trace_id is not None for s in sheds)
    kinds = ("shed", "credit-grant", "overload")
    assert first.tracer.dump(kinds=kinds) == second.tracer.dump(kinds=kinds)
    assert first.total_events_shed() == second.total_events_shed()


def test_flow_overload_detector_engages_shedding_mode():
    """Sustained deep queues flip the detector to OVERLOADED (observed on
    the sampler tick), shrinking the effective inbound capacity."""
    flow = FlowConfig(queue_capacity=8, link_window=64,
                      publisher_queue_capacity=64, overload_high=0.5,
                      overload_low=0.1, ewma_alpha=1.0)
    system = make_system(stage_sizes=(1,), flow=flow, service_rate=20.0,
                         service_batch=1)
    root = system.root
    publisher = system.create_publisher("feed")
    setup_subscriber(system)
    system.start_sampling(interval=0.1)

    def blast():
        publisher.publish(Alert("db", 1), event_class="Alert")

    feed = system.sim.every(0.005, blast)  # 200/s against 20/s service
    system.run_for(3.0)
    feed.cancel()
    system.run_for(3.0)
    system.stop_sampling()

    assert root.overload_detector is not None
    assert root.counters.overload_transitions > 0
    # While overloaded the effective capacity shrank below the configured
    # bound, so queue-overflow shedding engaged at the broker.
    assert root.counters.sheds_by_reason.get("queue-overflow", 0) > 0


# ----------------------------------------------------------------------
# Durable offline buffers: observable shedding + name-keyed state
# ----------------------------------------------------------------------


def test_flow_offline_buffer_overflow_is_observable():
    """The durable buffer's drop-oldest overflow keeps its semantics
    (newest events survive) and is now counted per subscriber and traced."""
    system = MultiStageEventSystem(stage_sizes=(2, 1), seed=3, ttl=10.0,
                                   tracing=True)
    system.advertise("Alert", schema=("class", "topic", "level"))
    for node in system.hierarchy.nodes():
        node.offline_buffer_limit = 3
    publisher = system.create_publisher()
    subscriber, got = setup_subscriber(system)
    home = subscriber.home_of(subscriber.subscriptions()[0].subscription_id)

    subscriber.disconnect(durable=True)
    system.drain()
    for level in range(10):
        publisher.publish(Alert("db", level), event_class="Alert")
    system.drain()
    subscriber.reconnect()
    system.drain()

    assert got == [7, 8, 9]  # unchanged drop-oldest semantics
    assert home.counters.offline_drops == {subscriber.name: 7}
    assert home.counters.sheds_by_reason == {"offline-buffer": 7}
    assert home.counters.events_shed == 7
    spans = [
        s for s in system.tracer.kinds("shed")
        if s.detail("reason") == "offline-buffer"
    ]
    assert len(spans) == 7
    assert all(s.node == home.name for s in spans)
    assert all(s.detail("peer") == subscriber.name for s in spans)


class _RebornClient(Process):
    """A restarted subscriber process: same stable name, new object."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, message, sender):
        self.received.append(message)


def test_flow_durable_buffer_keyed_by_stable_name():
    """Regression: ``_offline``/``_buffers`` used to key by ``id()`` of
    the subscriber object; a recycled id could hand a dead subscriber's
    offline flag and durable buffer to an unrelated process, or strand
    the buffer when the same client reconnected through a new object.
    Durable state must follow the stable process *name*."""
    system = make_system()
    publisher = system.create_publisher()
    subscriber, got = setup_subscriber(system)
    home = subscriber.home_of(subscriber.subscriptions()[0].subscription_id)

    subscriber.disconnect(durable=True)
    system.drain()
    for level in (1, 2, 3):
        publisher.publish(Alert("db", level), event_class="Alert")
    system.drain()

    # Offline flag and buffer live under the subscriber's name.
    assert subscriber.name in home._offline
    assert [p.envelope.metadata["level"] for p in home._buffers[subscriber.name]] \
        == [1, 2, 3]

    # The client restarts: the same identity reconnects through a brand
    # new object (the old one is gone, its id free for recycling).  The
    # buffer must replay to the new object purely on the name.
    system.network.forget(subscriber)
    reborn = _RebornClient(system.sim, subscriber.name)
    home.receive(Reconnect(), reborn)
    system.drain()
    replayed = [m for m in reborn.received if isinstance(m, Publish)]
    assert [p.envelope.metadata["level"] for p in replayed] == [1, 2, 3]
    assert subscriber.name not in home._offline
    assert subscriber.name not in home._buffers

    # And an unrelated process going offline durably gets its own empty
    # buffer — never an old identity's leftovers.
    stranger = _RebornClient(system.sim, "total-stranger")
    home.receive(Disconnect(durable=True), stranger)
    assert len(home._buffers["total-stranger"]) == 0
