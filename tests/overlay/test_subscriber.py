"""Unit tests for the subscriber runtime (Figure 5a + stage-0 filtering)."""

import pytest

from repro.core.engine import MultiStageEventSystem

SCHEMA = ("class", "symbol", "price")


class Quote:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


def make_system(**kwargs):
    defaults = dict(stage_sizes=(4, 2, 1), seed=5, ttl=10.0)
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.advertise("Quote", schema=SCHEMA)
    return system


def test_all_joined_tracks_pending_state():
    system = make_system()
    subscriber = system.create_subscriber()
    assert subscriber.all_joined()  # vacuously
    system.subscribe(subscriber, 'class = "Quote" and symbol = "A"')
    assert not subscriber.all_joined()
    system.drain()
    assert subscriber.all_joined()


def test_multiple_subscriptions_may_have_different_homes():
    system = make_system()
    subscriber = system.create_subscriber()
    a = system.subscribe(subscriber, 'class = "Quote" and symbol = "A" and price < 1')[0]
    system.drain()
    b = system.subscribe(subscriber, 'class = "Quote" and symbol = "B" and price < 1')[0]
    system.drain()
    assert subscriber.home_of(a.subscription_id) is not None
    assert subscriber.home_of(b.subscription_id) is not None
    assert len(subscriber.subscriptions()) == 2


def test_stage0_perfect_filtering_rejects_weakly_matched_events():
    """Stage-1 filters drop the price bound; the subscriber's exact
    filter restores it — perfect end-to-end filtering."""
    system = make_system()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    delivered = []
    system.subscribe(
        subscriber, 'class = "Quote" and symbol = "A" and price < 10',
        handler=lambda e, m, s: delivered.append(m["price"]),
    )
    system.drain()
    publisher.publish(Quote("A", 5.0), event_class="Quote")
    publisher.publish(Quote("A", 15.0), event_class="Quote")  # reaches, rejected
    system.drain()
    assert delivered == [5.0]
    assert subscriber.counters.events_received == 2
    assert subscriber.counters.events_matched == 1
    assert subscriber.counters.events_delivered == 1


def test_handler_receives_typed_object_metadata_and_subscription():
    system = make_system()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    captured = {}

    def handler(event, metadata, subscription):
        captured["event"] = event
        captured["metadata"] = metadata
        captured["subscription"] = subscription

    sub = system.subscribe(
        subscriber, 'class = "Quote" and symbol = "A"', handler=handler
    )[0]
    system.drain()
    publisher.publish(Quote("A", 1.0), event_class="Quote")
    system.drain()
    assert isinstance(captured["event"], Quote)
    assert captured["event"].get_price() == 1.0
    assert captured["metadata"]["symbol"] == "A"
    assert captured["subscription"] is sub


def test_one_delivery_per_matching_subscription():
    system = make_system()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    hits = []
    system.subscribe(
        subscriber, 'class = "Quote" and price < 10',
        handler=lambda e, m, s: hits.append("broad"),
    )
    system.subscribe(
        subscriber, 'class = "Quote" and symbol = "A"',
        handler=lambda e, m, s: hits.append("narrow"),
    )
    system.drain()
    publisher.publish(Quote("A", 5.0), event_class="Quote")
    system.drain()
    assert sorted(hits) == ["broad", "narrow"]
    # The two subscriptions are homed at different nodes (the broad one is
    # a wildcard subscription living higher up), so the subscriber gets
    # one copy per home — and exactly one delivery per subscription.
    assert subscriber.counters.events_received == 2
    assert subscriber.counters.events_delivered == 2


def test_residual_failure_blocks_delivery_but_counts_match():
    system = make_system()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    delivered = []
    system.subscribe(
        subscriber, 'class = "Quote" and symbol = "A"',
        residual=lambda q: False,
        handler=lambda e, m, s: delivered.append(e),
    )
    system.drain()
    publisher.publish(Quote("A", 1.0), event_class="Quote")
    system.drain()
    assert delivered == []
    assert subscriber.counters.events_matched == 1
    assert subscriber.counters.events_delivered == 0


def test_unsubscribed_subscription_stops_matching_locally():
    system = make_system()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    delivered = []
    sub = system.subscribe(
        subscriber, 'class = "Quote" and symbol = "A"',
        handler=lambda e, m, s: delivered.append(e),
    )[0]
    system.drain()
    subscriber.unsubscribe(sub.subscription_id, explicit=False)
    # Filter still installed upstream, so the event arrives...
    publisher.publish(Quote("A", 1.0), event_class="Quote")
    system.drain()
    # ...but the inactive subscription neither matches nor delivers.
    assert delivered == []
    assert subscriber.counters.events_delivered == 0


def test_unsubscribe_twice_is_harmless():
    system = make_system()
    subscriber = system.create_subscriber()
    sub = system.subscribe(subscriber, 'class = "Quote" and symbol = "A"')[0]
    system.drain()
    subscriber.unsubscribe(sub.subscription_id)
    subscriber.unsubscribe(sub.subscription_id)
    subscriber.unsubscribe(999999)  # unknown id: no-op
    system.drain()


def test_renewal_task_renews_all_homes():
    system = make_system(ttl=10.0)
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, 'class = "Quote" and symbol = "A" and price < 1')
    system.drain()
    system.subscribe(subscriber, 'class = "Quote" and symbol = "B" and price < 1')
    system.drain()
    system.start_maintenance()
    system.run_for(65)
    # Both subscriptions survive well past 3xTTL.
    total_filters = sum(len(n.table) for n in system.hierarchy.nodes(1))
    assert total_filters == 2
    system.stop_maintenance()


def test_unexpected_message_raises():
    system = make_system()
    subscriber = system.create_subscriber()
    with pytest.raises(TypeError):
        subscriber.receive(42, subscriber)


def test_counters_gauge_counts_active_subscriptions():
    system = make_system()
    subscriber = system.create_subscriber()
    sub = system.subscribe(subscriber, 'class = "Quote" and symbol = "A"')[0]
    assert subscriber.counters.filters_held == 1
    subscriber.unsubscribe(sub.subscription_id, explicit=False)
    assert subscriber.counters.filters_held == 0


def test_repr():
    system = make_system()
    subscriber = system.create_subscriber("bob")
    assert "bob" in repr(subscriber)
