"""Protocol tests for BrokerNode: Figure 5(b) routing, Figure 6 forwarding,
TTL maintenance, and wildcard handling."""

import pytest

from repro.core.engine import MultiStageEventSystem
from repro.events.base import PropertyEvent
from repro.overlay.messages import Renewal

SCHEMA = ("class", "symbol", "price")


class Quote:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


def make_system(**kwargs):
    defaults = dict(stage_sizes=(4, 2, 1), seed=3, ttl=10.0)
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.advertise("Quote", schema=SCHEMA)
    return system


def subscribe(system, subscriber, text, **kwargs):
    subs = system.subscribe(subscriber, text, event_class="Quote", **kwargs)
    system.drain()
    return subs[0]


class TestAdvertisementFlooding:
    def test_every_node_learns_the_advertisement(self):
        system = make_system()
        system.drain()
        for node in system.hierarchy.nodes():
            assert node.advertisements.get("Quote") is not None

    def test_readvertising_is_not_reflooded(self):
        system = make_system()
        system.drain()
        before = system.network.stats.total_messages
        system.advertise("Quote", schema=SCHEMA)
        system.drain()
        after = system.network.stats.total_messages
        # One message to the root, which stops the flood (no change).
        assert after - before == 1


class TestFilterInstallation:
    def test_subscription_installs_weakened_filters_up_the_path(self):
        system = make_system()
        subscriber = system.create_subscriber("alice")
        subscribe(system, subscriber, 'class = "Quote" and symbol = "A" and price < 5')
        home = subscriber.home_of(subscriber.subscriptions()[0].subscription_id)
        assert home.stage == 1
        # Stage 1 stores class+symbol (uniform Gc drops price).
        stage1_filter = next(iter(home.table.filters()))
        assert stage1_filter.attributes() == ["class", "symbol"]
        # The parent stores class only, the root class only.
        parent_filter = next(iter(home.parent.table.filters()))
        assert parent_filter.attributes() == ["class"]
        root_filters = list(system.root.table.filters())
        assert [f.attributes() for f in root_filters] == [["class"]]

    def test_identical_upper_filters_collapse(self):
        system = make_system()
        for i in range(6):
            subscriber = system.create_subscriber(f"s{i}")
            subscribe(
                system, subscriber,
                f'class = "Quote" and symbol = "SYM{i}" and price < 5',
            )
        assert len(system.root.table) == 1  # all collapse to (class=Quote)

    def test_filters_held_gauge_tracks_table(self):
        system = make_system()
        subscriber = system.create_subscriber()
        subscribe(system, subscriber, 'class = "Quote" and symbol = "A"')
        home = subscriber.home_of(subscriber.subscriptions()[0].subscription_id)
        assert home.counters.filters_held == len(home.table) == 1


class TestSimilarityPlacement:
    def test_similar_subscriptions_cluster_on_one_node(self):
        system = make_system()
        homes = []
        for i in range(4):
            subscriber = system.create_subscriber(f"s{i}")
            sub = subscribe(
                system, subscriber,
                f'class = "Quote" and symbol = "HOT" and price < {5 + i}',
            )
            homes.append(subscriber.home_of(sub.subscription_id))
        assert len({h.name for h in homes}) == 1

    def test_join_redirects_descend_and_terminate(self):
        system = make_system()
        subscriber = system.create_subscriber()
        sub = subscribe(system, subscriber, 'class = "Quote" and symbol = "X"')
        state = subscriber._states[sub.subscription_id]
        # Root (stage 3) -> stage 2 -> stage 1: exactly two redirects.
        assert state.join_hops == 2
        assert state.joined


class TestWildcardRouting:
    def test_symbol_wildcard_attaches_above_stage_one(self):
        system = make_system()
        subscriber = system.create_subscriber("wild")
        # symbol unspecified -> wildcard on symbol and price.  symbol is
        # used up to stage 1 (uniform Gc on 3 attrs / 4 stages), so the
        # subscription attaches at stage 2.
        sub = subscribe(system, subscriber, 'class = "Quote"')
        home = subscriber.home_of(sub.subscription_id)
        assert home.stage == 2

    def test_class_only_gc_clamps_to_root(self):
        system = MultiStageEventSystem(stage_sizes=(4, 2, 1), seed=3)
        # symbol used at every broker stage: a symbol wildcard targets a
        # stage above the root and must clamp there.
        system.advertise("Quote", schema=SCHEMA, stage_prefixes=[3, 3, 3, 3])
        subscriber = system.create_subscriber()
        sub = subscribe(system, subscriber, 'class = "Quote"')
        assert subscriber.home_of(sub.subscription_id) is system.root

    def test_naive_mode_sends_wildcards_to_stage_one(self):
        system = make_system(wildcard_routing=False)
        subscriber = system.create_subscriber()
        sub = subscribe(system, subscriber, 'class = "Quote"')
        assert subscriber.home_of(sub.subscription_id).stage == 1

    def test_wildcard_subscriber_receives_everything_of_the_class(self):
        system = make_system()
        publisher = system.create_publisher()
        subscriber = system.create_subscriber()
        got = []
        system.subscribe(
            subscriber, 'class = "Quote"', event_class="Quote",
            handler=lambda e, m, s: got.append(m["symbol"]),
        )
        system.drain()
        for symbol in ("A", "B", "C"):
            publisher.publish(Quote(symbol, 1.0), event_class="Quote")
        system.drain()
        assert got == ["A", "B", "C"]

    def test_second_similar_wildcard_clusters_at_same_node(self):
        system = make_system()
        homes = []
        for i in range(2):
            subscriber = system.create_subscriber(f"w{i}")
            sub = subscribe(system, subscriber, 'class = "Quote" and price < 9')
            homes.append(subscriber.home_of(sub.subscription_id))
        assert homes[0] is homes[1]


class TestForwarding:
    def test_event_forwarded_once_per_destination(self):
        system = make_system()
        publisher = system.create_publisher()
        subscriber = system.create_subscriber()
        # Two subscriptions on the same subscriber -> two filters at its
        # home, both pointing at the same destination.
        subscribe(system, subscriber, 'class = "Quote" and symbol = "A" and price < 5')
        subscribe(system, subscriber, 'class = "Quote" and symbol = "A" and price < 9')
        publisher.publish(Quote("A", 1.0), event_class="Quote")
        system.drain()
        assert subscriber.counters.events_received == 1

    def test_non_matching_event_discarded_at_root(self):
        system = make_system()
        publisher = system.create_publisher()
        subscriber = system.create_subscriber()
        subscribe(system, subscriber, 'class = "Quote" and symbol = "A"')
        publisher.publish(PropertyEvent({"class": "Other", "symbol": "A"}))
        system.drain()
        root = system.root
        assert root.counters.events_received == 1
        assert root.counters.events_matched == 0
        assert subscriber.counters.events_received == 0

    def test_match_counters(self):
        system = make_system()
        publisher = system.create_publisher()
        subscriber = system.create_subscriber()
        subscribe(system, subscriber, 'class = "Quote" and symbol = "A"')
        publisher.publish(Quote("A", 1.0), event_class="Quote")
        publisher.publish(Quote("B", 1.0), event_class="Quote")
        system.drain()
        root = system.root
        assert root.counters.events_received == 2
        assert root.counters.events_matched == 2  # class filter matches both
        home = subscriber.home_of(subscriber.subscriptions()[0].subscription_id)
        assert home.counters.events_matched == 1  # symbol filter rejects B


class TestMaintenance:
    def test_purge_removes_silent_subscriber(self):
        system = make_system(ttl=10.0)
        subscriber = system.create_subscriber()
        subscribe(system, subscriber, 'class = "Quote" and symbol = "A"')
        system.start_maintenance()
        subscriber.stop_maintenance()  # the subscriber "crashes"
        # Decay cascades one stage at a time (a node only stops renewing a
        # filter after purging it), so allow ~3xTTL per broker stage.
        system.run_for(10 * 12)
        assert sum(len(n.table) for n in system.hierarchy.nodes()) == 0
        system.stop_maintenance()

    def test_renewing_subscriber_survives(self):
        system = make_system(ttl=10.0)
        subscriber = system.create_subscriber()
        subscribe(system, subscriber, 'class = "Quote" and symbol = "A"')
        system.start_maintenance()
        system.run_for(10 * 6)
        home = subscriber.home_of(subscriber.subscriptions()[0].subscription_id)
        assert len(home.table) == 1
        assert len(system.root.table) == 1
        system.stop_maintenance()

    def test_renewal_restores_purged_filter(self):
        """Refresh-or-restore: a parent that purged a live child's filter
        gets it back on the next renewal."""
        system = make_system(ttl=10.0)
        subscriber = system.create_subscriber()
        sub = subscribe(system, subscriber, 'class = "Quote" and symbol = "A"')
        home = subscriber.home_of(sub.subscription_id)
        stored = subscriber._states[sub.subscription_id].stored_filter
        # Simulate an erroneous purge at the home node.
        home.table.remove(stored, subscriber)
        home.leases.forget(stored, subscriber)
        assert len(home.table) == 0
        system.network.send(
            subscriber, home, Renewal(((stored, "Quote"),))
        )
        system.drain()
        assert len(home.table) == 1

    def test_unexpected_message_raises(self):
        system = make_system()
        system.drain()
        with pytest.raises(TypeError):
            system.root.receive("garbage", system.root)


class TestUnsubscribe:
    def test_explicit_unsubscribe_removes_at_home(self):
        system = make_system()
        publisher = system.create_publisher()
        subscriber = system.create_subscriber()
        sub = subscribe(system, subscriber, 'class = "Quote" and symbol = "A"')
        home = subscriber.home_of(sub.subscription_id)
        subscriber.unsubscribe(sub.subscription_id)
        system.drain()
        assert len(home.table) == 0
        publisher.publish(Quote("A", 1.0), event_class="Quote")
        system.drain()
        assert subscriber.counters.events_delivered == 0

    def test_implicit_unsubscribe_keeps_table_until_expiry(self):
        system = make_system()
        subscriber = system.create_subscriber()
        sub = subscribe(system, subscriber, 'class = "Quote" and symbol = "A"')
        home = subscriber.home_of(sub.subscription_id)
        subscriber.unsubscribe(sub.subscription_id, explicit=False)
        system.drain()
        assert len(home.table) == 1  # decays only via TTL
