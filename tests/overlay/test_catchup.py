"""Catch-up subscribers: late joiners drain history, then go live.

The headline differential (the ISSUE's satellite 3): a subscriber that
joins *late* and catches up from offset 0 must, after switchover, show
a post-switchover delivery trace byte-identical to a subscriber that
was there from the start — across seeds, with and without wire faults
during the history it replays.  Plus targeted tests for replay origins
(offset, ISO timestamp), flow-credit pacing of history, handover
dedup, and the exactly-once audit over a whole catch-up run.
"""

import pytest

from repro.core.engine import MultiStageEventSystem
from repro.flow import FlowConfig
from repro.log import AuditSubscription, LogConfig, format_point, verify_exactly_once
from repro.sim.network import FaultPlan

SCHEMA = ("class", "symbol", "price")


class Quote:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


def make_system(seed, **kwargs):
    defaults = dict(
        stage_sizes=(4, 2, 1),
        seed=seed,
        ttl=30.0,
        tracing=True,
        flow=FlowConfig(),
        log=LogConfig(),
    )
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.advertise("Quote", schema=SCHEMA)
    system.drain()
    return system


def add_subscriber(system, name, text='symbol = "Foo"'):
    """Subscribe ``name`` at the first stage-1 node; returns
    (subscriber, subscription, ordered deliveries)."""
    subscriber = system.create_subscriber(name)
    got = []
    home = system.hierarchy.stage1_nodes()[0]
    subscriptions = system.subscribe(
        subscriber,
        text,
        event_class="Quote",
        handler=lambda e, m, s: got.append((m["symbol"], m["price"])),
        at_node=home,
    )
    system.drain()
    return subscriber, subscriptions[0], got


def publish_range(system, publisher, start, stop, dt=0.01):
    for i in range(start, stop):
        publisher.publish(Quote("Foo", float(i)), event_class="Quote")
        system.run_for(dt)


def drain_catch_up(system, subscriber, sid, budget=30.0):
    """Run until the catch-up session has switched to live."""
    elapsed = 0.0
    while not subscriber.catch_up_live(sid) and elapsed < budget:
        system.run_for(0.25)
        elapsed += 0.25
    assert subscriber.catch_up_live(sid), "catch-up never reached live"


# ----------------------------------------------------------------------
# The differential: catch-up == from-the-start, post-switchover
# ----------------------------------------------------------------------


def run_differential(seed, faults):
    system = make_system(seed)
    publisher = system.create_publisher("quotes")
    veteran, veteran_sub, veteran_got = add_subscriber(system, f"veteran-{seed}")

    if faults:
        plan = FaultPlan(seed)
        # Loss and duplication across the event's whole downstream path
        # while the history the late joiner will replay is published.
        plan.add_window(0.05, 0.15, loss=0.2, duplicate=0.2)
        system.network.install_faults(plan)

    publish_range(system, publisher, 0, 20)
    system.run_for(1.0)  # retransmissions settle; fault window long over

    late, late_sub, late_got = add_subscriber(system, f"late-{seed}")
    sid = late_sub.subscription_id
    late.catch_up(sid, from_offset=0)
    drain_catch_up(system, late, sid)
    switchover_len = len(late_got)

    publish_range(system, publisher, 20, 40)
    system.run_for(1.0)
    return system, (veteran, veteran_sub, veteran_got), (
        late,
        late_sub,
        late_got,
        switchover_len,
    )


@pytest.mark.parametrize("seed", [7, 11, 23])
@pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulty"])
def test_catch_up_differential_post_switchover_traces_identical(seed, faults):
    system, veteran_side, late_side = run_differential(seed, faults)
    _, _, veteran_got = veteran_side
    late, late_sub, late_got, switchover_len = late_side

    # Post-switchover: both subscribers saw the live phase byte-for-byte
    # identically (same events, same order, no gap, no duplicate).
    live_phase = [d for d in veteran_got if d[1] >= 20.0]
    late_live = late_got[switchover_len:]
    assert repr(late_live).encode() == repr(live_phase).encode()
    assert [d[1] for d in late_live] == [float(i) for i in range(20, 40)]

    # And history made the late joiner whole: it holds every logged
    # phase-1 event exactly once, in log order.
    fence = 20 if not faults else None
    history = late_got[:switchover_len]
    logged = [
        r.envelope.metadata["price"]
        for r in system.root.log.read_from(0)
        if r.envelope.metadata["price"] < 20.0
    ]
    assert [d[1] for d in history] == logged
    if fence is not None:
        assert len(history) == fence


@pytest.mark.parametrize("seed", [7, 11, 23])
def test_catch_up_run_audits_exactly_once(seed):
    system, veteran_side, late_side = run_differential(seed, faults=False)
    veteran, veteran_sub, _ = veteran_side
    late, late_sub, _, _ = late_side
    report = verify_exactly_once(
        system.root.log,
        system.tracer,
        [
            AuditSubscription(veteran.name, veteran_sub.filter),
            AuditSubscription(late.name, late_sub.filter),
        ],
    )
    assert report.clean, report.render()
    assert report.expected == 80  # 40 events x 2 subscribers
    assert report.delivered == 80


# ----------------------------------------------------------------------
# Replay origins
# ----------------------------------------------------------------------


def test_catch_up_from_mid_offset_gets_only_the_suffix():
    system = make_system(5)
    publisher = system.create_publisher("quotes")
    publish_range(system, publisher, 0, 12)
    system.drain()

    late, sub, got = add_subscriber(system, "late")
    sid = sub.subscription_id
    late.catch_up(sid, from_offset=7)
    drain_catch_up(system, late, sid)
    assert [d[1] for d in got] == [float(i) for i in range(7, 12)]
    stats = late.catch_up_stats(sid)
    assert stats["history_delivered"] == 5


def test_catch_up_from_iso_timestamp():
    system = make_system(5)
    publisher = system.create_publisher("quotes")
    publish_range(system, publisher, 0, 6, dt=1.0)  # one event per second
    system.drain()

    cut = system.root.log.record_at(3).time
    late, sub, got = add_subscriber(system, "late")
    sid = sub.subscription_id
    late.catch_up(sid, from_time=format_point(cut))
    drain_catch_up(system, late, sid)
    assert [d[1] for d in got] == [3.0, 4.0, 5.0]


def test_catch_up_with_empty_history_goes_live_immediately():
    system = make_system(5)
    publisher = system.create_publisher("quotes")
    late, sub, got = add_subscriber(system, "late")
    sid = sub.subscription_id
    late.catch_up(sid, from_offset=0)
    drain_catch_up(system, late, sid)
    assert late.catch_up_stats(sid)["history_delivered"] == 0
    publish_range(system, publisher, 0, 5)
    system.run_for(0.5)
    assert [d[1] for d in got] == [float(i) for i in range(5)]


# ----------------------------------------------------------------------
# Flow composition: history is credit-paced
# ----------------------------------------------------------------------


def test_history_replay_respects_replay_rate():
    system = make_system(
        5, log=LogConfig(replay_rate=50.0, replay_batch=5)
    )
    publisher = system.create_publisher("quotes")
    publish_range(system, publisher, 0, 60, dt=0.001)
    system.drain()

    late, sub, got = add_subscriber(system, "late")
    sid = sub.subscription_id
    start = system.sim.now
    late.catch_up(sid, from_offset=0)
    drain_catch_up(system, late, sid)
    elapsed = system.sim.now - start
    assert len(got) == 60
    # 60 records at 50/s cannot complete faster than ~1.1s of simulated
    # time (first batch fires after one inter-batch interval).
    assert elapsed >= 1.0


def test_history_replay_is_bounded_by_link_credits():
    """With a tiny downlink window and a huge nominal rate, pacing is
    credit-driven: the replayer can never have more than ``link_window``
    unacknowledged history events outstanding."""
    system = make_system(
        5,
        flow=FlowConfig(link_window=4),
        log=LogConfig(replay_rate=1e6, replay_batch=64),
    )
    publisher = system.create_publisher("quotes")
    publish_range(system, publisher, 0, 40, dt=0.001)
    system.drain()

    late, sub, got = add_subscriber(system, "late")
    sid = sub.subscription_id
    late.catch_up(sid, from_offset=0)
    drain_catch_up(system, late, sid)
    assert len(got) == 40
    # The 64-wide batches had to be squeezed through a 4-credit window:
    # the root recorded stalls while pumping history.
    assert system.root.counters.credit_stalls > 0
