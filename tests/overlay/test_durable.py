"""Tests for durable subscriptions (§2.1: nodes "storing events for
temporarily disconnected subscribers with durable subscriptions")."""

import pytest

from repro.core.engine import MultiStageEventSystem


class Alert:
    def __init__(self, topic, level):
        self._topic = topic
        self._level = level

    def get_topic(self):
        return self._topic

    def get_level(self):
        return self._level


def make_system(**kwargs):
    defaults = dict(stage_sizes=(4, 2, 1), seed=21, ttl=10.0)
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.advertise("Alert", schema=("class", "topic", "level"))
    return system


def setup_subscriber(system, text='class = "Alert" and topic = "db"'):
    subscriber = system.create_subscriber()
    got = []
    system.subscribe(
        subscriber, text, handler=lambda e, m, s: got.append(m["level"])
    )
    system.drain()
    return subscriber, got


def test_durable_disconnect_buffers_and_replays():
    system = make_system()
    publisher = system.create_publisher()
    subscriber, got = setup_subscriber(system)

    publisher.publish(Alert("db", 1))
    system.drain()
    assert got == [1]

    subscriber.disconnect(durable=True)
    system.drain()
    publisher.publish(Alert("db", 2))
    publisher.publish(Alert("db", 3))
    publisher.publish(Alert("web", 9))  # does not match; never buffered
    system.drain()
    assert got == [1]  # nothing delivered while offline

    subscriber.reconnect()
    system.drain()
    assert got == [1, 2, 3]  # replayed in publish order


def test_non_durable_disconnect_drops_events():
    system = make_system()
    publisher = system.create_publisher()
    subscriber, got = setup_subscriber(system)

    subscriber.disconnect(durable=False)
    system.drain()
    publisher.publish(Alert("db", 2))
    system.drain()
    subscriber.reconnect()
    system.drain()
    assert got == []

    publisher.publish(Alert("db", 3))
    system.drain()
    assert got == [3]  # live again after reconnect


def test_buffer_is_bounded_drop_oldest():
    system = MultiStageEventSystem(stage_sizes=(2, 1), seed=3, ttl=10.0)
    system.advertise("Alert", schema=("class", "topic", "level"))
    for node in system.hierarchy.nodes():
        node.offline_buffer_limit = 3
    publisher = system.create_publisher()
    subscriber, got = setup_subscriber(system)

    subscriber.disconnect(durable=True)
    system.drain()
    for level in range(10):
        publisher.publish(Alert("db", level))
    system.drain()
    subscriber.reconnect()
    system.drain()
    assert got == [7, 8, 9]  # only the newest 3 survive


def test_filters_stay_installed_while_offline():
    system = make_system()
    subscriber, _ = setup_subscriber(system)
    home = subscriber.home_of(subscriber.subscriptions()[0].subscription_id)
    subscriber.disconnect()
    system.drain()
    assert len(home.table) == 1


def test_offline_beyond_lease_loses_subscription_and_buffer():
    """The durable window is the lease lifetime: past 3xTTL the filters
    decay and the buffer is garbage-collected with them."""
    ttl = 10.0
    system = make_system(ttl=ttl)
    publisher = system.create_publisher()
    subscriber, got = setup_subscriber(system)
    home = subscriber.home_of(subscriber.subscriptions()[0].subscription_id)

    system.start_maintenance()
    subscriber.disconnect(durable=True)
    system.run_for(1.0)
    publisher.publish(Alert("db", 1))
    system.run_for(ttl * 12)
    assert len(home.table) == 0
    assert not home._buffers  # buffer went with the lease

    subscriber.reconnect()
    system.run_for(1.0)
    assert got == []  # nothing to replay; subscription is gone upstream
    system.stop_maintenance()


def test_renewals_pause_while_offline_and_resume():
    ttl = 10.0
    system = make_system(ttl=ttl)
    subscriber, _ = setup_subscriber(system)
    system.start_maintenance()
    subscriber.disconnect(durable=True)
    system.run_for(ttl)  # short absence, well under 3xTTL
    subscriber.reconnect()
    system.run_for(ttl * 6)  # renewals resumed: still installed
    home = subscriber.home_of(subscriber.subscriptions()[0].subscription_id)
    assert len(home.table) == 1
    system.stop_maintenance()


def test_multiple_durable_subscribers_buffer_independently():
    system = make_system()
    publisher = system.create_publisher()
    first, got_first = setup_subscriber(system)
    second, got_second = setup_subscriber(system)

    first.disconnect(durable=True)
    system.drain()
    publisher.publish(Alert("db", 5))
    system.drain()
    assert got_second == [5]
    assert got_first == []

    first.reconnect()
    system.drain()
    assert got_first == [5]


def test_rejoin_after_lease_decay_restores_service():
    """After sleeping past the lease window, rejoin() re-runs Figure 5
    and the subscription comes back to life end to end."""
    ttl = 10.0
    system = make_system(ttl=ttl)
    publisher = system.create_publisher()
    subscriber, got = setup_subscriber(system)
    sub_id = subscriber.subscriptions()[0].subscription_id

    system.start_maintenance()
    subscriber.disconnect(durable=True)
    system.run_for(ttl * 12)  # far past 3xTTL: filters are gone upstream
    assert sum(len(n.table) for n in system.hierarchy.nodes()) == 0

    subscriber.reconnect()
    subscriber.rejoin(sub_id)
    system.run_for(ttl)
    assert subscriber.all_joined()
    publisher.publish(Alert("db", 7))
    system.run_for(1.0)
    assert got == [7]
    system.stop_maintenance()


def test_rejoin_unknown_subscription_raises():
    system = make_system()
    subscriber, _ = setup_subscriber(system)
    with pytest.raises(KeyError):
        subscriber.rejoin(999999)


def test_rejoin_inactive_subscription_raises():
    system = make_system()
    subscriber, _ = setup_subscriber(system)
    sub_id = subscriber.subscriptions()[0].subscription_id
    subscriber.unsubscribe(sub_id)
    with pytest.raises(KeyError):
        subscriber.rejoin(sub_id)
