"""Edge-case and robustness tests for the overlay protocol."""


from repro.core.engine import MultiStageEventSystem
from repro.core.stages import AttributeStageAssociation
from repro.events.base import PropertyEvent
from repro.overlay.node import BrokerNode
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry


class Quote:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


SCHEMA = ("class", "symbol", "price")


def make_system(**kwargs):
    defaults = dict(stage_sizes=(3, 1), seed=41)
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.advertise("Quote", schema=SCHEMA)
    return system


def test_event_matching_nothing_discarded_silently():
    system = make_system()
    publisher = system.create_publisher()
    system.drain()
    publisher.publish(Quote("A", 1.0), event_class="Quote")
    system.drain()
    assert system.root.counters.events_received == 1
    assert system.root.counters.events_forwarded == 0


def test_events_before_any_subscription_do_not_crash():
    system = make_system()
    publisher = system.create_publisher()
    for _ in range(5):
        publisher.publish(Quote("A", 1.0), event_class="Quote")
    system.drain()
    assert system.root.counters.events_received == 5


def test_single_node_hierarchy_serves_directly():
    """Degenerate tree: the root IS the stage-1 node."""
    system = MultiStageEventSystem(stage_sizes=(1,), seed=42)
    system.advertise("Quote", schema=SCHEMA, stage_prefixes=[3, 1])
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = []
    system.subscribe(
        subscriber, 'class = "Quote" and symbol = "A"',
        handler=lambda e, m, s: got.append(m["symbol"]),
    )
    system.drain()
    publisher.publish(Quote("A", 1.0), event_class="Quote")
    publisher.publish(Quote("B", 1.0), event_class="Quote")
    system.drain()
    assert got == ["A"]


def test_inner_node_without_children_hosts_rather_than_bouncing():
    """Malformed topology guard: an inner node with no broker children
    inserts the subscriber instead of redirecting forever."""
    sim = Simulator()
    network = Network(sim, default_latency=0.001)
    rngs = RngRegistry(0)
    node = BrokerNode(sim, network, "lonely", stage=2, rng=rngs.stream("n"))
    from repro.core.advertisement import Advertisement

    advertisement = Advertisement(
        "Quote", AttributeStageAssociation.uniform(SCHEMA, 3)
    )
    node.advertisements.add(advertisement)

    from repro.overlay.subscriber import SubscriberRuntime

    subscriber = SubscriberRuntime(sim, network, "edge", root=node)
    from repro.core.subscription import Subscription

    subscription = Subscription(
        advertisement.standardize(
            __import__("repro.filters.parser", fromlist=["parse_filter"]).parse_filter(
                'class = "Quote" and symbol = "A" and price < 2'
            )
        ),
        "Quote",
    )
    subscriber.subscribe(subscription)
    sim.run()
    assert subscriber.all_joined()
    assert len(node.table) == 1


def test_updated_advertisement_changes_weakening():
    """Re-advertising with a different Gc affects subsequent insertions."""
    system = make_system(stage_sizes=(2, 2, 1))
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, 'class = "Quote" and symbol = "A" and price < 2')
    system.drain()
    home = subscriber.home_of(subscriber.subscriptions()[0].subscription_id)
    first = next(iter(home.table.filters()))
    assert first.attributes() == ["class", "symbol"]  # uniform Gc

    # Publisher re-advertises keeping price down to stage 1.
    system.advertise("Quote", schema=SCHEMA, stage_prefixes=[3, 3, 2, 1])
    system.drain()
    other = system.create_subscriber()
    system.subscribe(other, 'class = "Quote" and symbol = "B" and price < 2')
    system.drain()
    other_home = other.home_of(other.subscriptions()[0].subscription_id)
    stored = [
        f for f in other_home.table.filters()
        if f.constraints_on("symbol") and f.constraints_on("symbol")[0].operand == "B"
    ]
    assert stored and stored[0].attributes() == ["class", "symbol", "price"]


def test_fT_subscription_with_class_in_schema_pins_the_class():
    system = make_system()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = []
    system.subscribe(
        subscriber, None, event_class="Quote",
        handler=lambda e, m, s: got.append(m["class"]),
    )
    system.drain()
    publisher.publish(Quote("A", 1.0), event_class="Quote")
    publisher.publish(PropertyEvent({"class": "Other", "x": 1}))
    system.drain()
    assert got == ["Quote"]


def test_many_subscriptions_single_subscriber():
    system = make_system(stage_sizes=(4, 2, 1))
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    hits = []
    for i in range(10):
        system.subscribe(
            subscriber, f'class = "Quote" and symbol = "S{i}"',
            handler=lambda e, m, s: hits.append(m["symbol"]),
        )
        system.drain()
    assert subscriber.all_joined()
    for i in range(10):
        publisher.publish(Quote(f"S{i}", 1.0), event_class="Quote")
    system.drain()
    assert sorted(hits) == [f"S{i}" for i in range(10)]


def test_control_messages_counted():
    system = make_system()
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, 'class = "Quote" and symbol = "A"')
    system.drain()
    total_control = sum(
        node.counters.control_messages for node in system.hierarchy.nodes()
    )
    assert total_control >= 2  # advertisement flood + subscription request


def test_redirect_follows_strongest_covering_filter():
    """Figure 5b picks the *strongest* stored covering filter, not the
    first: a subscription covered by both a wide and a narrow stored
    filter must follow the narrow one's child."""
    from repro.core.advertisement import Advertisement
    from repro.core.subscription import Subscription
    from repro.filters.parser import parse_filter
    from repro.overlay.subscriber import SubscriberRuntime
    from repro.sim.rng import RngRegistry

    sim = Simulator()
    network = Network(sim, default_latency=0.001)
    rngs = RngRegistry(0)
    parent = BrokerNode(sim, network, "N2.1", stage=2, rng=rngs.stream("p"))
    wide_child = BrokerNode(sim, network, "N1.wide", stage=1, rng=rngs.stream("w"))
    narrow_child = BrokerNode(sim, network, "N1.narrow", stage=1, rng=rngs.stream("n"))
    parent.attach_child(wide_child)
    parent.attach_child(narrow_child)
    network.connect(parent, wide_child)
    network.connect(parent, narrow_child)

    advertisement = Advertisement(
        "Quote",
        AttributeStageAssociation.from_prefixes(SCHEMA, [3, 3, 2, 1]),
    )
    for node in (parent, wide_child, narrow_child):
        node.advertisements.add(advertisement)

    wide = parse_filter('class = "Quote"')
    narrow = parse_filter('class = "Quote" and symbol = "A" and price < 100')
    parent._store(wide, wide_child, "Quote")
    parent._store(narrow, narrow_child, "Quote")

    subscriber = SubscriberRuntime(sim, network, "edge", root=parent)
    subscription = Subscription(
        advertisement.standardize(
            parse_filter('class = "Quote" and symbol = "A" and price < 10')
        ),
        "Quote",
    )
    subscriber.subscribe(subscription)
    sim.run()
    # Redirected via the narrow filter's child, where it was inserted.
    assert subscriber.home_of(subscription.subscription_id) is narrow_child


def test_covering_entries_pointing_only_at_subscribers_are_skipped():
    """A covering entry whose destinations are all subscribers (a
    wildcard host) must not be used as a redirect target."""
    system = make_system(stage_sizes=(3, 1))
    publisher = system.create_publisher()
    # First: a wildcard subscription hosts at the root (class-only Gc use).
    wild = system.create_subscriber("wild")
    system.subscribe(wild, 'class = "Quote"')
    system.drain()
    assert wild.home_of(wild.subscriptions()[0].subscription_id) is not None
    # Second: a narrow subscription covered by the wildcard's stored
    # filter; it must still descend to a stage-1 node, not be bounced
    # toward the subscriber.
    narrow = system.create_subscriber("narrow")
    system.subscribe(narrow, 'class = "Quote" and symbol = "A"')
    system.drain()
    narrow_home = narrow.home_of(narrow.subscriptions()[0].subscription_id)
    assert narrow_home is not None
    assert narrow_home.stage == 1
    publisher.publish(Quote("A", 1.0), event_class="Quote")
    system.drain()
    assert narrow.counters.events_delivered == 1
    assert wild.counters.events_delivered == 1
