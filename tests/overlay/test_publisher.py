"""Unit tests for the publisher runtime."""

import pytest

from repro.core.engine import MultiStageEventSystem
from repro.events.base import PropertyEvent


class Tick(object):
    def __init__(self, value):
        self._value = value

    def get_value(self):
        return self._value


def make_system():
    system = MultiStageEventSystem(stage_sizes=(2, 1), seed=9)
    system.advertise("Tick", schema=("class", "value"))
    return system


def test_publish_counts_events():
    system = make_system()
    publisher = system.create_publisher()
    publisher.publish(Tick(1))
    publisher.publish(Tick(2))
    assert publisher.events_published == 2


def test_registered_type_name_used_in_metadata():
    system = MultiStageEventSystem(stage_sizes=(2, 1))
    system.register_type(Tick, "HeartBeat")
    system.advertise("HeartBeat", schema=("class", "value"))
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    seen = []
    system.subscribe(
        subscriber, None, event_class="HeartBeat",
        handler=lambda e, m, s: seen.append(m["class"]),
    )
    system.drain()
    publisher.publish(Tick(1))
    system.drain()
    assert seen == ["HeartBeat"]


def test_explicit_event_class_override():
    system = make_system()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    seen = []
    system.subscribe(
        subscriber, None, event_class="Tick",
        handler=lambda e, m, s: seen.append(m["class"]),
    )
    system.drain()
    publisher.publish(PropertyEvent({"class": "Tick", "value": 3}))
    system.drain()
    assert seen == ["Tick"]


def test_unregistered_type_falls_back_to_class_name():
    system = make_system()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    seen = []
    system.subscribe(
        subscriber, None, event_class="Tick",
        handler=lambda e, m, s: seen.append(m["class"]),
    )
    system.drain()
    publisher.publish(Tick(5))  # Tick not registered; __name__ used
    system.drain()
    assert seen == ["Tick"]


def test_publisher_rejects_incoming_messages():
    system = make_system()
    publisher = system.create_publisher()
    with pytest.raises(TypeError):
        publisher.receive("anything", publisher)


def test_repr_shows_published_count():
    system = make_system()
    publisher = system.create_publisher("feed")
    publisher.publish(Tick(1))
    assert "published=1" in repr(publisher)
