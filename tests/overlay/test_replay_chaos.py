"""Chaos-replay: crash a broker mid-run, restart it, replay from the
last acked offset, and audit exactly-once end to end.

Every run closes with :func:`verify_exactly_once` diffing the root
log against the delivery trace: zero gaps and zero duplicates outside
the fault windows, across seeds (the ISSUE's satellite 4).  The test
names carry ``chaos`` so CI's fault-path smoke job picks them up.
"""

import pytest

from repro.core.engine import MultiStageEventSystem
from repro.flow import FlowConfig
from repro.log import AuditSubscription, LogConfig, verify_exactly_once
from repro.sim.network import FaultPlan

SCHEMA = ("class", "symbol", "price")
SEEDS = [7, 11, 23]


class Quote:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


def make_system(seed, **kwargs):
    defaults = dict(
        stage_sizes=(4, 2, 1),
        seed=seed,
        ttl=30.0,
        tracing=True,
        flow=FlowConfig(),
        log=LogConfig(),
    )
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.advertise("Quote", schema=SCHEMA)
    system.drain()
    return system


def pinned_subscriber(system, name):
    subscriber = system.create_subscriber(name)
    got = []
    home = system.hierarchy.stage1_nodes()[0]
    subscriptions = system.subscribe(
        subscriber,
        'symbol = "Foo"',
        event_class="Quote",
        handler=lambda e, m, s: got.append(m["price"]),
        at_node=home,
    )
    system.drain()
    return subscriber, subscriptions[0], got


def publish_range(system, publisher, start, stop, dt=0.01):
    for i in range(start, stop):
        publisher.publish(Quote("Foo", float(i)), event_class="Quote")
        system.run_for(dt)


def run_crash_recovery(seed, loss_during_crash=0.0):
    """Crash the subscriber's stage-2 ancestor mid-run; restart;
    auto-recovery replays from its last acked offset."""
    system = make_system(seed)
    publisher = system.create_publisher("quotes")
    subscriber, subscription, got = pinned_subscriber(system, f"alice-{seed}")
    mid = system.hierarchy.stage1_nodes()[0].parent

    publish_range(system, publisher, 0, 15)
    system.drain()
    assert len(got) == 15

    crash_at = system.sim.now
    mid.crash()
    if loss_during_crash:
        plan = FaultPlan(seed)
        plan.add_window(
            crash_at, crash_at + 2.0, loss=loss_during_crash
        )
        system.network.install_faults(plan)
    publish_range(system, publisher, 15, 30)
    system.run_for(1.0)
    # Nothing reached the subscriber through the dead broker.
    assert len(got) == 15

    mid.restart()
    system.run_for(8.0)
    recovered_at = system.sim.now
    return system, subscriber, subscription, got, mid, (crash_at, recovered_at)


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_crash_recovery_replays_missed_events(seed):
    system, subscriber, subscription, got, mid, window = run_crash_recovery(seed)

    # The replay closed the hole: every event delivered exactly once.
    assert sorted(got) == [float(i) for i in range(30)]
    assert len(got) == 30
    # Recovery really was a replay (the root re-sent logged events, the
    # restarted broker deduped the ones it had already processed).
    assert system.root.counters.replay_events_sent > 0
    assert mid.log.next_offset == 30

    report = verify_exactly_once(
        system.root.log,
        system.tracer,
        [AuditSubscription(subscriber.name, subscription.filter)],
        fault_windows=[window],
    )
    assert report.clean, report.render()
    assert report.expected == 30
    assert report.delivered == 30
    assert report.findings == []


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_crash_recovery_with_lossy_wire_audits_clean(seed):
    """Wire loss overlapping the crash: deliveries may legitimately gap
    inside the fault window, but the audit stays clean outside it."""
    system, subscriber, subscription, got, mid, window = run_crash_recovery(
        seed, loss_during_crash=0.15
    )
    report = verify_exactly_once(
        system.root.log,
        system.tracer,
        [AuditSubscription(subscriber.name, subscription.filter)],
        fault_windows=[window],
    )
    assert report.clean, report.render()
    # And no duplicates anywhere — loss never excuses a double delivery
    # here because replay dedup is content-addressed, not fault-masked.
    assert report.duplicates == []


def test_chaos_recovery_resumes_from_last_acked_offset():
    """With a small rewind the restarted broker asks only for the tail
    after its last acked (root-assigned) offset, not the whole log."""
    system = make_system(7, log=LogConfig(recovery_rewind=4))
    publisher = system.create_publisher("quotes")
    subscriber, subscription, got = pinned_subscriber(system, "alice")
    mid = system.hierarchy.stage1_nodes()[0].parent

    publish_range(system, publisher, 0, 20)
    system.drain()
    acked = mid.log.max_source_offset
    assert acked == 19

    mid.crash()
    publish_range(system, publisher, 20, 30)
    system.run_for(1.0)
    mid.restart()
    system.run_for(8.0)

    assert sorted(got) == [float(i) for i in range(30)]
    # last acked (19) - rewind (4) -> replay starts at offset 16: the
    # root re-sent the 14 records from 16..29, nowhere near all 30.
    assert system.root.counters.replay_events_sent == 14
    # The rewound overlap (16..19) was already logged: deduped, not
    # re-delivered.
    assert mid.counters.replay_dupes_discarded == 4


def test_chaos_scheduled_crash_via_fault_plan():
    """Same invariant with the crash injected by the fault plan rather
    than called by hand (plan-driven chaos is what the bench gate runs)."""
    system = make_system(11)
    publisher = system.create_publisher("quotes")
    subscriber, subscription, got = pinned_subscriber(system, "alice")
    mid = system.hierarchy.stage1_nodes()[0].parent

    plan = FaultPlan(11)
    plan.add_crash(mid, at=0.2, duration=0.5)
    system.network.install_faults(plan)

    publish_range(system, publisher, 0, 40, dt=0.02)
    system.run_for(8.0)

    assert sorted(got) == [float(i) for i in range(40)]
    report = verify_exactly_once(
        system.root.log,
        system.tracer,
        [AuditSubscription(subscriber.name, subscription.filter)],
        fault_windows=[(0.2, 0.7)],
    )
    assert report.clean, report.render()
