"""Routing-decision cache invalidation soundness at the overlay level.

The cache memoizes broker match results per event fingerprint, so every
table mutation path must flush it.  These tests deliberately warm the
memo with repeated publishes of the *same* event shape and then mutate
the tables through each paper mechanism — explicit unsubscribe, lease
expiry (3xTTL soft-state decay, §4.3), covering-merge compaction
rebuilds — asserting deliveries reflect the new table state, never the
stale memo.
"""

from collections import Counter

from repro.core.engine import MultiStageEventSystem

SCHEMA = ("class", "symbol", "price")


class Quote:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


def make_system(**kwargs):
    defaults = dict(stage_sizes=(4, 2, 1), seed=3, ttl=10.0, cache=True)
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.advertise("Quote", schema=SCHEMA)
    system.drain()
    return system


def add_subscriber(system, name, text, deliveries):
    subscriber = system.create_subscriber(name)
    subs = system.subscribe(
        subscriber,
        text,
        event_class="Quote",
        handler=lambda e, m, s: deliveries.update([name]),
    )
    system.drain()
    return subscriber, subs[0]


def publish_quote(system, publisher, symbol="A", price=5.0, times=1):
    for _ in range(times):
        publisher.publish(Quote(symbol, price), event_class="Quote")
    system.drain()


def broker_cache_totals(system):
    hits = invalidations = 0
    for node in system.hierarchy.nodes():
        hits += node.counters.cache.hits
        invalidations += node.counters.cache.invalidations
    return hits, invalidations


def test_unsubscribe_invalidates_cached_route():
    deliveries = Counter()
    system = make_system()
    _, sub_a = add_subscriber(
        system, "a", 'class = "Quote" and symbol = "A"', deliveries
    )
    keeper, _ = add_subscriber(
        system, "b", 'class = "Quote" and symbol = "A"', deliveries
    )
    publisher = system.create_publisher()

    publish_quote(system, publisher, times=3)  # warm the broker memos
    hits, _ = broker_cache_totals(system)
    assert hits > 0, "repeated publishes must hit the cache"
    assert deliveries == Counter({"a": 3, "b": 3})

    subscriber_a = next(s for s in system.subscribers if s.name == "a")
    subscriber_a.unsubscribe(sub_a.subscription_id)
    system.drain()
    _, invalidations = broker_cache_totals(system)
    assert invalidations > 0, "unsubscribe must flush broker memos"

    publish_quote(system, publisher, times=2)
    assert deliveries["a"] == 3, "stale cached route delivered after unsubscribe"
    assert deliveries["b"] == 5, "surviving subscription must keep receiving"
    assert keeper.counters.events_delivered == 5


def test_lease_expiry_invalidates_cached_route():
    deliveries = Counter()
    system = make_system(ttl=10.0)
    subscriber, _ = add_subscriber(
        system, "a", 'class = "Quote" and symbol = "A"', deliveries
    )
    publisher = system.create_publisher()
    publish_quote(system, publisher, times=3)
    assert deliveries["a"] == 3

    system.start_maintenance()
    subscriber.stop_maintenance()  # the subscriber "crashes": no renewals
    # Decay cascades one stage at a time; allow ~3xTTL per broker stage.
    system.run_for(10 * 12)
    assert sum(len(n.table) for n in system.hierarchy.nodes()) == 0
    _, invalidations = broker_cache_totals(system)
    assert invalidations > 0, "purge must flush broker memos"

    for _ in range(2):
        publisher.publish(Quote("A", 5.0), event_class="Quote")
    system.run_for(1)  # drain() is unsafe while maintenance tasks run
    assert deliveries["a"] == 3, "stale cached route delivered after expiry"
    system.stop_maintenance()


def test_new_subscription_overrides_cached_negative_result():
    """The classic stale-negative bug: an event shape cached as
    matching-nobody must reach a subscriber who joins afterwards."""
    deliveries = Counter()
    system = make_system()
    # Someone must hold a filter so brokers route and memoize at all.
    add_subscriber(system, "other", 'class = "Quote" and symbol = "Z"', deliveries)
    publisher = system.create_publisher()
    publish_quote(system, publisher, symbol="A", times=3)  # cached: no match
    assert not deliveries

    add_subscriber(system, "late", 'class = "Quote" and symbol = "A"', deliveries)
    publish_quote(system, publisher, symbol="A", times=2)
    assert deliveries == Counter({"late": 2})


def test_compaction_rebuild_keeps_cache_honest():
    """With covering-merge compaction on, each rebuild swaps the effective
    engine; cached decisions from the old engine must not survive."""
    deliveries = Counter()
    system = make_system(stage_sizes=(2, 2, 1), seed=8, compact=True)
    publisher = system.create_publisher()

    add_subscriber(
        system, "s0", 'class = "Quote" and symbol = "DEF" and price < 10',
        deliveries,
    )
    publish_quote(system, publisher, symbol="DEF", price=10.5, times=3)
    assert not deliveries  # 10.5 not < 10; brokers memoized the decision

    # A wider filter arrives: compacted engines rebuild, memos must flush.
    add_subscriber(
        system, "s1", 'class = "Quote" and symbol = "DEF" and price < 13',
        deliveries,
    )
    publish_quote(system, publisher, symbol="DEF", price=10.5, times=2)
    assert deliveries == Counter({"s1": 2})

    # And the narrower original still works alongside, post-rebuild.
    publish_quote(system, publisher, symbol="DEF", price=9.0, times=1)
    assert deliveries == Counter({"s1": 3, "s0": 1})
