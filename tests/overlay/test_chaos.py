"""Control-plane reliability under faults: channel semantics, retransmission,
crash recovery, and the partition -> publish -> heal differential.

All test names carry the ``chaos`` marker-by-name so CI can run
``pytest -k chaos`` as a fast fault-path smoke job.
"""

import pytest

from repro.core.engine import MultiStageEventSystem
from repro.experiments.chaos import ChaosConfig, run_chaos
from repro.overlay.channel import DEFAULT_RTO, ReliableReceiver, ReliableSender
from repro.overlay.invariants import covering_violations
from repro.overlay.messages import Ack, ChannelReset, Sequenced
from repro.sim.kernel import Process, Simulator
from repro.sim.network import FaultPlan

SCHEMA = ("class", "price", "symbol")
#: Stage 1 keeps the full schema, stage 2 keeps (class, price), the root
#: keeps class only (same layout as the aggregation tests).
PREFIXES = (3, 3, 2, 1)


class Quote:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


def make_system(**kwargs):
    defaults = dict(stage_sizes=(4, 2, 1), seed=5, ttl=10.0)
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.advertise("Quote", schema=SCHEMA, stage_prefixes=PREFIXES)
    system.drain()
    return system


def pinned_subscribe(system, name, text, traces=None, drain=True):
    """Subscribe at the first stage-1 node, recording deliveries."""
    subscriber = system.create_subscriber(name)
    handler = None
    if traces is not None:
        log = traces.setdefault(name, [])

        def handler(event, metadata, subscription):
            properties = getattr(metadata, "properties", metadata)
            log.append((properties["symbol"], properties["price"]))

    home = system.hierarchy.stage1_nodes()[0]
    system.subscribe(
        subscriber, text, event_class="Quote", handler=handler, at_node=home
    )
    if drain:
        system.drain()
    return subscriber, home


# ----------------------------------------------------------------------
# Reliable channel unit semantics
# ----------------------------------------------------------------------


class _Wire:
    def __init__(self):
        self.frames = []
        self.retransmits = 0

    def send(self, frame):
        self.frames.append(frame)

    def on_retransmit(self, count):
        self.retransmits += count


def test_chaos_channel_delivers_reordered_frames_in_order():
    receiver = ReliableReceiver()
    delivered = []
    f0 = Sequenced(0, 0, "a")
    f1 = Sequenced(0, 1, "b")
    f2 = Sequenced(0, 2, "c")
    ack = receiver.on_frame(f0, delivered.append)
    assert ack == Ack(0, 0)
    # seq 2 arrives before seq 1: buffered, not delivered.
    ack = receiver.on_frame(f2, delivered.append)
    assert ack == Ack(0, 0)
    assert delivered == ["a"]
    # seq 1 releases both.
    ack = receiver.on_frame(f1, delivered.append)
    assert ack == Ack(0, 2)
    assert delivered == ["a", "b", "c"]


def test_chaos_channel_discards_duplicates_and_reacks():
    receiver = ReliableReceiver()
    delivered = []
    receiver.on_frame(Sequenced(0, 0, "a"), delivered.append)
    ack = receiver.on_frame(Sequenced(0, 0, "a"), delivered.append)
    assert delivered == ["a"]
    assert receiver.dups_discarded == 1
    assert ack == Ack(0, 0)  # duplicate still re-acked (ack was lost)


def test_chaos_channel_new_epoch_resets_numbering():
    receiver = ReliableReceiver()
    delivered = []
    receiver.on_frame(Sequenced(0, 0, "old"), delivered.append)
    # Sender restarted: epoch 1 starts over at seq 0.
    ack = receiver.on_frame(Sequenced(1, 0, "new"), delivered.append)
    assert delivered == ["old", "new"]
    assert ack == Ack(1, 0)
    # Stragglers from the dead epoch are dropped, not delivered.
    ack = receiver.on_frame(Sequenced(0, 1, "stale"), delivered.append)
    assert delivered == ["old", "new"]
    assert ack.epoch == 1


def test_chaos_channel_fresh_receiver_adopts_midstream():
    # A receiver that lost its state (restart) sees seq 7 first: it adopts
    # the position instead of waiting forever for seq 0.
    receiver = ReliableReceiver()
    delivered = []
    ack = receiver.on_frame(Sequenced(3, 7, "x"), delivered.append)
    assert delivered == ["x"]
    assert ack == Ack(3, 7)


def test_chaos_sender_retransmits_until_acked():
    sim = Simulator()
    wire = _Wire()
    sender = ReliableSender(sim, wire.send, wire.on_retransmit)
    sender.send("payload")
    assert len(wire.frames) == 1
    # No ack: the frame goes out again after each (doubling) timeout.
    sim.run(until=DEFAULT_RTO * 3.5)
    assert len(wire.frames) == 3
    assert wire.retransmits == 2
    assert not sender.idle
    sender.on_ack(Ack(0, 0))
    assert sender.idle
    sim.run()
    assert len(wire.frames) == 3  # ack disarmed the timer


def test_chaos_stale_timer_from_dead_epoch_is_inert():
    """Regression: a retransmit timer armed in epoch N must do nothing
    when it fires after a reset bumped the channel to epoch N+1 — and
    must not null out the live epoch's timer reference, which would let
    the live channel arm a second timer and run two concurrent
    retransmit loops."""
    sim = Simulator()
    wire = _Wire()
    sender = ReliableSender(sim, wire.send, wire.on_retransmit)
    sender.send("old")  # arms the epoch-0 timer
    sender.reset()  # epoch 1: cancels the timer...
    sender.send("new")  # live epoch-1 frame + fresh timer
    live_timer = sender._timer
    frames_before = len(wire.frames)
    # ...but simulate the race where the stale callback still runs (it
    # escaped cancellation in the same instant as the reset).
    sender._on_timeout(0)
    assert len(wire.frames) == frames_before  # no dead-epoch retransmit
    assert wire.retransmits == 0
    assert sender._timer is live_timer  # live timer reference untouched
    # The live channel still retransmits normally afterwards.
    sim.run(until=DEFAULT_RTO * 1.5)
    assert wire.retransmits == 1
    assert wire.frames[-1].epoch == 1


def test_chaos_peer_channel_state_keyed_by_stable_name():
    """Regression: ``_peer_incarnations`` / ``_receivers`` used to key by
    ``id(sender)``; after the old peer object was garbage-collected a
    recycled id could inherit its incarnation and silently discard the
    new peer's legitimate ChannelReset.  Channel history must follow the
    stable process *name* (unique per network), not the object."""
    system = make_system()
    pinned_subscribe(system, "alice", 'class = "Quote" and price < 10')
    home = system.hierarchy.stage1_nodes()[0]
    parent = home.parent
    # The reliable control traffic above left receiver state at the
    # parent, keyed by the child's name.
    assert home.name in parent._receivers
    # A reset from the child is recorded under its name and drops the
    # channel state.
    parent.receive(ChannelReset(1), home)
    assert parent._peer_incarnations[home.name] == 1
    assert home.name not in parent._receivers
    # The same identity re-announcing through a *different* object (the
    # restarted process, old object gone): a duplicate of incarnation 1
    # is recognized as stale and ignored...
    reborn = Process(system.sim, home.name)
    parent.receive(ChannelReset(1), reborn)
    assert parent._peer_incarnations[home.name] == 1
    # ...while a newer incarnation from it applies.
    parent.receive(ChannelReset(2), reborn)
    assert parent._peer_incarnations[home.name] == 2


def test_chaos_sender_reset_opens_new_epoch():
    sim = Simulator()
    wire = _Wire()
    sender = ReliableSender(sim, wire.send, wire.on_retransmit)
    sender.send("a")
    sender.reset()
    sender.send("b")
    assert wire.frames[-1].epoch == 1
    assert wire.frames[-1].seq == 0
    # Acks for the dead epoch are ignored.
    sender.on_ack(Ack(0, 5))
    assert not sender.idle
    sender.on_ack(Ack(1, 0))
    assert sender.idle
    sim.run()


# ----------------------------------------------------------------------
# Overlay under injected faults
# ----------------------------------------------------------------------


def test_chaos_lost_reqinsert_is_retransmitted():
    """Total loss on the uplink during the join: the reliable channel
    must deliver the req-Insert once the window closes."""
    system = make_system()
    home = system.hierarchy.stage1_nodes()[0]
    plan = FaultPlan(seed=1)
    plan.add_window(0.0, 0.5, loss=1.0, links=[(home, home.parent)])
    system.network.install_faults(plan)

    pinned_subscribe(system, "alice", 'class = "Quote" and price < 10')

    assert home.counters.control_retransmits > 0
    assert covering_violations(system.hierarchy, system.sim.now) == []
    # And the filter actually routes: a matching event arrives.
    traces = {}
    pinned_subscribe(system, "bob", 'class = "Quote" and price < 10', traces)
    publisher = system.create_publisher("feed")
    publisher.publish(Quote("X", 5), event_class="Quote")
    system.drain()
    assert traces["bob"] == [("X", 5)]


def test_chaos_unreliable_baseline_loses_the_subscription():
    """The ablation control: with reliable=False the same loss window
    leaves a covering hole (this is the bug class the channel fixes)."""
    system = make_system(reliable=False)
    home = system.hierarchy.stage1_nodes()[0]
    plan = FaultPlan(seed=1)
    plan.add_window(0.0, 0.5, loss=1.0, links=[(home, home.parent)])
    system.network.install_faults(plan)

    pinned_subscribe(system, "alice", 'class = "Quote" and price < 10')

    assert covering_violations(system.hierarchy, system.sim.now) != []


def test_chaos_duplicated_control_frames_apply_once():
    """100% duplication on the uplink: duplicate frames are discarded and
    the routing state is exactly what a clean run produces."""
    system = make_system()
    home = system.hierarchy.stage1_nodes()[0]
    plan = FaultPlan(seed=2)
    plan.add_window(0.0, 5.0, duplicate=1.0, links=[(home, home.parent)])
    system.network.install_faults(plan)

    pinned_subscribe(system, "alice", 'class = "Quote" and price < 10')

    assert home.parent.counters.control_dups_discarded > 0
    routed = [
        f
        for f, ids in home.parent.table.entries()
        if any(d is home for d in ids)
    ]
    assert len(routed) == 1  # applied once, not once per copy
    assert covering_violations(system.hierarchy, system.sim.now) == []


def test_chaos_broker_crash_recovery_rebuilds_tables():
    """A crashed stage-2 broker loses all soft state; children's
    refresh-or-restore renewals (kicked by ChannelReset) rebuild it."""
    traces = {}
    system = make_system()
    _, home = pinned_subscribe(
        system, "alice", 'class = "Quote" and price < 10', traces
    )
    victim = home.parent
    assert victim.stage == 2
    system.start_maintenance()
    system.run_for(1.0)

    victim.crash()
    assert len(victim.table) == 0
    system.run_for(2.0)
    victim.restart()
    # ChannelReset -> children renew immediately: recovery well inside a
    # renewal period, not 3xTTL.
    system.run_for(1.0)

    assert len(victim.table) > 0
    assert covering_violations(system.hierarchy, system.sim.now) == []
    publisher = system.create_publisher("feed")
    publisher.publish(Quote("X", 5), event_class="Quote")
    system.run_for(1.0)
    assert traces["alice"] == [("X", 5)]
    system.stop_maintenance()


def test_chaos_partition_publish_heal_differential():
    """Satellite gate: partition -> publish -> heal under aggregate=True.

    The partition outlives the 3xTTL purge, so the parent really drops
    the home's filters and the heal-side recovery is refresh-or-restore,
    not just lease refresh.  Post-heal delivery traces must match a
    fault-free run event for event, and the parent's covering invariant
    is re-checked against the child's live lease table.
    """
    events = [("HOT", 3), ("HOT", 15), ("COLD", 4), ("HOT", 7), ("COLD", 9)]
    subscriptions = [
        ("alice", 'class = "Quote" and price < 10'),
        ("bob", 'class = "Quote" and price < 5 and symbol = "HOT"'),
    ]

    def run(partitioned):
        system = make_system(aggregate=True)
        traces = {}
        home = None
        for name, text in subscriptions:
            _, home = pinned_subscribe(system, name, text, traces)
        publisher = system.create_publisher("feed")
        system.start_maintenance()
        system.run_for(1.0)

        def publish_all():
            for symbol, price in events:
                publisher.publish(Quote(symbol, price), event_class="Quote")
                system.run_for(0.1)

        publish_all()  # pre phase, both runs identical
        if partitioned:
            system.network.partition(home, home.parent)
        publish_all()  # during phase, lost in the partitioned run
        system.run_for(35.0)  # > 3xTTL: the parent purges the home's forms
        if partitioned:
            assert covering_violations(system.hierarchy, system.sim.now) != []
            system.network.heal(home, home.parent)
        system.run_for(30.0)  # renewals restore + re-propagate
        marks = {name: len(t) for name, t in traces.items()}
        publish_all()  # post phase, both runs identical again
        system.run_for(1.0)
        system.stop_maintenance()
        post = {name: tuple(t[marks[name]:]) for name, t in traces.items()}
        return system, home, traces, post

    _, _, _, clean_post = run(partitioned=False)
    system, home, traces, healed_post = run(partitioned=True)

    # Post-heal delivery traces match the fault-free run exactly.
    assert healed_post == clean_post
    assert all(len(t) > 0 for t in clean_post.values())
    # The parent's table covers the home's live leases again.
    assert covering_violations(system.hierarchy, system.sim.now) == []
    live_forms = [
        f
        for f, ids in home.parent.table.entries()
        if any(d is home for d in ids)
    ]
    assert live_forms  # refresh-or-restore actually reinstalled them


def test_chaos_experiment_gate_smoke():
    """One tiny end-to-end chaos run must satisfy the acceptance gate."""
    result = run_chaos(
        ChaosConfig(n_subscribers=8, events_per_phase=10, seed=13)
    )
    assert result.pre_ratio == 1.0
    assert result.post_ratio == 1.0
    assert result.exactly_once
    assert result.converged
    assert result.dropped_messages > 0


def test_chaos_zero_delivery_run_fails_loudly():
    """Satellite gate: a chaos run that delivers nothing must raise, not
    sail through the ratio gates on an all-zero latency summary."""
    with pytest.raises(RuntimeError, match="zero events"):
        run_chaos(ChaosConfig(n_subscribers=0, events_per_phase=5))


@pytest.mark.parametrize("seed", [3, 9])
def test_chaos_runs_are_deterministic(seed):
    """Two chaos runs with one seed produce byte-identical measurements —
    including the causal trace dump and the sampled stage series."""

    def measure():
        r = run_chaos(
            ChaosConfig(
                n_subscribers=6, events_per_phase=8, seed=seed, tracing=True
            )
        )
        return (
            r.pre_ratio,
            r.during_ratio,
            r.post_ratio,
            r.convergence_time,
            r.control_retransmits,
            r.dropped_messages,
            r.duplicated_messages,
            r.tracer.dump(),
            tuple(r.sampler.times),
            tuple(
                (name, tuple(series))
                for name, series in r.sampler.node_series("events_per_s")
            ),
        )

    assert measure() == measure()
