"""Unit tests for hierarchy construction."""

import pytest

from repro.overlay.hierarchy import Hierarchy, build_hierarchy
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry


def build(stage_sizes, **kwargs):
    sim = Simulator()
    network = Network(sim, default_latency=0.001)
    return build_hierarchy(
        sim, network, stage_sizes, rngs=RngRegistry(0), **kwargs
    )


def test_paper_configuration_shape():
    hierarchy = build([100, 10, 1])
    assert len(hierarchy.nodes(1)) == 100
    assert len(hierarchy.nodes(2)) == 10
    assert len(hierarchy.nodes(3)) == 1
    assert hierarchy.top_stage == 3
    assert hierarchy.root.stage == 3


def test_names_follow_paper_convention():
    hierarchy = build([3, 1])
    assert [n.name for n in hierarchy.nodes(1)] == ["N1.1", "N1.2", "N1.3"]
    assert hierarchy.root.name == "N2.1"


def test_round_robin_balance():
    hierarchy = build([10, 2, 1])
    parents = [child.parent for child in hierarchy.nodes(1)]
    counts = {p.name: parents.count(p) for p in hierarchy.nodes(2)}
    assert set(counts.values()) == {5}


def test_parent_child_links_consistent():
    hierarchy = build([6, 3, 1])
    for stage in (1, 2):
        for node in hierarchy.nodes(stage):
            assert node in node.parent.broker_children
            assert node.parent.stage == node.stage + 1
    assert hierarchy.root.parent is None


def test_nodes_without_stage_returns_all_top_down():
    hierarchy = build([4, 2, 1])
    names = [n.name for n in hierarchy.nodes()]
    assert names[0] == "N3.1"
    assert len(names) == 7


def test_single_stage_hierarchy():
    hierarchy = build([1])
    assert hierarchy.root.stage == 1
    assert hierarchy.root.broker_children == []


def test_top_stage_must_be_single_node():
    with pytest.raises(ValueError):
        build([4, 2])
    with pytest.raises(ValueError):
        Hierarchy({1: []})


def test_empty_and_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        build([])
    with pytest.raises(ValueError):
        build([0, 1])


def test_network_links_created():
    sim = Simulator()
    network = Network(sim, default_latency=None)
    hierarchy = build_hierarchy(sim, network, [4, 1], rngs=RngRegistry(0))
    for child in hierarchy.nodes(1):
        assert network.link(child, hierarchy.root) is not None
        assert network.link(hierarchy.root, child) is not None


def test_maintenance_start_stop():
    hierarchy = build([2, 1])
    hierarchy.start_maintenance()
    assert all(n._maintenance_handles for n in hierarchy.nodes())
    hierarchy.stop_maintenance()
    assert all(not n._maintenance_handles for n in hierarchy.nodes())


def test_attach_child_stage_mismatch_rejected():
    hierarchy = build([2, 1])
    stage1 = hierarchy.nodes(1)[0]
    with pytest.raises(ValueError):
        stage1.attach_child(hierarchy.root)


def test_repr_shows_shape():
    assert "{1: 4, 2: 2, 3: 1}" in repr(build([4, 2, 1]))
