"""Covering-based uplink aggregation: suppression, demotion, uncover.

The protocol under test (§4, Definition 2 / Proposition 1): a broker
propagates only the *maximal* weakened forms of its stored filters.  A
new form covered by a propagated one is suppressed; a new form covering
propagated ones demotes them (withdrawn only after the replacement
``req-Insert``); the death of a cover re-propagates its still-live
covered forms *before* the withdraw, so the parent's table covers the
union of the child's filters at every instant.  The differential tests
assert the observable consequence: per-subscriber delivery traces are
identical with aggregation on and off — including across a lease expiry
of the covering subscription.
"""

from repro.core.engine import MultiStageEventSystem

SCHEMA = ("class", "price", "symbol")
#: Stage 1 keeps the full schema, stage 2 keeps (class, price), the root
#: keeps class only — so price bounds survive to the stage-2 forms and
#: covering between them is non-trivial.
PREFIXES = (3, 3, 2, 1)

BROAD = 'class = "Quote" and price < 20'
NARROW = 'class = "Quote" and price < 10 and symbol = "DEF"'


class Quote:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


def make_system(**kwargs):
    defaults = dict(stage_sizes=(2, 2, 1), seed=5, ttl=10.0)
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.advertise("Quote", schema=SCHEMA, stage_prefixes=PREFIXES)
    system.drain()
    return system


def pinned_subscribe(system, name, text, traces=None):
    """Subscribe at the first stage-1 node, recording deliveries."""
    subscriber = system.create_subscriber(name)
    handler = None
    if traces is not None:
        log = traces.setdefault(name, [])

        def handler(event, metadata, subscription):
            properties = getattr(metadata, "properties", metadata)
            log.append((properties["symbol"], properties["price"]))

    home = system.hierarchy.stage1_nodes()[0]
    subscription = system.subscribe(
        subscriber, text, event_class="Quote", handler=handler, at_node=home
    )[0]
    system.drain()
    return subscriber, subscription, home


def stage2_filters_from(home):
    """Filters the home's parent routes to this home."""
    return [
        f
        for f, ids in home.parent.table.entries()
        if any(d is home for d in ids)
    ]


def test_covered_propagation_is_suppressed():
    system = make_system()
    _, _, home = pinned_subscribe(system, "broad", BROAD)
    pinned_subscribe(system, "narrow", NARROW)

    up = stage2_filters_from(home)
    assert [str(f) for f in up] == ["(class, 'Quote', =) (price, 20, <)"]
    assert home.counters.propagations_suppressed == 1
    assert home.counters.propagated_filters == 1
    assert len(home.table) == 2  # both stored locally, exact at stage 1


def test_new_cover_demotes_propagated_forms():
    system = make_system()
    # Narrow first: its form is propagated, then the broad cover arrives.
    _, _, home = pinned_subscribe(system, "narrow", NARROW)
    assert len(stage2_filters_from(home)) == 1
    pinned_subscribe(system, "broad", BROAD)

    up = stage2_filters_from(home)
    assert [str(f) for f in up] == ["(class, 'Quote', =) (price, 20, <)"]
    assert home.counters.withdrawals_sent == 1
    assert home.counters.propagated_filters == 1


def test_uncover_repropagation_on_unsubscribe():
    system = make_system()
    traces = {}
    broad_sub, broad, home = pinned_subscribe(system, "broad", BROAD, traces)
    pinned_subscribe(system, "narrow", NARROW, traces)

    broad_sub.unsubscribe(broad.subscription_id)
    system.drain()

    # The cover is gone; the covered form must have been re-propagated.
    up = stage2_filters_from(home)
    assert [str(f) for f in up] == ["(class, 'Quote', =) (price, 10, <)"]
    assert home.counters.uncover_repropagations == 1

    # Events still reach the surviving narrow subscriber.
    publisher = system.create_publisher()
    publisher.publish(Quote("DEF", 5.0), event_class="Quote")
    publisher.publish(Quote("DEF", 15.0), event_class="Quote")
    system.drain()
    assert traces["narrow"] == [("DEF", 5.0)]
    assert traces["broad"] == []


def run_expiry_scenario(aggregate):
    """A cover's lease expires while the covered filter stays live."""
    system = make_system(aggregate=aggregate)
    traces = {}
    broad_sub, _, home = pinned_subscribe(system, "broad", BROAD, traces)
    pinned_subscribe(system, "narrow", NARROW, traces)

    publisher = system.create_publisher()

    def publish_round(tag):
        # The DEF price stays under narrow's ``price < 10`` bound in
        # every round, so deliveries after the expiry are observable.
        for symbol, price in (
            ("DEF", 5.0 + 0.5 * tag),
            ("DEF", 15.0 + tag),
            ("XYZ", 5.0 + tag),
        ):
            publisher.publish(Quote(symbol, price), event_class="Quote")

    system.start_maintenance()
    publish_round(0)
    system.run_for(6.0)
    # The broad subscriber silently dies: no more renewals, so its lease
    # at the home lapses at 3x TTL while the narrow one keeps renewing.
    broad_sub.stop_maintenance()
    for round_index in range(1, 7):
        publish_round(round_index)
        system.run_for(10.0)
    system.stop_maintenance()
    system.drain()
    return system, home, traces


def test_lease_expiry_of_cover_keeps_traces_identical():
    system_on, home_on, traces_on = run_expiry_scenario(aggregate=True)
    system_off, home_off, traces_off = run_expiry_scenario(aggregate=False)

    # The expiry really happened, and uncover re-propagation ran.
    assert all(
        "price, 20" not in str(f) for f in home_on.table.filters()
    ), "the broad filter must have been purged from the home"
    assert home_on.counters.uncover_repropagations == 1
    up = stage2_filters_from(home_on)
    assert [str(f) for f in up] == ["(class, 'Quote', =) (price, 10, <)"]

    # Byte-identical per-subscriber delivery traces across the expiry.
    assert traces_on == traces_off
    assert traces_on["narrow"], "narrow must keep receiving events"
    # Narrow outlives the cover: deliveries from rounds after the expiry.
    last_round_price = 5.0 + 0.5 * 6
    assert ("DEF", last_round_price) in traces_on["narrow"]


def test_aggregation_off_propagates_everything():
    system = make_system(aggregate=False)
    _, _, home = pinned_subscribe(system, "broad", BROAD)
    pinned_subscribe(system, "narrow", NARROW)

    assert len(stage2_filters_from(home)) == 2
    assert home.counters.propagations_suppressed == 0
    assert home.counters.withdrawals_sent == 0


def test_renewals_piggyback_only_propagated_forms():
    system = make_system()
    _, _, home = pinned_subscribe(system, "broad", BROAD)
    pinned_subscribe(system, "narrow", NARROW)

    sent = []
    original_send = home.network.send

    def spy(sender, receiver, message, **kwargs):
        if sender is home and receiver is home.parent:
            sent.append(message)
        return original_send(sender, receiver, message, **kwargs)

    home.network.send = spy
    try:
        home._renew_task(home.ttl)
    finally:
        home.network.send = original_send
        for handle in home._maintenance_handles.values():
            handle.cancel()
        home._maintenance_handles.clear()

    # Renewals ride the reliable channel: unwrap the Sequenced frames.
    payloads = [getattr(m, "payload", m) for m in sent]
    renewals = [m for m in payloads if hasattr(m, "items")]
    assert len(renewals) == 1
    items = renewals[0].items
    assert [str(f) for f, _ in items] == ["(class, 'Quote', =) (price, 20, <)"]
