"""Tests for covering-merge table compaction (the §4 g1-collapse)."""

from collections import Counter

from repro.core.engine import MultiStageEventSystem


class Quote:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


SCHEMA = ("class", "symbol", "price")
# Keep the price bound up to stage 2: compaction merges filters that
# share a destination set, which happens at stage >= 2 where many of one
# child's filters coexist (Example 5's g1 collapse happens upstream).
PREFIXES = (3, 3, 3, 1)


def build(compact):
    # Covering aggregation would keep the redundant price bounds from ever
    # reaching stage 2, leaving compaction nothing to merge; switch it off
    # so these tests exercise the compaction machinery in isolation.
    system = MultiStageEventSystem(
        stage_sizes=(2, 2, 1), seed=8, compact=compact, aggregate=False
    )
    system.advertise("Quote", schema=SCHEMA, stage_prefixes=PREFIXES)
    deliveries = Counter()
    # Example-5-shaped population: same symbol, different price bounds.
    for index, bound in enumerate((10.0, 11.0, 12.0, 13.0)):
        subscriber = system.create_subscriber(f"s{index}")
        system.subscribe(
            subscriber,
            f'class = "Quote" and symbol = "DEF" and price < {bound}',
            handler=lambda e, m, s, _i=index: deliveries.update([(_i, m["price"])]),
        )
        system.drain()
    return system, deliveries


def publish_stream(system):
    publisher = system.create_publisher()
    for price in (9.0, 10.5, 11.5, 12.5, 14.0):
        publisher.publish(Quote("DEF", price), event_class="Quote")
    system.drain()


def effective_filters(system, stage):
    return sum(
        len(node._match_engine()) for node in system.hierarchy.nodes(stage)
    )


def test_compaction_reduces_stage2_filters():
    plain, _ = build(compact=False)
    compacted, _ = build(compact=True)
    publish_stream(plain)
    publish_stream(compacted)
    assert effective_filters(compacted, 2) < effective_filters(plain, 2)


def test_compaction_preserves_deliveries_exactly():
    plain, plain_deliveries = build(compact=False)
    compacted, compacted_deliveries = build(compact=True)
    publish_stream(plain)
    publish_stream(compacted)
    assert plain_deliveries == compacted_deliveries
    assert plain_deliveries  # non-trivial


def test_compacted_filter_covers_all_members():
    system, _ = build(compact=True)
    publish_stream(system)
    nodes = [
        node
        for stage in (1, 2)
        for node in system.hierarchy.nodes(stage)
        if len(node.table) > 0
    ]
    for node in nodes:
        effective = list(node._match_engine().filters())
        for original in node.table.filters():
            assert any(merged.covers(original) for merged in effective)


def test_compaction_rebuilds_after_table_changes():
    system, _ = build(compact=True)
    publish_stream(system)
    node = next(n for n in system.hierarchy.nodes(2) if len(n.table) > 0)
    before = len(node._match_engine())
    # Removing a subscriber's filter must reflect in the effective engine.
    filter_, ids = next(iter(node.table.entries()))
    node.table.remove(filter_, ids[0])
    node._table_changed()
    after = len(node._match_engine())
    assert after <= before


def test_counters_report_compacted_size():
    system, _ = build(compact=True)
    publish_stream(system)
    for stage in (1, 2, 3):
        for node in system.hierarchy.nodes(stage):
            if len(node.table) > 0:
                assert node.counters.filters_held == len(node._match_engine())
