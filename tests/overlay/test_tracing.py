"""Trace-path tests: the observable protocol events of a traced run."""

from repro.core.engine import MultiStageEventSystem


class Quote:
    def __init__(self, symbol):
        self._symbol = symbol

    def get_symbol(self):
        return self._symbol


def traced_system():
    system = MultiStageEventSystem(stage_sizes=(3, 1), seed=51, trace=True)
    system.advertise("Quote", schema=("class", "symbol"))
    return system


def test_advertisements_are_traced_per_node():
    system = traced_system()
    system.drain()
    records = system.trace.query(category="advertise")
    assert len(records) == len(system.hierarchy.nodes())


def test_join_path_is_traced():
    system = traced_system()
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, 'class = "Quote" and symbol = "A"')
    system.drain()
    inserts = system.trace.query(category="subscriber-insert")
    assert len(inserts) == 1
    joins = system.trace.query(category="joined")
    assert len(joins) == 1
    assert joins[0].details["home"].startswith("N1.")


def test_covering_redirects_are_traced():
    system = traced_system()
    for i in range(2):
        subscriber = system.create_subscriber()
        system.subscribe(subscriber, 'class = "Quote" and symbol = "HOT"')
        system.drain()
    # The second similar subscription follows a stored covering filter.
    assert system.trace.count(category="route-covering") >= 1


def test_lease_expiry_is_traced():
    system = MultiStageEventSystem(stage_sizes=(2, 1), seed=52, ttl=5.0, trace=True)
    system.advertise("Quote", schema=("class", "symbol"))
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, 'class = "Quote" and symbol = "A"')
    system.drain()
    system.start_maintenance()
    subscriber.stop_maintenance()
    system.run_for(5.0 * 12)
    assert system.trace.count(category="lease-expired") >= 1
    system.stop_maintenance()


def test_disconnect_reconnect_traced():
    system = traced_system()
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, 'class = "Quote" and symbol = "A"')
    system.drain()
    subscriber.disconnect(durable=True)
    system.drain()
    subscriber.reconnect()
    system.drain()
    assert system.trace.count(category="disconnect") == 1
    reconnects = system.trace.query(category="reconnect")
    assert len(reconnects) == 1
    assert reconnects[0].details["replayed"] == 0
