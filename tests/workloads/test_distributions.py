"""Unit tests for the seeded samplers."""

import random

import pytest

from repro.workloads.distributions import (
    CategoricalSampler,
    ZipfSampler,
    uniform_sampler,
)


class TestCategorical:
    def test_respects_weights(self):
        rng = random.Random(1)
        sampler = CategoricalSampler(["hot", "cold"], [0.99, 0.01])
        draws = sampler.sample_many(rng, 500)
        assert draws.count("hot") > 450

    def test_zero_weight_never_drawn(self):
        rng = random.Random(1)
        sampler = CategoricalSampler(["a", "b"], [1.0, 0.0])
        assert set(sampler.sample_many(rng, 200)) == {"a"}

    def test_deterministic_given_seed(self):
        sampler = CategoricalSampler(["a", "b", "c"], [1, 2, 3])
        first = sampler.sample_many(random.Random(5), 20)
        second = sampler.sample_many(random.Random(5), 20)
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError):
            CategoricalSampler([], [])
        with pytest.raises(ValueError):
            CategoricalSampler(["a"], [1, 2])
        with pytest.raises(ValueError):
            CategoricalSampler(["a"], [-1])
        with pytest.raises(ValueError):
            CategoricalSampler(["a", "b"], [0, 0])

    def test_len(self):
        assert len(CategoricalSampler(["a", "b"], [1, 1])) == 2


class TestZipf:
    def test_rank_one_is_most_popular(self):
        rng = random.Random(2)
        sampler = ZipfSampler(list(range(50)), exponent=1.0)
        draws = sampler.sample_many(rng, 2000)
        counts = [draws.count(i) for i in range(5)]
        assert counts[0] > counts[1] > counts[4]

    def test_zero_exponent_is_roughly_uniform(self):
        rng = random.Random(3)
        sampler = ZipfSampler(["a", "b", "c", "d"], exponent=0.0)
        draws = sampler.sample_many(rng, 4000)
        for item in "abcd":
            assert 800 < draws.count(item) < 1200

    def test_higher_exponent_is_more_skewed(self):
        rng1, rng2 = random.Random(4), random.Random(4)
        mild = ZipfSampler(list(range(20)), exponent=0.5)
        steep = ZipfSampler(list(range(20)), exponent=2.0)
        mild_top = mild.sample_many(rng1, 1000).count(0)
        steep_top = steep.sample_many(rng2, 1000).count(0)
        assert steep_top > mild_top

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(["a"], exponent=-1)


def test_uniform_sampler_helper():
    rng = random.Random(6)
    sampler = uniform_sampler(["x", "y"])
    draws = sampler.sample_many(rng, 1000)
    assert 400 < draws.count("x") < 600
