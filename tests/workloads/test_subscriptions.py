"""Unit tests for the generic subscription generators."""

import random

import pytest

from repro.core.weakening import merge_covering
from repro.filters.standard import wildcard_attributes
from repro.workloads.subscriptions import SubscriptionGenerator

SCHEMA = [("region", 3), ("category", 5)]


@pytest.fixture()
def generator():
    return SubscriptionGenerator(SCHEMA, numeric_attribute="price")


def test_attributes(generator):
    assert generator.attributes == ["region", "category", "price"]


def test_random_filter_shape(generator):
    f = generator.random_filter(random.Random(1))
    assert f.attributes() == ["region", "category", "price"]
    lo, hi = generator.numeric_range
    assert lo <= f.constraints_on("price")[0].operand <= hi


def test_clustered_population_counts(generator):
    population = generator.clustered_population(random.Random(2), 4, 5)
    assert len(population) == 20


def test_clusters_share_rigid_constraints(generator):
    population = generator.clustered_population(random.Random(3), 1, 6)
    rigid = {
        tuple(
            (c.attribute, c.operand)
            for c in f.constraints
            if c.attribute != "price"
        )
        for f in population
    }
    assert len(rigid) == 1


def test_clusters_merge_into_one_covering_filter(generator):
    """The whole point: Example 5's f1/f2 shape merges per cluster."""
    population = generator.clustered_population(random.Random(4), 3, 8)
    merged = merge_covering(population)
    assert len(merged) <= 3


def test_dissimilar_population_rarely_merges():
    # Large domains so rigid parts rarely collide by chance.
    generator = SubscriptionGenerator([("region", 50), ("category", 50)])
    population = generator.dissimilar_population(random.Random(5), 30)
    merged = merge_covering(population)
    assert len(merged) > 25


def test_with_wildcards_rate(generator):
    rng = random.Random(6)
    population = generator.dissimilar_population(rng, 100)
    wildcarded = generator.with_wildcards(rng, population, rate=0.4)
    count = sum(1 for f in wildcarded if wildcard_attributes(f))
    assert 20 < count < 60


def test_with_wildcards_targets_attribute(generator):
    rng = random.Random(7)
    population = generator.dissimilar_population(rng, 10)
    wildcarded = generator.with_wildcards(
        rng, population, rate=1.0, attribute="region"
    )
    for f in wildcarded:
        assert wildcard_attributes(f) == ["region"]


def test_empty_schema_rejected():
    with pytest.raises(ValueError):
        SubscriptionGenerator([])
