"""Unit tests for the stock and auction workloads."""

import random

import pytest

from repro.events.typed import reflect_attributes
from repro.workloads.auctions import (
    AUCTION_SCHEMA,
    Auction,
    AuctionWorkload,
    EXAMPLE6_PREFIXES,
)
from repro.workloads.stocks import STOCK_SCHEMA, Stock, StockWorkload


class TestStock:
    def test_example4_accessors(self):
        stock = Stock("Foo", 9.0, volume=100)
        assert reflect_attributes(stock) == {
            "symbol": "Foo", "price": 9.0, "volume": 100,
        }

    def test_workload_prices_stay_positive(self):
        workload = StockWorkload(random.Random(1), n_symbols=5, volatility=0.5)
        for quote in workload.quotes(500):
            assert quote.get_price() > 0

    def test_random_walk_moves_prices(self):
        workload = StockWorkload(random.Random(2), n_symbols=3)
        initial = workload.price_of("SYM000")
        workload.quotes(200)
        assert workload.price_of("SYM000") != initial

    def test_quotes_use_known_symbols(self):
        workload = StockWorkload(random.Random(3), symbols=["A", "B"])
        assert {q.get_symbol() for q in workload.quotes(50)} <= {"A", "B"}

    def test_subscription_shape(self):
        workload = StockWorkload(random.Random(4), n_symbols=5)
        f = workload.sample_subscription(random.Random(5))
        assert f.attributes() == list(STOCK_SCHEMA)
        assert f.constraints_on("class")[0].operand == "Stock"

    def test_association_schema(self):
        workload = StockWorkload(random.Random(6))
        assert workload.advertisement().schema == STOCK_SCHEMA

    def test_empty_symbols_rejected(self):
        with pytest.raises(ValueError):
            StockWorkload(random.Random(0), symbols=[])


class TestAuction:
    def test_example6_association(self):
        workload = AuctionWorkload(random.Random(1))
        assoc = workload.association()
        assert assoc.attributes_for_stage(0) == AUCTION_SCHEMA
        assert assoc.attributes_for_stage(1) == AUCTION_SCHEMA[:4]
        assert assoc.attributes_for_stage(2) == AUCTION_SCHEMA[:3]
        assert assoc.attributes_for_stage(3) == ("class",)
        assert EXAMPLE6_PREFIXES == (5, 4, 3, 1)

    def test_listings_come_from_catalog(self):
        workload = AuctionWorkload(random.Random(2))
        for listing in workload.listings(100):
            assert listing.get_capacity() >= 1
            assert listing.get_price() >= 10.0

    def test_example5_f4_literal(self):
        f4 = AuctionWorkload.example5_f4()
        assert f4.attributes() == list(AUCTION_SCHEMA)
        car = Auction("Vehicle", "Car", 1500, 8000.0)
        meta = dict(reflect_attributes(car), **{"class": "Auction"})
        assert f4.matches(meta)
        truck = Auction("Vehicle", "Truck", 1500, 8000.0)
        meta = dict(reflect_attributes(truck), **{"class": "Auction"})
        assert not f4.matches(meta)

    def test_sampled_subscription_is_consistent(self):
        workload = AuctionWorkload(random.Random(3))
        f = workload.sample_subscription(random.Random(4))
        assert f.attributes() == list(AUCTION_SCHEMA)
