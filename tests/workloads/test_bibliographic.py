"""Unit tests for the bibliographic workload (§5.2)."""

import random

import pytest

from repro.filters.standard import wildcard_attributes
from repro.workloads.bibliographic import (
    BIB_SCHEMA,
    BibliographicWorkload,
    BibRecord,
)


@pytest.fixture()
def workload():
    return BibliographicWorkload(random.Random(1), n_records=200)


def test_schema_matches_paper_generality_order(workload):
    assert workload.schema == ("year", "conference", "author", "title")


def test_association_matches_paper_stage_formats(workload):
    assoc = workload.association(stages=4)
    assert assoc.attributes_for_stage(0) == BIB_SCHEMA
    assert assoc.attributes_for_stage(1) == ("year", "conference", "author")
    assert assoc.attributes_for_stage(2) == ("year", "conference")
    assert assoc.attributes_for_stage(3) == ("year",)


def test_advertisement(workload):
    advertisement = workload.advertisement()
    assert advertisement.event_class == "BibRecord"
    assert advertisement.schema == BIB_SCHEMA


def test_records_reflect_accessors(workload):
    record = workload.records[0]
    event = record.to_property_event()
    assert set(event) == set(BIB_SCHEMA)
    assert event["title"].startswith("title-")


def test_bibrecord_accessor_convention():
    record = BibRecord(2002, "ICDCS", "eugster", "cake")
    assert record.get_year() == 2002
    assert record.get_conference() == "ICDCS"
    from repro.events.typed import reflect_attributes

    assert reflect_attributes(record) == {
        "year": 2002, "conference": "ICDCS", "author": "eugster", "title": "cake",
    }


def test_events_sample_the_record_universe(workload):
    rng = random.Random(2)
    titles = {e["title"] for e in workload.sample_events(rng, 50)}
    universe = {r.get_title() for r in workload.records}
    assert titles <= universe


def test_sampling_is_deterministic():
    a = BibliographicWorkload(random.Random(9), n_records=100)
    b = BibliographicWorkload(random.Random(9), n_records=100)
    assert a.sample_events(random.Random(1), 10) == b.sample_events(
        random.Random(1), 10
    )


def test_subscription_for_record_is_exact(workload):
    record = workload.records[0]
    f = workload.subscription_for(record)
    assert f.matches(record.to_property_event())
    assert f.attributes() == list(BIB_SCHEMA)


def test_subscription_wildcards_suffix(workload):
    record = workload.records[0]
    f = workload.subscription_for(record, wildcards=("author", "title"))
    assert wildcard_attributes(f) == ["author", "title"]
    # Still matches any record by the same (year, conference).
    other = BibRecord(
        record.get_year(), record.get_conference(), "someone-else", "other",
    )
    assert f.matches(other.to_property_event())


def test_unknown_wildcard_rejected(workload):
    with pytest.raises(ValueError):
        workload.subscription_for(workload.records[0], wildcards=("bogus",))


def test_sample_subscription_wildcard_rate(workload):
    rng = random.Random(3)
    filters = workload.sample_subscriptions(rng, 200, wildcard_rate=0.5)
    wildcarded = [f for f in filters if wildcard_attributes(f)]
    assert 50 < len(wildcarded) < 150
    # Wildcarding 'title' blanks title only.
    for f in wildcarded:
        assert wildcard_attributes(f) == ["title"]


def test_sample_subscription_wildcard_attribute(workload):
    rng = random.Random(4)
    f = workload.sample_subscription(
        rng, wildcard_rate=1.0, wildcard_attribute="author"
    )
    assert wildcard_attributes(f) == ["author", "title"]


def test_domain_size_validation():
    with pytest.raises(ValueError):
        BibliographicWorkload(random.Random(0), n_years=0)


def test_subscriptions_match_their_source_records(workload):
    """Every sampled subscription matches at least the record it targets."""
    rng = random.Random(5)
    for _ in range(20):
        record = workload.sample_record(rng)
        assert workload.subscription_for(record).matches(record.to_property_event())
