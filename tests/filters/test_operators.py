"""Unit tests for constraint operators: evaluation and implication."""

import pytest

from repro.filters.operators import (
    ALL,
    CONTAINS,
    EQ,
    EXISTS,
    GE,
    GT,
    LE,
    LT,
    NE,
    PREFIX,
    operator_by_symbol,
    values_comparable,
)


class TestEvaluation:
    def test_eq_matches_equal_values(self):
        assert EQ.evaluate("Foo", "Foo", present=True)
        assert not EQ.evaluate("Bar", "Foo", present=True)

    def test_eq_numeric_cross_type(self):
        assert EQ.evaluate(1, 1.0, present=True)
        assert EQ.evaluate(1.0, 1, present=True)

    def test_eq_bool_is_not_int(self):
        assert not EQ.evaluate(True, 1, present=True)
        assert not EQ.evaluate(1, True, present=True)
        assert EQ.evaluate(True, True, present=True)

    def test_eq_absent_is_false(self):
        assert not EQ.evaluate(None, "Foo", present=False)

    def test_ne(self):
        assert NE.evaluate(5, 6, present=True)
        assert not NE.evaluate(5, 5, present=True)
        assert not NE.evaluate(None, 5, present=False)

    def test_ne_cross_family_is_true(self):
        assert NE.evaluate("five", 5, present=True)

    @pytest.mark.parametrize(
        "op,value,operand,expected",
        [
            (LT, 4, 5, True), (LT, 5, 5, False), (LT, 6, 5, False),
            (LE, 4, 5, True), (LE, 5, 5, True), (LE, 6, 5, False),
            (GT, 6, 5, True), (GT, 5, 5, False), (GT, 4, 5, False),
            (GE, 6, 5, True), (GE, 5, 5, True), (GE, 4, 5, False),
        ],
    )
    def test_ordering_operators(self, op, value, operand, expected):
        assert op.evaluate(value, operand, present=True) is expected

    def test_ordering_on_strings(self):
        assert LT.evaluate("apple", "banana", present=True)
        assert GT.evaluate("cherry", "banana", present=True)

    def test_ordering_incomparable_is_false(self):
        assert not LT.evaluate("apple", 5, present=True)
        assert not GE.evaluate(5, "apple", present=True)

    def test_ordering_bool_excluded_from_numeric(self):
        assert not LT.evaluate(True, 2, present=True)

    def test_ordering_absent_is_false(self):
        assert not LT.evaluate(None, 5, present=False)

    def test_exists(self):
        assert EXISTS.evaluate("anything", None, present=True)
        assert not EXISTS.evaluate(None, None, present=False)

    def test_all_matches_everything(self):
        assert ALL.evaluate("x", None, present=True)
        assert ALL.evaluate(None, None, present=False)

    def test_prefix(self):
        assert PREFIX.evaluate("foobar", "foo", present=True)
        assert not PREFIX.evaluate("barfoo", "foo", present=True)
        assert not PREFIX.evaluate(42, "foo", present=True)
        assert not PREFIX.evaluate(None, "foo", present=False)

    def test_contains(self):
        assert CONTAINS.evaluate("foobar", "oba", present=True)
        assert not CONTAINS.evaluate("foobar", "xyz", present=True)
        assert not CONTAINS.evaluate(3.14, "1", present=True)


class TestImplication:
    """Hand-picked implication facts; exhaustive soundness is property-tested."""

    def test_everything_implies_all(self):
        for op, operand in [(EQ, 5), (NE, 5), (LT, 5), (PREFIX, "a"), (EXISTS, None)]:
            assert op.implies(operand, ALL, None)

    def test_all_implies_only_all(self):
        assert ALL.implies(None, ALL, None)
        assert not ALL.implies(None, EXISTS, None)
        assert not ALL.implies(None, EQ, 5)

    def test_non_all_implies_exists(self):
        for op, operand in [(EQ, 5), (NE, 5), (LT, 5), (GE, 5), (PREFIX, "a")]:
            assert op.implies(operand, EXISTS, None)

    def test_eq_implies_whatever_matches_the_operand(self):
        assert EQ.implies(5, LT, 10)
        assert EQ.implies(5, GT, 1)
        assert EQ.implies(5, NE, 6)
        assert not EQ.implies(5, LT, 5)
        assert EQ.implies("Foo", EQ, "Foo")
        assert not EQ.implies("Foo", EQ, "Bar")
        assert EQ.implies("foobar", PREFIX, "foo")

    def test_lt_implies_weaker_lt(self):
        assert LT.implies(5, LT, 5)
        assert LT.implies(5, LT, 7)
        assert not LT.implies(7, LT, 5)

    def test_lt_implies_le(self):
        assert LT.implies(5, LE, 5)
        assert LT.implies(5, LE, 6)

    def test_le_implies_lt_only_strictly(self):
        assert LE.implies(5, LT, 6)
        assert not LE.implies(5, LT, 5)

    def test_le_implies_weaker_le(self):
        assert LE.implies(5, LE, 5)
        assert LE.implies(5, LE, 9)
        assert not LE.implies(9, LE, 5)

    def test_gt_ge_mirror(self):
        assert GT.implies(5, GT, 5)
        assert GT.implies(5, GT, 3)
        assert GT.implies(5, GE, 5)
        assert GE.implies(5, GE, 5)
        assert GE.implies(5, GT, 4)
        assert not GE.implies(5, GT, 5)

    def test_bounds_imply_ne_outside(self):
        assert LT.implies(5, NE, 5)
        assert LT.implies(5, NE, 9)
        assert not LT.implies(5, NE, 3)
        assert GT.implies(5, NE, 5)
        assert GE.implies(5, NE, 4)
        assert not GE.implies(5, NE, 5)

    def test_opposite_directions_never_imply(self):
        assert not LT.implies(5, GT, 1)
        assert not GT.implies(5, LT, 100)

    def test_ne_implies_same_ne(self):
        assert NE.implies(5, NE, 5)
        assert not NE.implies(5, NE, 6)
        assert not NE.implies(5, EQ, 6)

    def test_prefix_implication(self):
        assert PREFIX.implies("abc", PREFIX, "ab")
        assert not PREFIX.implies("ab", PREFIX, "abc")
        assert PREFIX.implies("abc", CONTAINS, "bc")
        assert not PREFIX.implies("abc", CONTAINS, "cd")

    def test_contains_implication(self):
        assert CONTAINS.implies("abc", CONTAINS, "b")
        assert not CONTAINS.implies("b", CONTAINS, "abc")
        assert not CONTAINS.implies("abc", PREFIX, "a")

    def test_cross_family_operands_never_imply(self):
        assert not LT.implies(5, LT, "five")
        assert not LE.implies("a", LE, 1)


class TestLookup:
    def test_lookup_by_symbol(self):
        assert operator_by_symbol("=") is EQ
        assert operator_by_symbol("==") is EQ
        assert operator_by_symbol("!=") is NE
        assert operator_by_symbol("<>") is NE
        assert operator_by_symbol("<") is LT
        assert operator_by_symbol("<=") is LE
        assert operator_by_symbol(">") is GT
        assert operator_by_symbol(">=") is GE
        assert operator_by_symbol("exists") is EXISTS
        assert operator_by_symbol("prefix") is PREFIX
        assert operator_by_symbol("contains") is CONTAINS
        assert operator_by_symbol("ALL") is ALL

    def test_unknown_symbol_raises(self):
        with pytest.raises(KeyError):
            operator_by_symbol("~")

    def test_repr_is_symbol(self):
        assert repr(LT) == "<"


class TestValuesComparable:
    def test_numeric_family(self):
        assert values_comparable(1, 2.5)

    def test_strings(self):
        assert values_comparable("a", "b")

    def test_bool_only_with_bool(self):
        assert values_comparable(True, False)
        assert not values_comparable(True, 1)
        assert not values_comparable(0, False)

    def test_cross_family(self):
        assert not values_comparable("a", 1)
