"""Unit tests for the counting index, with FilterTable as the oracle."""

import random

import pytest

from repro.filters.constraints import AttributeConstraint
from repro.filters.filter import Filter
from repro.filters.index import CountingIndex
from repro.filters.operators import ALL, CONTAINS, EQ, EXISTS, GE, GT, LE, LT, NE, PREFIX
from repro.filters.parser import parse_filter
from repro.filters.table import FilterTable

EVENT = {"symbol": "Foo", "price": 5, "volume": 100}


def test_basic_equality_match():
    index = CountingIndex()
    index.insert(parse_filter('symbol = "Foo"'), "a")
    index.insert(parse_filter('symbol = "Bar"'), "b")
    assert index.destinations(EVENT) == {"a"}


def test_conjunction_requires_all_constraints():
    index = CountingIndex()
    index.insert(parse_filter('symbol = "Foo" and price > 10'), "a")
    assert index.destinations(EVENT) == set()
    assert index.destinations({"symbol": "Foo", "price": 11}) == {"a"}


def test_ordering_operators_via_sorted_arrays():
    index = CountingIndex()
    index.insert(parse_filter("price < 10"), "lt")
    index.insert(parse_filter("price <= 5"), "le")
    index.insert(parse_filter("price > 1"), "gt")
    index.insert(parse_filter("price >= 5"), "ge")
    index.insert(parse_filter("price > 5"), "gt-strict")
    assert index.destinations(EVENT) == {"lt", "le", "gt", "ge"}


def test_top_filter_always_matches():
    index = CountingIndex()
    index.insert(Filter.top(), "everything")
    assert index.destinations({}) == {"everything"}
    assert index.destinations(EVENT) == {"everything"}


def test_all_wildcard_filter_always_matches():
    index = CountingIndex()
    index.insert(Filter([AttributeConstraint("volume", ALL)]), "w")
    assert index.destinations({}) == {"w"}


def test_exists_and_linear_operators():
    index = CountingIndex()
    index.insert(Filter([AttributeConstraint("volume", EXISTS)]), "e")
    index.insert(Filter([AttributeConstraint("symbol", NE, "Bar")]), "ne")
    index.insert(Filter([AttributeConstraint("symbol", PREFIX, "Fo")]), "p")
    index.insert(Filter([AttributeConstraint("symbol", CONTAINS, "oo")]), "c")
    assert index.destinations(EVENT) == {"e", "ne", "p", "c"}


def test_bottom_filter_rejected():
    index = CountingIndex()
    with pytest.raises(ValueError):
        index.insert(Filter.bottom(), "x")


def test_missing_attribute_fails_constraint():
    index = CountingIndex()
    index.insert(parse_filter("price < 10 and missing = 1"), "a")
    assert index.destinations(EVENT) == set()


def test_bool_values_do_not_match_numeric_bounds():
    index = CountingIndex()
    index.insert(parse_filter("flag < 10"), "a")
    index.insert(parse_filter("flag = true"), "b")
    assert index.destinations({"flag": True}) == {"b"}
    assert index.destinations({"flag": 5}) == {"a"}


def test_remove_pair_and_entry():
    index = CountingIndex()
    f = parse_filter('symbol = "Foo"')
    index.insert(f, "a")
    index.insert(f, "b")
    assert index.remove(f, "a") is True
    assert index.destinations(EVENT) == {"b"}
    assert index.remove(f, "b") is True
    assert len(index) == 0
    assert index.destinations(EVENT) == set()


def test_remove_missing_returns_false():
    index = CountingIndex()
    assert index.remove(parse_filter("a = 1"), "x") is False


def test_remove_destination():
    index = CountingIndex()
    index.insert(parse_filter('symbol = "Foo"'), "n1")
    index.insert(parse_filter("price < 10"), "n1")
    assert index.remove_destination("n1") == 2
    assert len(index) == 0


def test_reinsert_after_full_removal():
    index = CountingIndex()
    f = parse_filter("price < 10")
    index.insert(f, "a")
    index.remove(f, "a")
    index.insert(f, "b")
    assert index.destinations(EVENT) == {"b"}


def test_entries_and_contains():
    index = CountingIndex()
    f = parse_filter("price < 10")
    index.insert(f, "a")
    assert f in index
    assert list(index.entries()) == [(f, ("a",))]
    assert index.destinations_for(f) == ("a",)


def test_match_order_is_insertion_order():
    index = CountingIndex()
    first = parse_filter("price < 10")
    second = parse_filter('symbol = "Foo"')
    index.insert(first, "a")
    index.insert(second, "b")
    assert [f for f, _ in index.match(EVENT)] == [first, second]


def test_evaluations_count_actual_probes():
    """Pin the probe-accounting semantics of ``CountingIndex.match``.

    ``evaluations`` counts the constraint probes actually performed — one
    per satisfied constraint harvested from the hash/sorted/exists
    sub-indexes, plus one per linear-fallback constraint tested — NOT one
    per stored filter.  The FilterTable comparator would charge 4 here
    (one evaluation per filter).
    """
    index = CountingIndex()
    index.insert(parse_filter('symbol = "Foo"'), "foo")
    index.insert(parse_filter('symbol = "Bar"'), "bar")
    index.insert(parse_filter("price < 10 and price > 1"), "band")
    index.insert(Filter([AttributeConstraint("name", NE, "x")]), "lin")

    index.match({"symbol": "Foo", "price": 5})
    # symbol eq-bucket harvest: 1 probe ("Bar" bucket never touched);
    # price sorted arrays: lt(10) + gt(1) both satisfied: 2 probes;
    # "name" linear list: event has no "name", so never consulted.
    assert index.evaluations == 3

    index.match({"symbol": "Foo", "price": 5})
    assert index.evaluations == 6  # probes accrue per match call

    # Linear-fallback constraints are charged whether or not they pass.
    index.match({"name": "x"})
    assert index.evaluations == 7

    # An event touching no indexed attribute performs no probes at all.
    index.match({"volume": 100})
    assert index.evaluations == 7


def test_cached_engine_hits_cost_zero_probes():
    """A routing-cache hit must not advance the probe counter."""
    from repro.filters.engine import CachedMatchEngine

    engine = CachedMatchEngine(CountingIndex())
    engine.insert(parse_filter('symbol = "Foo"'), "foo")
    event = {"symbol": "Foo", "price": 5}
    engine.match(event)
    after_miss = engine.evaluations
    assert after_miss > 0
    engine.match(event)  # cache hit: no probes
    assert engine.evaluations == after_miss


def _random_filter(rng: random.Random) -> Filter:
    attributes = ["a", "b", "c"]
    operators = [EQ, NE, LT, LE, GT, GE, EXISTS, ALL, PREFIX, CONTAINS]
    constraints = []
    for _ in range(rng.randrange(1, 4)):
        attr = rng.choice(attributes)
        op = rng.choice(operators)
        if op in (EXISTS, ALL):
            constraints.append(AttributeConstraint(attr, op))
        elif op in (PREFIX, CONTAINS):
            constraints.append(
                AttributeConstraint(attr, op, rng.choice(["v", "va", "w"]))
            )
        else:
            operand = rng.choice([1, 2, 3, "v1", "v2", True])
            constraints.append(AttributeConstraint(attr, op, operand))
    return Filter(constraints)


def _random_event(rng: random.Random) -> dict:
    values = [0, 1, 2, 3, "v1", "v2", "value", True, False]
    return {
        attr: rng.choice(values)
        for attr in ["a", "b", "c"]
        if rng.random() < 0.8
    }


def test_index_agrees_with_table_on_random_populations():
    """The counting index must be semantically identical to Figure 6."""
    rng = random.Random(2002)
    for trial in range(30):
        table, index = FilterTable(), CountingIndex()
        filters = [_random_filter(rng) for _ in range(25)]
        for position, filter_ in enumerate(filters):
            table.insert(filter_, position)
            index.insert(filter_, position)
        for _ in range(20):
            event = _random_event(rng)
            assert index.destinations(event) == table.destinations(event), (
                f"divergence on {event} (trial {trial})"
            )
        # Random removals keep them in sync too.
        for position, filter_ in enumerate(filters):
            if rng.random() < 0.5:
                assert table.remove(filter_, position) == index.remove(
                    filter_, position
                )
        for _ in range(10):
            event = _random_event(rng)
            assert index.destinations(event) == table.destinations(event)
