"""Property-based tests (hypothesis) for the filtering core.

These pin the soundness obligations of the paper:

- constraint implication and filter covering are *sound*: a proved
  implication can never be contradicted by an event (Definition 2,
  Proposition 1);
- attribute-removal weakening always yields covering filters;
- covering merges cover every input;
- the counting index is observationally equal to the Figure-6 table.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.events.base import PropertyEvent
from repro.filters.constraints import AttributeConstraint, conjunction_implies
from repro.filters.filter import Filter, event_covers
from repro.filters.index import CountingIndex
from repro.filters.operators import (
    ALL,
    CONTAINS,
    EQ,
    EXISTS,
    GE,
    GT,
    LE,
    LT,
    NE,
    PREFIX,
)
from repro.filters.standard import standardize
from repro.filters.table import FilterTable

ATTRIBUTES = ["a", "b", "c"]

values = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.sampled_from([0.5, 1.5, 2.5]),
    st.sampled_from(["", "v", "va", "vab", "w"]),
    st.booleans(),
)

nullary_ops = st.sampled_from([EXISTS, ALL])
value_ops = st.sampled_from([EQ, NE, LT, LE, GT, GE])
string_ops = st.sampled_from([PREFIX, CONTAINS])


@st.composite
def constraints(draw, attribute=None):
    attr = attribute or draw(st.sampled_from(ATTRIBUTES))
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return AttributeConstraint(attr, draw(nullary_ops))
    if kind == 1:
        return AttributeConstraint(attr, draw(string_ops), draw(
            st.sampled_from(["v", "va", "w", ""])
        ))
    return AttributeConstraint(attr, draw(value_ops), draw(values))


filters = st.lists(constraints(), min_size=0, max_size=4).map(Filter)


@st.composite
def events(draw):
    properties = {}
    for attr in ATTRIBUTES:
        if draw(st.booleans()):
            properties[attr] = draw(values)
    return PropertyEvent(properties)


@given(c1=constraints(attribute="a"), c2=constraints(attribute="a"), value=values)
def test_constraint_implication_is_sound(c1, c2, value):
    if c1.implies(c2) and c1.matches_value(value, present=True):
        assert c2.matches_value(value, present=True)


@given(c1=constraints(attribute="a"), c2=constraints(attribute="a"))
def test_implication_respects_absence(c1, c2):
    # If c1 accepts an absent attribute (only ALL does) then anything it
    # implies must accept absence too.
    if c1.implies(c2) and c1.matches_value(None, present=False):
        assert c2.matches_value(None, present=False)


@given(
    conj=st.lists(constraints(attribute="a"), min_size=0, max_size=4),
    target=constraints(attribute="a"),
    value=values,
)
def test_conjunction_implication_is_sound(conj, target, value):
    if conjunction_implies(conj, target):
        if all(c.matches_value(value, present=True) for c in conj):
            assert target.matches_value(value, present=True)


@given(f=filters, g=filters, e=events())
def test_filter_covering_is_sound(f, g, e):
    """Definition 2: f covers g means every event matching g matches f."""
    if f.covers(g) and g.matches(e):
        assert f.matches(e)


@given(f=filters)
def test_covering_is_reflexive(f):
    assert f.covers(f)


@given(f=filters, g=filters, h=filters, e=events())
def test_covering_is_transitive_observationally(f, g, h, e):
    if f.covers(g) and g.covers(h) and h.matches(e):
        assert f.matches(e)


@given(f=filters, keep=st.sets(st.sampled_from(ATTRIBUTES)))
def test_restriction_yields_covering_filter(f, keep):
    """Attribute removal is the paper's §4.1 weakening: always covers."""
    assert f.restricted_to(keep).covers(f)


@given(f=filters, e=events(), keep=st.sets(st.sampled_from(ATTRIBUTES)))
def test_restriction_never_loses_matches(f, e, keep):
    if f.matches(e):
        assert f.restricted_to(keep).matches(e)


@given(f=filters)
def test_without_wildcards_is_equivalent_cover(f):
    stripped = f.without_wildcards()
    assert stripped.covers(f)
    assert f.covers(stripped)


@given(f=filters, e=events())
def test_event_covering_definition(f, e):
    """Any event covers itself; full events cover weakened ones except
    under existence tests (checked elsewhere with Example 3)."""
    assert event_covers(e, e, f)


@given(f=filters, e=events())
def test_standardize_preserves_matching(f, e):
    standard = standardize(f, ATTRIBUTES, strict=False)
    assert standard.matches(e) == f.matches(e)


@given(
    population=st.lists(filters, min_size=0, max_size=8),
    e=events(),
)
@settings(max_examples=60)
def test_index_equals_table(population, e):
    table, index = FilterTable(), CountingIndex()
    for position, f in enumerate(population):
        if f.matches_nothing:
            continue
        table.insert(f, position)
        index.insert(f, position)
    assert index.destinations(e) == table.destinations(e)


@given(
    fs=st.lists(filters, min_size=1, max_size=6),
    e=events(),
)
def test_merge_covering_covers_inputs(fs, e):
    from repro.core.weakening import merge_covering

    merged = merge_covering(fs)
    assert len(merged) <= len(fs)
    for original in fs:
        if original.matches(e):
            assert any(m.matches(e) for m in merged), (
                f"{original} matched {dict(e)} but no merged filter did"
            )


@given(f=filters)
def test_parse_render_round_trip(f):
    """render_filter is a right inverse of parse_filter over the
    representable operand types."""
    from repro.filters.parser import parse_filter, render_filter

    assert parse_filter(render_filter(f)) == f
