"""Filter semantics: Definitions 1-3 and the paper's literal Examples 1-3."""

import pytest

from repro.events.base import PropertyEvent
from repro.filters.constraints import AttributeConstraint
from repro.filters.filter import Filter, event_covers, strongest_covering
from repro.filters.operators import ALL, EQ, EXISTS, GE, GT, LT

# The events of Example 1.
E1 = PropertyEvent(symbol="Foo", price=10.0, volume=32300)
E2 = PropertyEvent(symbol="Bar", price=15.0, volume=25600)

# The filter of Example 1: f = (symbol, "Foo", =) (price, 5.0, >).
F = Filter([
    AttributeConstraint("symbol", EQ, "Foo"),
    AttributeConstraint("price", GT, 5.0),
])


class TestExample1:
    def test_f_matches_e1(self):
        assert F.matches(E1) is True

    def test_f_rejects_e2(self):
        assert F.matches(E2) is False

    def test_filter_is_callable(self):
        assert F(E1) is True
        assert F(E2) is False


class TestExample2:
    """The three covering filters of Example 2 all cover f."""

    def test_f_prime_covers_f(self):
        f_prime = Filter([AttributeConstraint("symbol", EQ, "Foo")])
        assert f_prime.covers(F)

    def test_f_double_prime_covers_f(self):
        f_double = Filter([AttributeConstraint("price", GT, 5.0)])
        assert f_double.covers(F)

    def test_f_triple_prime_covers_f(self):
        f_triple = Filter([
            AttributeConstraint("symbol", EQ, "Foo"),
            AttributeConstraint("price", GE, 4.5),
        ])
        assert f_triple.covers(F)

    def test_f_does_not_cover_its_covers(self):
        f_prime = Filter([AttributeConstraint("symbol", EQ, "Foo")])
        assert not F.covers(f_prime)


class TestExample3:
    """Event covering is relative to a filter (Definition 3)."""

    def test_e1_prime_covers_e1_for_f(self):
        e1_prime = PropertyEvent(symbol="Foo", price=10.0)
        assert event_covers(e1_prime, E1, F)

    def test_volume_exists_filter_breaks_the_covering(self):
        e1_prime = PropertyEvent(symbol="Foo", price=10.0)
        volume_filter = Filter([AttributeConstraint("volume", EXISTS)])
        assert not event_covers(e1_prime, E1, volume_filter)

    def test_every_event_covers_itself(self):
        assert event_covers(E1, E1, F)

    def test_covering_holds_vacuously_when_filter_rejects_original(self):
        assert event_covers(E1, E2, F)


class TestTopBottom:
    def test_top_matches_everything(self):
        assert Filter.top().matches(E1)
        assert Filter.top().matches(PropertyEvent())

    def test_bottom_matches_nothing(self):
        assert not Filter.bottom().matches(E1)
        assert not Filter.bottom().matches(PropertyEvent())

    def test_top_covers_all_filters(self):
        assert Filter.top().covers(F)
        assert Filter.top().covers(Filter.bottom())
        assert Filter.top().covers(Filter.top())

    def test_bottom_covered_by_all_filters(self):
        assert F.covers(Filter.bottom())
        assert Filter.bottom().covers(Filter.bottom())

    def test_bottom_covers_nothing_else(self):
        assert not Filter.bottom().covers(F)
        assert not Filter.bottom().covers(Filter.top())

    def test_flags(self):
        assert Filter.top().is_top and not Filter.top().is_bottom
        assert Filter.bottom().is_bottom and not Filter.bottom().is_top
        assert not F.is_top and not F.is_bottom


class TestCovering:
    def test_every_filter_covers_itself(self):
        assert F.covers(F)

    def test_wildcard_constraints_never_block_covering(self):
        with_wildcard = Filter([
            AttributeConstraint("symbol", EQ, "Foo"),
            AttributeConstraint("volume", ALL),
        ])
        without = Filter([AttributeConstraint("symbol", EQ, "Foo")])
        assert with_wildcard.covers(without)
        assert without.covers(with_wildcard)

    def test_multi_attribute_covering(self):
        strong = Filter([
            AttributeConstraint("a", EQ, 1),
            AttributeConstraint("b", LT, 5),
        ])
        weak = Filter([AttributeConstraint("b", LT, 10)])
        assert weak.covers(strong)
        assert not strong.covers(weak)

    def test_interval_covering_through_conjunction(self):
        banded = Filter([
            AttributeConstraint("p", GT, 2),
            AttributeConstraint("p", LT, 8),
        ])
        wide = Filter([AttributeConstraint("p", LT, 9)])
        assert wide.covers(banded)


class TestStructure:
    def test_attributes_in_first_occurrence_order(self):
        assert F.attributes() == ["symbol", "price"]

    def test_constraints_on(self):
        assert len(F.constraints_on("price")) == 1
        assert F.constraints_on("volume") == ()

    def test_restricted_to_keeps_order(self):
        restricted = F.restricted_to(["symbol"])
        assert restricted.attributes() == ["symbol"]
        assert restricted.covers(F)

    def test_restricted_to_empty_is_top(self):
        assert F.restricted_to([]).is_top

    def test_restricted_bottom_stays_bottom(self):
        assert Filter.bottom().restricted_to(["a"]).is_bottom

    def test_without_wildcards(self):
        mixed = Filter([
            AttributeConstraint("a", EQ, 1),
            AttributeConstraint("b", ALL),
        ])
        assert mixed.without_wildcards().attributes() == ["a"]

    def test_conjoin(self):
        both = Filter([AttributeConstraint("symbol", EQ, "Foo")]) & Filter(
            [AttributeConstraint("price", GT, 5.0)]
        )
        assert both.matches(E1)
        assert not both.matches(E2)

    def test_conjoin_with_bottom_is_bottom(self):
        assert (F & Filter.bottom()).is_bottom

    def test_len_and_iter(self):
        assert len(F) == 2
        assert [c.attribute for c in F] == ["symbol", "price"]

    def test_immutability(self):
        with pytest.raises(AttributeError):
            F.constraints = ()

    def test_equality_and_hash(self):
        same = Filter([
            AttributeConstraint("symbol", EQ, "Foo"),
            AttributeConstraint("price", GT, 5.0),
        ])
        assert same == F
        assert hash(same) == hash(F)
        assert Filter.top() != Filter.bottom()

    def test_order_matters_for_equality(self):
        reordered = Filter([
            AttributeConstraint("price", GT, 5.0),
            AttributeConstraint("symbol", EQ, "Foo"),
        ])
        assert reordered != F

    def test_str(self):
        assert str(Filter.top()) == "fT"
        assert str(Filter.bottom()) == "fF"
        assert "symbol" in str(F)

    def test_matches_plain_mapping(self):
        assert F.matches({"symbol": "Foo", "price": 6.0})


class TestStrongestCovering:
    def test_picks_the_strongest(self):
        weak = Filter([AttributeConstraint("symbol", EQ, "Foo")])
        strong = Filter([
            AttributeConstraint("symbol", EQ, "Foo"),
            AttributeConstraint("price", LT, 20.0),
        ])
        target = Filter([
            AttributeConstraint("symbol", EQ, "Foo"),
            AttributeConstraint("price", LT, 10.0),
        ])
        assert strongest_covering([weak, strong], target) == strong
        assert strongest_covering([strong, weak], target) == strong

    def test_none_when_no_cover(self):
        other = Filter([AttributeConstraint("symbol", EQ, "Bar")])
        assert strongest_covering([other], F) is None

    def test_empty_candidates(self):
        assert strongest_covering([], F) is None
