"""Differential stateful testing: every match engine against the oracle.

A hypothesis state machine drives random interleavings of ``insert`` /
``remove`` / ``remove_destination`` / ``match`` simultaneously against

- the Figure-6 :class:`FilterTable` (the paper's algorithm — the oracle),
- a plain :class:`CountingIndex`,
- :class:`CompiledMatchEngine` (pure-Python bitmaps, and the numpy batch
  path when numpy is importable),
- :class:`CachedMatchEngine` wrapping each of the above,

and asserts after every step that all engines return identical *ordered*
match results (every engine yields filter-insertion order) and identical
introspection state.  This is the harness that keeps the routing-decision
cache and the compiled bitmap structures honest: any unsound memoization,
missed invalidation, or stale compiled tier shows up as a divergence from
the uncached oracle within a few dozen random steps.  ``match_batch`` is
driven through the same machine so the batched entry point (including the
cached wrapper's miss-dedup batching) is held to the same oracle.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.filters.compiled import CompiledMatchEngine, _numpy
from repro.filters.constraints import AttributeConstraint
from repro.filters.engine import CachedMatchEngine
from repro.filters.filter import Filter
from repro.filters.index import CountingIndex
from repro.filters.operators import (
    ALL,
    CONTAINS,
    EQ,
    EXISTS,
    GE,
    GT,
    LE,
    LT,
    NE,
    PREFIX,
)
from repro.filters.table import FilterTable

ATTRIBUTES = ["a", "b", "c"]
DESTINATIONS = ["n1", "n2", "n3"]

values = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.sampled_from([0.5, 1.5]),
    st.sampled_from(["", "v", "va", "w"]),
    st.booleans(),
)


@st.composite
def constraints(draw):
    attr = draw(st.sampled_from(ATTRIBUTES))
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return AttributeConstraint(attr, draw(st.sampled_from([EXISTS, ALL])))
    if kind == 1:
        return AttributeConstraint(
            attr,
            draw(st.sampled_from([PREFIX, CONTAINS])),
            draw(st.sampled_from(["v", "va", "w", ""])),
        )
    return AttributeConstraint(
        attr, draw(st.sampled_from([EQ, NE, LT, LE, GT, GE])), draw(values)
    )


filters = st.lists(constraints(), min_size=1, max_size=3).map(Filter)

events = st.dictionaries(
    st.sampled_from(ATTRIBUTES), values, min_size=0, max_size=3
)


class EngineDifferential(RuleBasedStateMachine):
    """Apply identical operations everywhere; the oracle arbitrates."""

    def __init__(self):
        super().__init__()
        self.oracle = FilterTable()
        self.others = [
            CountingIndex(),
            CompiledMatchEngine(use_numpy=False),
            CachedMatchEngine(FilterTable()),
            CachedMatchEngine(CountingIndex()),
            CachedMatchEngine(CompiledMatchEngine(use_numpy=False)),
        ]
        if _numpy is not None:
            self.others.append(CompiledMatchEngine(use_numpy=True))
        #: (filter, destination) pairs currently stored, for removals that
        #: actually hit (pure misses exercise nothing after the first one).
        self.live = []

    def engines(self):
        return [self.oracle] + self.others

    @rule(filter_=filters, destination=st.sampled_from(DESTINATIONS))
    def insert(self, filter_, destination):
        if filter_.matches_nothing:
            return  # engines reject fF uniformly; not interesting here
        for engine in self.engines():
            engine.insert(filter_, destination)
        if (filter_, destination) not in self.live:
            self.live.append((filter_, destination))

    @rule(data=st.data())
    def remove_live_pair(self, data):
        if not self.live:
            return
        filter_, destination = data.draw(
            st.sampled_from(self.live), label="live pair"
        )
        results = {engine.remove(filter_, destination) for engine in self.engines()}
        assert results == {True}
        self.live.remove((filter_, destination))

    @rule(filter_=filters, destination=st.sampled_from(DESTINATIONS))
    def remove_arbitrary_pair(self, filter_, destination):
        results = {engine.remove(filter_, destination) for engine in self.engines()}
        assert len(results) == 1  # all agree, hit or miss
        if results == {True} and (filter_, destination) in self.live:
            self.live.remove((filter_, destination))

    @rule(destination=st.sampled_from(DESTINATIONS))
    def remove_destination(self, destination):
        counts = {engine.remove_destination(destination) for engine in self.engines()}
        assert len(counts) == 1
        self.live = [pair for pair in self.live if pair[1] != destination]

    @rule(event=events)
    def match(self, event):
        expected = self.oracle.match(event)
        for engine in self.others:
            assert engine.match(event) == expected, (
                f"{engine!r} diverged from oracle on {event}"
            )

    @rule(event=events)
    def match_twice(self, event):
        """Back-to-back matches force the cached engines onto the hit path."""
        expected = self.oracle.match(event)
        for engine in self.others:
            engine.match(event)
            assert engine.match(event) == expected

    @rule(batch=st.lists(events, min_size=1, max_size=4))
    def match_batch(self, batch):
        """The batched entry point must equal event-by-event matching.

        Repeating the batch back-to-back covers the repeated-fingerprint
        paths: in-batch dedup on the first call, memo hits on the second.
        """
        expected = [self.oracle.match(event) for event in batch]
        for engine in self.others:
            assert engine.match_batch(batch) == expected, (
                f"{engine!r} batch diverged from oracle on {batch}"
            )
            assert engine.match_batch(batch + batch) == expected + expected

    @invariant()
    def same_population(self):
        expected = sorted(
            (repr(f), tuple(ids)) for f, ids in self.oracle.entries()
        )
        for engine in self.others:
            actual = sorted((repr(f), tuple(ids)) for f, ids in engine.entries())
            assert actual == expected
            assert len(engine) == len(self.oracle)


EngineDifferential.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
TestEngineDifferential = EngineDifferential.TestCase
