"""Standard subscription format and wildcard helpers (Section 4.4)."""

import pytest

from repro.filters.constraints import AttributeConstraint
from repro.filters.filter import Filter
from repro.filters.operators import ALL, EQ, LT
from repro.filters.parser import parse_filter
from repro.filters.standard import (
    is_standard,
    most_general_wildcard,
    standardize,
    wildcard_attributes,
)

SCHEMA = ("class", "symbol", "price")


def test_missing_attributes_become_wildcards():
    fx = parse_filter('class = "Stock" and symbol = "DEF"')
    standard = standardize(fx, SCHEMA)
    assert standard.attributes() == list(SCHEMA)
    assert wildcard_attributes(standard) == ["price"]


def test_constraints_reordered_to_schema_order():
    scrambled = parse_filter('price < 100 and class = "Stock" and symbol = "X"')
    standard = standardize(scrambled, SCHEMA)
    assert standard.attributes() == list(SCHEMA)


def test_standard_matching_semantics_unchanged():
    original = parse_filter('class = "Stock" and price < 100')
    standard = standardize(original, SCHEMA)
    event = {"class": "Stock", "symbol": "Any", "price": 50}
    assert original.matches(event) == standard.matches(event) is True
    reject = {"class": "Stock", "symbol": "Any", "price": 500}
    assert original.matches(reject) == standard.matches(reject) is False


def test_multiple_constraints_on_one_attribute_kept():
    banded = parse_filter('class = "Stock" and price > 5 and price < 10')
    standard = standardize(banded, SCHEMA)
    assert len(standard.constraints_on("price")) == 2


def test_strict_rejects_unknown_attributes():
    with pytest.raises(ValueError):
        standardize(parse_filter("volume > 5"), SCHEMA)


def test_lenient_appends_unknown_attributes():
    standard = standardize(parse_filter("volume > 5"), SCHEMA, strict=False)
    assert standard.attributes() == list(SCHEMA) + ["volume"]
    assert standard.matches({"class": "x", "volume": 6})


def test_bottom_passes_through():
    assert standardize(Filter.bottom(), SCHEMA).is_bottom


def test_top_becomes_all_wildcards():
    standard = standardize(Filter.top(), SCHEMA)
    assert wildcard_attributes(standard) == list(SCHEMA)
    assert standard.matches({})


def test_is_standard():
    assert is_standard(standardize(Filter.top(), SCHEMA), SCHEMA)
    assert not is_standard(parse_filter('class = "Stock"'), SCHEMA)
    assert not is_standard(Filter.bottom(), SCHEMA)


def test_standardized_filter_covers_nothing_extra():
    """Standardizing neither weakens nor strengthens: mutual covering."""
    original = parse_filter('class = "Stock" and price < 100')
    standard = standardize(original, SCHEMA)
    assert standard.covers(original)
    assert original.covers(standard)


class TestMostGeneralWildcard:
    def test_first_schema_wildcard_wins(self):
        f = Filter([
            AttributeConstraint("class", EQ, "Stock"),
            AttributeConstraint("symbol", ALL),
            AttributeConstraint("price", ALL),
        ])
        assert most_general_wildcard(f, SCHEMA) == "symbol"

    def test_wildcard_on_most_general_attribute(self):
        f = Filter([
            AttributeConstraint("class", ALL),
            AttributeConstraint("symbol", EQ, "X"),
            AttributeConstraint("price", LT, 5),
        ])
        assert most_general_wildcard(f, SCHEMA) == "class"

    def test_no_wildcard_raises(self):
        f = parse_filter('class = "Stock"')
        with pytest.raises(ValueError):
            most_general_wildcard(f, SCHEMA)
