"""Unit tests for AttributeConstraint and conjunction implication."""

import pytest

from repro.filters.constraints import AttributeConstraint, conjunction_implies
from repro.filters.operators import (
    ALL,
    CONTAINS,
    EQ,
    EXISTS,
    GE,
    GT,
    LE,
    LT,
    NE,
    PREFIX,
)


def c(attr, op, operand=None):
    return AttributeConstraint(attr, op, operand)


class TestConstraint:
    def test_matches_value(self):
        assert c("price", GT, 5.0).matches_value(10.0, present=True)
        assert not c("price", GT, 5.0).matches_value(1.0, present=True)

    def test_matches_mapping(self):
        constraint = c("symbol", EQ, "Foo")
        assert constraint.matches({"symbol": "Foo"})
        assert not constraint.matches({"symbol": "Bar"})
        assert not constraint.matches({"price": 1.0})

    def test_wildcard_matches_missing_attribute(self):
        assert c("volume", ALL).matches({"price": 1.0})

    def test_exists_requires_presence(self):
        assert c("volume", EXISTS).matches({"volume": 0})
        assert not c("volume", EXISTS).matches({"price": 1.0})

    def test_nullary_operators_reject_operand(self):
        with pytest.raises(ValueError):
            AttributeConstraint("x", ALL, 5)
        with pytest.raises(ValueError):
            AttributeConstraint("x", EXISTS, "v")

    def test_is_wildcard(self):
        assert c("x", ALL).is_wildcard
        assert not c("x", EXISTS).is_wildcard
        assert not c("x", EQ, 1).is_wildcard

    def test_implies_requires_same_attribute(self):
        assert not c("a", EQ, 5).implies(c("b", LT, 10))
        assert c("a", EQ, 5).implies(c("a", LT, 10))

    def test_str_forms(self):
        assert str(c("price", LT, 10.0)) == "(price, 10.0, <)"
        assert str(c("price", EXISTS)) == "(price, exists)"

    def test_frozen_and_hashable(self):
        constraint = c("a", EQ, 1)
        with pytest.raises(AttributeError):
            constraint.attribute = "b"
        assert hash(c("a", EQ, 1)) == hash(constraint)
        assert c("a", EQ, 1) == constraint


class TestConjunctionImplies:
    def test_single_constraint_pairwise(self):
        assert conjunction_implies([c("p", LT, 5)], c("p", LT, 10))
        assert not conjunction_implies([c("p", LT, 10)], c("p", LT, 5))

    def test_target_all_is_trivial(self):
        assert conjunction_implies([], c("p", ALL))
        assert conjunction_implies([c("q", EQ, 1)], c("p", ALL))

    def test_empty_conjunction_implies_nothing_else(self):
        assert not conjunction_implies([], c("p", LT, 10))
        assert not conjunction_implies([], c("p", EXISTS))

    def test_other_attribute_constraints_ignored(self):
        assert not conjunction_implies([c("q", LT, 5)], c("p", LT, 10))

    def test_interval_two_sided_implies_wider_bound(self):
        conj = [c("p", GT, 5), c("p", LT, 10)]
        assert conjunction_implies(conj, c("p", LT, 12))
        assert conjunction_implies(conj, c("p", GT, 3))
        assert conjunction_implies(conj, c("p", NE, 12))
        assert conjunction_implies(conj, c("p", NE, 3))
        assert not conjunction_implies(conj, c("p", NE, 7))
        assert not conjunction_implies(conj, c("p", LT, 8))

    def test_interval_with_eq_checks_the_point(self):
        conj = [c("p", EQ, 7)]
        assert conjunction_implies(conj, c("p", LT, 8))
        assert conjunction_implies(conj, c("p", GE, 7))
        assert not conjunction_implies(conj, c("p", GT, 7))

    def test_unsatisfiable_conjunction_implies_everything(self):
        conj = [c("p", GT, 10), c("p", LT, 5)]
        assert conjunction_implies(conj, c("p", EQ, 123))
        conj2 = [c("p", EQ, 1), c("p", EQ, 2)]
        assert conjunction_implies(conj2, c("p", LT, -100))

    def test_empty_open_interval_is_unsatisfiable(self):
        conj = [c("p", GT, 5), c("p", LT, 5)]
        assert conjunction_implies(conj, c("p", EQ, 0))
        half_open = [c("p", GE, 5), c("p", LT, 5)]
        assert conjunction_implies(half_open, c("p", EQ, 0))

    def test_degenerate_closed_interval_implies_eq(self):
        conj = [c("p", GE, 5), c("p", LE, 5)]
        assert conjunction_implies(conj, c("p", EQ, 5))
        assert not conjunction_implies(conj, c("p", EQ, 6))

    def test_tightest_bound_wins(self):
        conj = [c("p", LT, 100), c("p", LT, 10)]
        assert conjunction_implies(conj, c("p", LT, 11))
        assert not conjunction_implies(conj, c("p", LT, 9))

    def test_strictness_tracked_at_equal_bounds(self):
        assert conjunction_implies([c("p", LT, 5), c("p", LE, 5)], c("p", LT, 5))
        assert not conjunction_implies([c("p", LE, 5)], c("p", LT, 5))

    def test_interval_proof_survives_non_interval_constraints(self):
        # The PREFIX constraint only narrows further; the interval subset
        # already proves the bound.
        conj = [c("p", GT, 5), c("p", LT, 10), c("p", PREFIX, "x")]
        assert conjunction_implies(conj, c("p", LT, 12))

    def test_exists_implied_by_any_value_constraint(self):
        assert conjunction_implies([c("p", LT, 5)], c("p", EXISTS))
        assert conjunction_implies([c("p", NE, 5)], c("p", EXISTS))
        assert conjunction_implies([c("p", CONTAINS, "a")], c("p", EXISTS))
        assert not conjunction_implies([c("p", ALL)], c("p", EXISTS))

    def test_string_interval(self):
        conj = [c("s", GE, "b"), c("s", LT, "d")]
        assert conjunction_implies(conj, c("s", LT, "e"))
        assert not conjunction_implies(conj, c("s", LT, "c"))

    def test_mixed_type_bounds_do_not_crash(self):
        conj = [c("p", GT, 5), c("p", LT, "z")]
        # The numeric bound still proves numeric targets; the string
        # bound proves string targets pairwise.  No crash either way.
        assert conjunction_implies(conj, c("p", GT, 4))
        assert conjunction_implies(conj, c("p", LT, "zz"))
        assert not conjunction_implies(conj, c("p", EQ, 6))
