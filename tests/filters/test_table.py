"""Unit tests for the naive Figure-6 filter table."""

from repro.filters.parser import parse_filter
from repro.filters.table import FilterTable

F_FOO = parse_filter('symbol = "Foo"')
F_CHEAP = parse_filter("price < 10")
F_FOO_CHEAP = parse_filter('symbol = "Foo" and price < 10')

EVENT = {"symbol": "Foo", "price": 5}


def test_insert_and_match():
    table = FilterTable()
    table.insert(F_FOO, "n1")
    assert table.destinations(EVENT) == {"n1"}


def test_same_filter_accumulates_ids():
    table = FilterTable()
    table.insert(F_FOO, "n1")
    table.insert(F_FOO, "n2")
    assert len(table) == 1
    assert table.destinations(EVENT) == {"n1", "n2"}


def test_duplicate_id_not_repeated():
    table = FilterTable()
    table.insert(F_FOO, "n1")
    table.insert(F_FOO, "n1")
    assert table.destinations_for(F_FOO) == ("n1",)


def test_union_of_destinations_across_filters():
    table = FilterTable()
    table.insert(F_FOO, "n1")
    table.insert(F_CHEAP, "n2")
    table.insert(parse_filter('symbol = "Bar"'), "n3")
    assert table.destinations(EVENT) == {"n1", "n2"}


def test_match_returns_entries_in_insertion_order():
    table = FilterTable()
    table.insert(F_CHEAP, "a")
    table.insert(F_FOO, "b")
    matched = table.match(EVENT)
    assert [ids for _, ids in matched] == [("a",), ("b",)]


def test_remove_pair():
    table = FilterTable()
    table.insert(F_FOO, "n1")
    table.insert(F_FOO, "n2")
    assert table.remove(F_FOO, "n1") is True
    assert table.destinations(EVENT) == {"n2"}


def test_remove_last_id_drops_entry():
    table = FilterTable()
    table.insert(F_FOO, "n1")
    table.remove(F_FOO, "n1")
    assert len(table) == 0
    assert F_FOO not in table


def test_remove_missing_returns_false():
    table = FilterTable()
    assert table.remove(F_FOO, "nope") is False
    table.insert(F_FOO, "n1")
    assert table.remove(F_FOO, "other") is False


def test_remove_destination_everywhere():
    table = FilterTable()
    table.insert(F_FOO, "n1")
    table.insert(F_CHEAP, "n1")
    table.insert(F_CHEAP, "n2")
    assert table.remove_destination("n1") == 2
    assert len(table) == 1


def test_contains_and_iteration():
    table = FilterTable()
    table.insert(F_FOO, "n1")
    assert F_FOO in table
    assert list(table.filters()) == [F_FOO]
    assert list(table.entries()) == [(F_FOO, ("n1",))]


def test_evaluations_counter_tracks_work():
    table = FilterTable()
    table.insert(F_FOO, "n1")
    table.insert(F_CHEAP, "n2")
    table.match(EVENT)
    table.match(EVENT)
    assert table.evaluations == 4


def test_equal_filters_built_separately_collapse():
    table = FilterTable()
    table.insert(parse_filter('symbol = "Foo"'), "n1")
    table.insert(parse_filter('symbol = "Foo"'), "n2")
    assert len(table) == 1
