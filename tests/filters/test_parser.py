"""Unit tests for the textual filter language."""

import pytest

from repro.filters.operators import (
    ALL,
    CONTAINS,
    EQ,
    EXISTS,
    GE,
    GT,
    LE,
    LT,
    NE,
    PREFIX,
)
from repro.filters.parser import FilterParseError, parse_filter


def only(filter_):
    assert len(filter_) == 1
    return filter_.constraints[0]


class TestValues:
    def test_double_quoted_string(self):
        c = only(parse_filter('symbol = "Foo"'))
        assert (c.attribute, c.operator, c.operand) == ("symbol", EQ, "Foo")

    def test_single_quoted_string(self):
        assert only(parse_filter("symbol = 'Foo'")).operand == "Foo"

    def test_escaped_quote(self):
        assert only(parse_filter(r'name = "a\"b"')).operand == 'a"b'

    def test_integer(self):
        c = only(parse_filter("year = 2002"))
        assert c.operand == 2002
        assert isinstance(c.operand, int)

    def test_float(self):
        assert only(parse_filter("price < 10.5")).operand == 10.5

    def test_negative_and_scientific(self):
        assert only(parse_filter("delta > -3.5")).operand == -3.5
        assert only(parse_filter("mass < 1e3")).operand == 1000.0

    def test_booleans(self):
        assert only(parse_filter("active = true")).operand is True
        assert only(parse_filter("active = False")).operand is False

    def test_bareword_is_string(self):
        assert only(parse_filter("status = open")).operand == "open"


class TestOperators:
    @pytest.mark.parametrize(
        "text,op",
        [
            ("a = 1", EQ), ("a == 1", EQ), ("a != 1", NE), ("a <> 1", NE),
            ("a < 1", LT), ("a <= 1", LE), ("a > 1", GT), ("a >= 1", GE),
        ],
    )
    def test_comparison_operators(self, text, op):
        assert only(parse_filter(text)).operator is op

    def test_exists(self):
        c = only(parse_filter("volume exists"))
        assert c.operator is EXISTS
        assert c.operand is None

    def test_prefix_and_contains(self):
        assert only(parse_filter('title prefix "intro"')).operator is PREFIX
        assert only(parse_filter('title contains "event"')).operator is CONTAINS

    def test_wildcard_star(self):
        c = only(parse_filter("symbol = *"))
        assert c.operator is ALL

    def test_star_with_other_operator_rejected(self):
        with pytest.raises(FilterParseError):
            parse_filter("symbol < *")


class TestConjunctions:
    def test_and_chains(self):
        f = parse_filter('class = "Stock" and symbol = "Foo" and price < 10')
        assert f.attributes() == ["class", "symbol", "price"]

    def test_case_insensitive_and(self):
        assert len(parse_filter("a = 1 AND b = 2")) == 2

    def test_matching_behaviour(self):
        f = parse_filter('symbol = "Foo" and price > 5.0')
        assert f.matches({"symbol": "Foo", "price": 10.0})
        assert not f.matches({"symbol": "Bar", "price": 10.0})


class TestSpecialFilters:
    def test_true_is_top(self):
        assert parse_filter("true").is_top
        assert parse_filter("  TRUE ").is_top

    def test_false_is_bottom(self):
        assert parse_filter("false").is_bottom


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "price <",
            "price",
            "= 5",
            "a = 1 and",
            "a = 1 b = 2",
            "a = 1 or",
            "price ? 5",
            'a = "unterminated',
        ],
    )
    def test_malformed_inputs(self, bad):
        with pytest.raises(FilterParseError):
            parse_filter(bad)

    def test_error_is_a_value_error(self):
        assert issubclass(FilterParseError, ValueError)


class TestRenderFilter:
    def test_round_trip_simple(self):
        from repro.filters.parser import render_filter

        text = 'class = "Stock" and symbol = "Foo" and price < 10.0'
        f = parse_filter(text)
        assert parse_filter(render_filter(f)) == f

    def test_round_trip_special_forms(self):
        from repro.filters.filter import Filter
        from repro.filters.parser import render_filter

        assert parse_filter(render_filter(Filter.top())).is_top
        assert parse_filter(render_filter(Filter.bottom())).is_bottom
        wild = parse_filter("a = * and b exists")
        assert parse_filter(render_filter(wild)) == wild

    def test_round_trip_disjunction(self):
        from repro.filters.parser import render_filter

        d = parse_filter('a = 1 or b = 2 and c < 3')
        assert parse_filter(render_filter(d)) == d

    def test_quotes_escaped(self):
        from repro.filters.constraints import AttributeConstraint
        from repro.filters.filter import Filter
        from repro.filters.operators import EQ
        from repro.filters.parser import render_filter

        f = Filter([AttributeConstraint("name", EQ, 'say "hi"')])
        assert parse_filter(render_filter(f)) == f

    def test_bools_and_negatives(self):
        from repro.filters.parser import render_filter

        f = parse_filter("active = true and delta > -3.5")
        assert parse_filter(render_filter(f)) == f
