"""Unit tests for the compiled bitmap matching engine.

The differential state machine (``test_differential.py``) holds
:class:`CompiledMatchEngine` to the FilterTable oracle under random
mutation interleavings; the tests here pin down the engine-specific
machinery that a black-box differential can't see — dirty-attribute
recompile granularity, slot recycling, residual-tier classification,
the batch entry point, and the numpy fast path's exact-equivalence
guarantee.
"""

import random

import pytest

from repro.filters.compiled import _BLOCK, CompiledMatchEngine, _numpy
from repro.filters.constraints import AttributeConstraint
from repro.filters.engine import CachedMatchEngine
from repro.filters.filter import Filter
from repro.filters.index import CountingIndex
from repro.filters.operators import (
    ALL,
    CONTAINS,
    EQ,
    EXISTS,
    GE,
    GT,
    LE,
    LT,
    NE,
    PREFIX,
)


def eq(attr, operand):
    return Filter([AttributeConstraint(attr, EQ, operand)])


def build(pairs):
    engine = CompiledMatchEngine(use_numpy=False)
    for filter_, destination in pairs:
        engine.insert(filter_, destination)
    return engine


class TestMatchingBasics:
    def test_equality_buckets(self):
        engine = build([(eq("symbol", "Foo"), "d1"), (eq("symbol", "Bar"), "d2")])
        assert engine.match({"symbol": "Foo"}) == [
            (eq("symbol", "Foo"), ("d1",))
        ]
        assert engine.match({"symbol": "Baz"}) == []
        assert engine.match({}) == []

    def test_bool_and_number_probes_are_distinct(self):
        # Note dataclass equality collapses eq(True) and eq(1) into ONE
        # stored filter (True == 1), identically to every other engine;
        # what must stay distinct is the *probe* side of the bucket.
        engine = build([(eq("flag", True), "d1"), (eq("flag", 2), "d2")])
        index = CountingIndex()
        index.insert(eq("flag", True), "d1")
        index.insert(eq("flag", 2), "d2")
        for probe in (True, False, 1, 1.0, 2, 2.0):
            assert engine.match({"flag": probe}) == index.match({"flag": probe})
        assert engine.match({"flag": True}) == [(eq("flag", True), ("d1",))]
        assert engine.match({"flag": 2.0}) == [(eq("flag", 2), ("d2",))]
        assert engine.match({"flag": 1}) == []

    def test_conjunction_requires_every_attribute(self):
        filter_ = Filter(
            [
                AttributeConstraint("class", EQ, "Stock"),
                AttributeConstraint("price", LT, 10.0),
            ]
        )
        engine = build([(filter_, "d1")])
        assert engine.match({"class": "Stock", "price": 5.0}) == [
            (filter_, ("d1",))
        ]
        assert engine.match({"class": "Stock", "price": 15.0}) == []
        assert engine.match({"class": "Stock"}) == []  # absence fails LT
        assert engine.match({"price": 5.0}) == []

    def test_wildcard_only_filters_always_match(self):
        top = Filter.top()
        wildcards = Filter([AttributeConstraint("a", ALL)])
        engine = build([(top, "d1"), (wildcards, "d2")])
        assert engine.match({}) == [(top, ("d1",)), (wildcards, ("d2",))]
        assert engine.match({"x": 3}) == [(top, ("d1",)), (wildcards, ("d2",))]

    def test_rejects_bottom(self):
        engine = CompiledMatchEngine(use_numpy=False)
        with pytest.raises(ValueError):
            engine.insert(Filter.bottom(), "d1")

    def test_insertion_order_preserved(self):
        filters = [eq("a", value) for value in range(5)]
        engine = build([(f, "d") for f in filters])
        exists = Filter([AttributeConstraint("a", EXISTS)])
        engine.insert(exists, "d")
        matched = [f for f, _ in engine.match({"a": 3})]
        assert matched == [eq("a", 3), exists]

    def test_residual_operators_evaluated_on_survivors(self):
        residual = Filter(
            [
                AttributeConstraint("class", EQ, "Stock"),
                AttributeConstraint("note", PREFIX, "ur"),
            ]
        )
        engine = build([(residual, "d1")])
        assert engine.residual_evaluations == 0
        assert engine.match({"class": "Stock", "note": "urgent"}) == [
            (residual, ("d1",))
        ]
        assert engine.residual_evaluations == 1
        # The indexed tier kills the candidate before the residual runs.
        assert engine.match({"class": "Bond", "note": "urgent"}) == []
        assert engine.residual_evaluations == 1

    def test_multi_constraint_group_goes_residual(self):
        interval = Filter(
            [
                AttributeConstraint("price", GT, 5.0),
                AttributeConstraint("price", LT, 10.0),
            ]
        )
        engine = build([(interval, "d1")])
        assert engine.match({"price": 7.0}) == [(interval, ("d1",))]
        assert engine.match({"price": 12.0}) == []
        assert engine.match({"price": 3.0}) == []
        assert engine.residual_evaluations > 0

    def test_ne_and_contains_go_residual(self):
        table = [
            (Filter([AttributeConstraint("a", NE, 3)]), "d1"),
            (Filter([AttributeConstraint("a", CONTAINS, "x")]), "d2"),
            (Filter([AttributeConstraint("a", EQ, (1, 2))]), "d3"),
        ]
        engine = build(table)
        assert engine.match({"a": 4}) == [(table[0][0], ("d1",))]
        assert engine.match({"a": "axe"}) == [
            (table[0][0], ("d1",)),
            (table[1][0], ("d2",)),
        ]
        # Unhashable probe values miss every equality bucket but still
        # reach the residual tier and the tuple-operand bucket is exact.
        assert engine.match({"a": [1, 2]}) == [(table[0][0], ("d1",))]
        assert engine.match({"a": (1, 2)}) == [
            (table[0][0], ("d1",)),
            (table[2][0], ("d3",)),
        ]

    def test_range_families_do_not_mix(self):
        num = Filter([AttributeConstraint("a", LT, 10)])
        text = Filter([AttributeConstraint("a", LT, "m")])
        engine = build([(num, "d1"), (text, "d2")])
        assert engine.match({"a": 5}) == [(num, ("d1",))]
        assert engine.match({"a": "k"}) == [(text, ("d2",))]
        assert engine.match({"a": True}) == []  # bools join neither family


class TestRangeTier:
    @pytest.mark.parametrize("op", [LT, LE, GT, GE])
    def test_boundary_semantics_match_counting_index(self, op):
        operands = [1, 2, 2, 3, 5.5, 8, 13, 21]
        table = [
            (Filter([AttributeConstraint("v", op, operand)]), f"d{position}")
            for position, operand in enumerate(operands)
        ]
        compiled = build(table)
        index = CountingIndex()
        for filter_, destination in table:
            index.insert(filter_, destination)
        probes = [0, 1, 2, 2.5, 3, 5.5, 8.0, 21, 22, -1, 2.0]
        for probe in probes:
            assert compiled.match({"v": probe}) == index.match({"v": probe})

    def test_block_cumulative_covers_partial_blocks(self):
        # Enough operands to span several blocks, probed at every rank so
        # each partial-block assembly path is exercised at least once.
        count = _BLOCK * 3 + 7
        table = [
            (Filter([AttributeConstraint("v", GE, position)]), f"d{position}")
            for position in range(count)
        ]
        compiled = build(table)
        index = CountingIndex()
        for filter_, destination in table:
            index.insert(filter_, destination)
        for probe in range(-1, count + 1):
            assert compiled.match({"v": probe}) == index.match({"v": probe})


class TestIncrementalRecompile:
    def test_rebuilds_only_dirty_attributes(self):
        engine = build(
            [(eq("a", value), "d") for value in range(10)]
            + [(eq("b", value), "d") for value in range(10)]
        )
        engine.match({"a": 1})
        baseline = engine.rebuilds
        assert baseline == 2  # one per attribute on first compile
        engine.insert(eq("a", 99), "d")
        engine.match({"a": 99})
        assert engine.rebuilds == baseline + 1  # only "a" recompiled
        engine.match({"b": 3})
        assert engine.rebuilds == baseline + 1  # "b" untouched, no rebuild

    def test_removal_marks_dirty(self):
        engine = build([(eq("a", 1), "d1"), (eq("a", 2), "d2")])
        assert engine.match({"a": 1}) == [(eq("a", 1), ("d1",))]
        before = engine.rebuilds
        assert engine.remove(eq("a", 1), "d1")
        assert engine.match({"a": 1}) == []
        assert engine.rebuilds == before + 1

    def test_slot_recycling_keeps_results_correct(self):
        engine = CompiledMatchEngine(use_numpy=False)
        rng = random.Random(5)
        index = CountingIndex()
        live = []
        for step in range(400):
            if rng.random() < 0.6 or not live:
                filter_ = eq("a", rng.randrange(8))
                destination = f"d{rng.randrange(4)}"
                engine.insert(filter_, destination)
                index.insert(filter_, destination)
                live.append((filter_, destination))
            else:
                filter_, destination = live.pop(rng.randrange(len(live)))
                assert engine.remove(filter_, destination) == index.remove(
                    filter_, destination
                )
            probe = {"a": rng.randrange(8)}
            assert engine.match(probe) == index.match(probe)
        assert len(engine) == len(index)

    def test_remove_destination_mirrors_counting_index(self):
        table = [
            (eq("a", 1), "d1"),
            (eq("a", 1), "d2"),
            (eq("b", 2), "d1"),
            (Filter([AttributeConstraint("c", PREFIX, "x")]), "d1"),
        ]
        engine = build(table)
        index = CountingIndex()
        for filter_, destination in table:
            index.insert(filter_, destination)
        assert engine.remove_destination("d1") == index.remove_destination("d1")
        assert engine.remove_destination("d1") == 0
        for probe in ({"a": 1}, {"b": 2}, {"c": "xy"}):
            assert engine.match(probe) == index.match(probe)


class TestBatch:
    def test_match_batch_equals_sequential(self):
        rng = random.Random(9)
        engine = build(
            [(eq("a", value % 7), f"d{value % 3}") for value in range(50)]
        )
        events = [{"a": rng.randrange(9)} for _ in range(30)]
        assert engine.match_batch(events) == [
            engine.match(event) for event in events
        ]

    def test_match_batch_on_empty_engine(self):
        engine = CompiledMatchEngine(use_numpy=False)
        assert engine.match_batch([{"a": 1}, {}]) == [[], []]

    def test_cached_wrapper_batch_preserves_memo_accounting(self):
        inner = CompiledMatchEngine(use_numpy=False)
        cached = CachedMatchEngine(inner)
        for value in range(20):
            cached.insert(eq("a", value), "d")
        events = [{"a": 1}, {"a": 2}, {"a": 1}, {"a": 3}, {"a": 1}]
        first = cached.match_batch(events)
        # Sequential semantics: 3 distinct fingerprints miss, repeats hit.
        assert cached.stats.misses == 3
        assert cached.stats.hits == 2
        second = cached.match_batch(events)
        assert second == first
        assert cached.stats.misses == 3
        assert cached.stats.hits == 7

    def test_batch_amortizes_recompile(self):
        engine = build([(eq("a", value), "d") for value in range(100)])
        events = [{"a": value % 100} for value in range(50)]
        engine.match_batch(events)
        assert engine.rebuilds == 1  # one compile for the whole run


@pytest.mark.skipif(_numpy is None, reason="numpy not installed")
class TestNumpyFastPath:
    def test_numpy_and_pure_python_agree(self):
        rng = random.Random(21)
        operators = [LT, LE, GT, GE, EQ]
        table = []
        for position in range(3 * _BLOCK):
            op = operators[position % len(operators)]
            operand = rng.choice(
                [rng.randrange(100), round(rng.uniform(0, 100), 3)]
            )
            table.append(
                (Filter([AttributeConstraint("v", op, operand)]), f"d{position}")
            )
        with_numpy = CompiledMatchEngine(use_numpy=True)
        without = CompiledMatchEngine(use_numpy=False)
        for filter_, destination in table:
            with_numpy.insert(filter_, destination)
            without.insert(filter_, destination)
        events = [
            {"v": rng.choice([rng.randrange(110), round(rng.uniform(0, 110), 3)])}
            for _ in range(60)
        ] + [{"v": "str-probe"}, {"v": True}, {}, {"v": float("nan")}]
        assert with_numpy.match_batch(events) == without.match_batch(events)

    def test_inexact_operands_fall_back(self):
        huge = 2**63 + 1  # not exactly representable as float64
        table = [
            (Filter([AttributeConstraint("v", GE, huge + offset)]), f"d{offset}")
            for offset in range(_BLOCK + 4)
        ]
        with_numpy = CompiledMatchEngine(use_numpy=True)
        without = CompiledMatchEngine(use_numpy=False)
        for filter_, destination in table:
            with_numpy.insert(filter_, destination)
            without.insert(filter_, destination)
        events = [{"v": huge + offset} for offset in range(-1, _BLOCK + 5)]
        assert with_numpy.match_batch(events) == without.match_batch(events)

    def test_default_autodetects(self):
        assert CompiledMatchEngine().use_numpy is True


def test_use_numpy_without_numpy_raises(monkeypatch):
    import repro.filters.compiled as compiled_module

    monkeypatch.setattr(compiled_module, "_numpy", None)
    assert CompiledMatchEngine().use_numpy is False
    with pytest.raises(ValueError):
        CompiledMatchEngine(use_numpy=True)


def test_evaluations_counter_moves():
    engine = build([(eq("a", 1), "d")])
    before = engine.evaluations
    engine.match({"a": 1})
    assert engine.evaluations > before


def test_repr_mentions_population():
    engine = build([(eq("a", 1), "d")])
    assert "1 filters" in repr(engine)
