"""Unit tests for disjunctive filters (Figure 2's OR level)."""

import pytest

from repro.filters.disjunction import Disjunction
from repro.filters.filter import Filter
from repro.filters.parser import FilterParseError, parse_filter


def test_parse_or_returns_disjunction():
    d = parse_filter('symbol = "A" or symbol = "B"')
    assert isinstance(d, Disjunction)
    assert len(d) == 2


def test_and_binds_tighter_than_or():
    d = parse_filter('a = 1 and b = 2 or c = 3')
    assert isinstance(d, Disjunction)
    assert [len(branch) for branch in d] == [2, 1]


def test_matching_is_any_branch():
    d = parse_filter('symbol = "A" or price < 3')
    assert d.matches({"symbol": "A", "price": 10})
    assert d.matches({"symbol": "B", "price": 1})
    assert not d.matches({"symbol": "B", "price": 10})
    assert d({"symbol": "A"})  # callable


def test_dangling_or_rejected():
    with pytest.raises(FilterParseError):
        parse_filter("a = 1 or")


def test_single_branch_parse_is_plain_filter():
    assert isinstance(parse_filter("a = 1"), Filter)


def test_nested_disjunction_flattens():
    inner = parse_filter("a = 1 or b = 2")
    outer = Disjunction([inner, parse_filter("c = 3")])
    assert len(outer) == 3


def test_empty_disjunction_rejected():
    with pytest.raises(ValueError):
        Disjunction([])


def test_immutable_and_hashable():
    d = parse_filter("a = 1 or b = 2")
    with pytest.raises(AttributeError):
        d.branches = ()
    assert d == parse_filter("a = 1 or b = 2")
    assert hash(d) == hash(parse_filter("a = 1 or b = 2"))


class TestCovering:
    def test_disjunction_covers_each_branch(self):
        d = parse_filter("a = 1 or b = 2")
        for branch in d:
            assert d.covers(branch)

    def test_disjunction_covers_stronger_filter(self):
        d = parse_filter("a = 1 or price < 10")
        assert d.covers(parse_filter("price < 5"))
        assert not d.covers(parse_filter("price < 50"))

    def test_disjunction_covers_disjunction(self):
        wide = parse_filter("price < 10 or a = 1")
        narrow = parse_filter("price < 5 or a = 1")
        assert wide.covers(narrow)
        assert not narrow.covers(wide)

    def test_covering_soundness_spot_check(self):
        wide = parse_filter('symbol = "A" or price < 10')
        narrow = parse_filter('symbol = "A" and volume > 3')
        assert wide.covers(narrow)
        for event in (
            {"symbol": "A", "volume": 5},
            {"symbol": "A", "volume": 1},
            {"symbol": "B", "price": 2, "volume": 9},
        ):
            if narrow.matches(event):
                assert wide.matches(event)


class TestSimplified:
    def test_drops_bottom_branches(self):
        d = Disjunction([Filter.bottom(), parse_filter("a = 1")])
        assert d.simplified() == parse_filter("a = 1")

    def test_all_bottom_collapses_to_bottom(self):
        d = Disjunction([Filter.bottom(), Filter.bottom()])
        assert d.simplified().matches_nothing

    def test_matches_nothing_property(self):
        assert Disjunction([Filter.bottom()]).matches_nothing
        assert not parse_filter("a = 1 or b = 2").matches_nothing

    def test_live_disjunction_stays(self):
        d = parse_filter("a = 1 or b = 2")
        assert d.simplified() == d


def test_str_and_repr():
    d = parse_filter("a = 1 or b = 2")
    assert " OR " in str(d)
    assert "Disjunction" in repr(d)
