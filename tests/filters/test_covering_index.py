"""Tests for the covering index (pruned subsumption queries).

The index's contract is exactness: every query must return precisely
what a naive pairwise ``Filter.covers`` scan over the stored set would —
the candidate pruning is a speedup, never an approximation.  The
property test drives random pools through inserts *and* removals and
compares all three query surfaces against the naive answer.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.filters.constraints import AttributeConstraint
from repro.filters.covering_index import CoveringIndex, filter_shape
from repro.filters.filter import Filter
from repro.filters.operators import (
    ALL,
    CONTAINS,
    EQ,
    EXISTS,
    GE,
    GT,
    LE,
    LT,
    NE,
    PREFIX,
)
from repro.filters.parser import parse_filter

ATTRIBUTES = ["a", "b", "c"]

values = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.sampled_from([0.5, 1.5, 2.5]),
    st.sampled_from(["", "v", "va", "vab", "w"]),
    st.booleans(),
)

nullary_ops = st.sampled_from([EXISTS, ALL])
value_ops = st.sampled_from([EQ, NE, LT, LE, GT, GE])
string_ops = st.sampled_from([PREFIX, CONTAINS])


@st.composite
def constraints(draw, attribute=None):
    attr = attribute or draw(st.sampled_from(ATTRIBUTES))
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return AttributeConstraint(attr, draw(nullary_ops))
    if kind == 1:
        return AttributeConstraint(
            attr, draw(string_ops), draw(st.sampled_from(["v", "va", "w", ""]))
        )
    return AttributeConstraint(attr, draw(value_ops), draw(values))


filters = st.lists(constraints(), min_size=0, max_size=4).map(Filter)


def naive_covered_by(pool, probe):
    return [g for g in pool if g.covers(probe)]


def naive_covers_of(pool, probe):
    return [g for g in pool if probe.covers(g)]


def naive_maximal(pool):
    return [
        f
        for f in pool
        if not any(g.covers(f) and not f.covers(g) for g in pool)
    ]


@given(
    pool=st.lists(filters, min_size=0, max_size=12),
    removals=st.lists(st.integers(min_value=0, max_value=11), max_size=6),
    probes=st.lists(filters, min_size=1, max_size=4),
)
@settings(max_examples=120)
def test_queries_agree_with_naive_pairwise(pool, removals, probes):
    index = CoveringIndex()
    stored = []
    for f in pool:
        if index.add(f):
            stored.append(f)
    for position in removals:
        if position < len(stored):
            removed = stored.pop(position)
            assert index.discard(removed)
    # Stored copies of the probes exercise the reflexive case too.
    for probe in probes + stored[:2]:
        assert index.covered_by(probe) == naive_covered_by(stored, probe)
        assert index.covers_of(probe) == naive_covers_of(stored, probe)
    assert index.maximal() == naive_maximal(stored)
    for f in stored:
        assert index.is_maximal(f) == (f in naive_maximal(stored))


def test_results_come_back_in_insertion_order():
    index = CoveringIndex()
    broad = parse_filter("a > 0")
    narrow = parse_filter("a > 2 and b = 1")
    narrower = parse_filter("a > 3 and b = 1 and c = 2")
    for f in (narrow, broad, narrower):
        index.add(f)
    assert index.covered_by(narrower) == [narrow, broad, narrower]
    assert index.covers_of(broad) == [narrow, broad, narrower]
    assert index.maximal() == [broad]


def test_bottom_filter_edges():
    index = CoveringIndex()
    bottom = Filter.bottom()
    assert bottom.matches_nothing
    top = Filter([])
    assert index.add(bottom)
    assert index.add(top)
    # Everything covers fF; fF covers only fF.
    assert index.covered_by(bottom) == [bottom, top]
    assert index.covers_of(bottom) == [bottom]
    # fF never covers a satisfiable filter, so it is not among top's
    # covers; top covers both.
    assert index.covered_by(top) == [top]
    assert index.covers_of(top) == [bottom, top]
    assert index.maximal() == [top]
    assert index.discard(bottom)
    assert index.maximal() == [top]


def test_add_and_discard_are_idempotent():
    index = CoveringIndex()
    f = parse_filter('a = "x"')
    assert index.add(f)
    assert not index.add(f)
    assert len(index) == 1
    assert f in index
    assert index.discard(f)
    assert not index.discard(f)
    assert f not in index
    assert index.maximal() == []


def test_is_maximal_requires_membership():
    index = CoveringIndex()
    with pytest.raises(KeyError):
        index.is_maximal(parse_filter("a = 1"))


def test_maximal_keeps_equivalent_filters():
    """Mutually covering filters are both maximal (no strict cover)."""
    index = CoveringIndex()
    f = parse_filter("a = 1")
    g = Filter(
        [AttributeConstraint("a", EQ, 1), AttributeConstraint("b", ALL)]
    )
    assert f.covers(g) and g.covers(f) and f != g
    index.add(f)
    index.add(g)
    assert index.maximal() == [f, g]


def test_shape_helper():
    f = Filter(
        [AttributeConstraint("a", EQ, 1), AttributeConstraint("b", ALL)]
    )
    assert filter_shape(f) == frozenset({"a"})
    assert filter_shape(Filter([])) == frozenset()


def test_pruning_actually_prunes():
    """On an equality-bucketed population, verification touches a small
    fraction of the stored filters."""
    index = CoveringIndex()
    stored = []
    for i in range(200):
        f = parse_filter(f'a = "v{i % 50}" and b < {i % 7}')
        if index.add(f):
            stored.append(f)
    index.covers_checks = 0
    probe = parse_filter('a = "v3" and b < 3')
    assert index.covered_by(probe) == naive_covered_by(stored, probe)
    assert index.covers_checks < len(stored) // 4
