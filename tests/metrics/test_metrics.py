"""Unit tests for the §5.1 metrics: LC, RLC, MR."""

import pytest

from repro.metrics.counters import NodeCounters
from repro.metrics.load import load_complexity, mean, relative_load_complexity
from repro.metrics.matching import (
    average_matching_rate,
    matching_rate,
    matching_rates,
)


def make_counters(received=0, matched=0, filters=0):
    counters = NodeCounters()
    counters.set_filters_held(filters)
    for i in range(received):
        counters.on_event(matched=i < matched, forwarded_to=0, evaluations=filters)
    return counters


class TestCounters:
    def test_on_event_updates_everything(self):
        counters = NodeCounters()
        counters.set_filters_held(3)
        counters.on_event(matched=True, forwarded_to=2, evaluations=3)
        counters.on_event(matched=False, forwarded_to=0, evaluations=3)
        assert counters.events_received == 2
        assert counters.events_matched == 1
        assert counters.events_forwarded == 2
        assert counters.filter_evaluations == 6

    def test_max_filters_gauge(self):
        counters = NodeCounters()
        counters.set_filters_held(5)
        counters.set_filters_held(2)
        assert counters.filters_held == 2
        assert counters.max_filters_held == 5

    def test_snapshot(self):
        counters = make_counters(received=4, matched=2, filters=3)
        snap = counters.snapshot()
        assert snap["events_received"] == 4
        assert snap["events_matched"] == 2
        assert snap["filters_held"] == 3


class TestLoadComplexity:
    def test_lc_formula(self):
        counters = make_counters(received=10, filters=5)
        assert load_complexity(counters) == 50.0

    def test_lc_with_explicit_filter_count(self):
        counters = make_counters(received=10, filters=5)
        assert load_complexity(counters, filters_held=2) == 20.0

    def test_rlc_formula(self):
        counters = make_counters(received=10, filters=5)
        rlc = relative_load_complexity(counters, total_events=10, total_subscriptions=50)
        assert rlc == pytest.approx(0.1)

    def test_centralized_server_definition(self):
        """A node receiving all events with all subscriptions: RLC = 1."""
        counters = make_counters(received=100, filters=40)
        assert relative_load_complexity(counters, 100, 40) == 1.0

    def test_rlc_requires_positive_totals(self):
        counters = make_counters(received=1, filters=1)
        with pytest.raises(ValueError):
            relative_load_complexity(counters, 0, 10)
        with pytest.raises(ValueError):
            relative_load_complexity(counters, 10, 0)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0


class TestMatchingRate:
    def test_mr_formula(self):
        assert matching_rate(make_counters(received=10, matched=9)) == 0.9

    def test_mr_of_idle_node_is_zero(self):
        assert matching_rate(NodeCounters()) == 0.0

    def test_matching_rates_series(self):
        series = matching_rates(
            [make_counters(10, 5), make_counters(10, 10)]
        )
        assert series == [0.5, 1.0]

    def test_average_skips_idle_by_default(self):
        counters = [make_counters(10, 10), NodeCounters()]
        assert average_matching_rate(counters) == 1.0

    def test_average_can_include_idle(self):
        counters = [make_counters(10, 10), NodeCounters()]
        assert average_matching_rate(counters, skip_idle=False) == 0.5

    def test_average_of_nothing_is_zero(self):
        assert average_matching_rate([]) == 0.0
        assert average_matching_rate([NodeCounters()]) == 0.0
