"""Tests for delivery-latency metrics."""

import pytest

from repro.core.engine import MultiStageEventSystem
from repro.metrics.latency import combined, percentile, summarize


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_p99_small_sample(self):
        assert percentile([1.0, 2.0], 0.99) == 2.0

    def test_zero_fraction_is_minimum(self):
        assert percentile([5.0, 1.0, 3.0], 0.0) == 1.0

    def test_one_is_maximum(self):
        assert percentile([5.0, 1.0, 3.0], 1.0) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.p50 == 2.0
        assert summary.maximum == 4.0

    def test_empty_is_zeros(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_combined(self):
        summary = combined([[1.0], [2.0, 3.0]])
        assert summary.count == 3
        assert summary.maximum == 3.0

    def test_str(self):
        assert "n=2" in str(summarize([1.0, 2.0]))

    def test_empty_renders_no_deliveries_not_zero_latency(self):
        # Regression: an empty sample used to render like a perfect
        # zero-latency run; it must announce itself instead.
        assert str(summarize([])) == "n=0 (no deliveries)"
        assert "mean" not in str(summarize([]))


class Ping:
    def get_target(self):
        return "x"


def test_end_to_end_latency_equals_hop_count_times_link_latency():
    latency = 0.01
    system = MultiStageEventSystem(
        stage_sizes=(2, 2, 1), seed=4, link_latency=latency
    )
    system.advertise("Ping", schema=("class", "target"))
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, 'class = "Ping"')
    system.drain()
    publisher.publish(Ping())
    system.drain()
    # publisher -> root -> stage2 -> stage1 -> subscriber: 4 hops.
    assert subscriber.delivery_latencies == [pytest.approx(4 * latency)]


def test_latency_recorded_only_for_matching_events():
    system = MultiStageEventSystem(stage_sizes=(2, 1), seed=4)
    system.advertise("Ping", schema=("class", "target"))
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, 'class = "Ping" and target = "nothing"')
    system.drain()
    publisher.publish(Ping())
    system.drain()
    assert subscriber.delivery_latencies == []
