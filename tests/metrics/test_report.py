"""Unit tests for the plain-text report renderers."""

from repro.metrics.report import format_number, render_series, render_table


class TestFormatNumber:
    def test_integers_verbatim(self):
        assert format_number(42) == "42"

    def test_zero(self):
        assert format_number(0) == "0"
        assert format_number(0.0) == "0"

    def test_small_values_scientific(self):
        assert format_number(2e-7) == "2.00e-07"

    def test_ordinary_floats_compact(self):
        assert format_number(0.8712) == "0.8712"

    def test_strings_pass_through(self):
        assert format_number("-") == "-"

    def test_bools(self):
        assert format_number(True) == "True"


class TestRenderTable:
    def test_columns_align(self):
        table = render_table(
            ["Stage", "RLC"], [[0, 2e-7], [1, 2e-4], [3, 0.02]]
        )
        lines = table.splitlines()
        assert len(lines) == 5
        assert lines[0].startswith("Stage")
        header_rlc = lines[0].index("RLC")
        for line in lines[2:]:
            assert line[header_rlc] not in (" ",)

    def test_values_present(self):
        table = render_table(["a"], [[123456]])
        assert "123456" in table


class TestRenderSeries:
    def test_summary_statistics(self):
        text = render_series("MR", [("level 0", [0.5, 1.0, 0.75])])
        assert "min=0.5" in text
        assert "max=1" in text
        assert "n=3" in text

    def test_empty_series(self):
        assert "(empty)" in render_series("MR", [("level 0", [])])

    def test_long_series_downsampled(self):
        text = render_series("MR", [("s", [float(i) for i in range(500)])], width=40)
        strip = text.splitlines()[-1]
        assert len(strip.strip()) <= 44

    def test_constant_series_no_crash(self):
        text = render_series("MR", [("s", [1.0, 1.0, 1.0])])
        assert "mean=1" in text
