"""Exact reproduction of the paper's Example 5 (Section 4).

Four subscriber filters over two event classes are weakened stage by
stage: f1..f4 -> g1..g3 (stage 1) -> h1..h3 (stage 2) -> i1, i2 (stage
3).  We reproduce every intermediate filter the paper lists, using the
automated weakening (Gc prefix truncation, §4.1) combined with covering
merges for the stage-1 bound relaxation (g1 covering f1 and f2).
"""

from repro.core.stages import AttributeStageAssociation
from repro.core.weakening import merge_covering, weaken_filter
from repro.filters.parser import parse_filter

STOCK_SCHEMA = ("class", "symbol", "price")
# For Stock, stage 1 keeps all three attributes (g1/g2 still bound price);
# stage 2 keeps class+symbol (h1/h2); stage 3 keeps class only (i1).
STOCK_ASSOC = AttributeStageAssociation.from_prefixes(STOCK_SCHEMA, [3, 3, 2, 1])

AUCTION_SCHEMA = ("class", "product", "kind", "capacity", "price")
# Example 6's G_Auction: stage prefixes 5, 4, 3, 1.
AUCTION_ASSOC = AttributeStageAssociation.from_prefixes(
    AUCTION_SCHEMA, [5, 4, 3, 1]
)

F1 = parse_filter('class = "Stock" and symbol = "DEF" and price < 10.0')
F2 = parse_filter('class = "Stock" and symbol = "DEF" and price < 11.0')
F3 = parse_filter('class = "Stock" and symbol = "GHI" and price < 8.0')
F4 = parse_filter(
    'class = "Auction" and product = "Vehicle" and kind = "Car" '
    "and capacity < 2000 and price < 10000"
)

G1 = parse_filter('class = "Stock" and symbol = "DEF" and price < 11.0')
G2 = parse_filter('class = "Stock" and symbol = "GHI" and price < 8.0')
G3 = parse_filter(
    'class = "Auction" and product = "Vehicle" and kind = "Car" '
    "and capacity < 2000"
)

H1 = parse_filter('class = "Stock" and symbol = "DEF"')
H2 = parse_filter('class = "Stock" and symbol = "GHI"')
H3 = parse_filter('class = "Auction" and product = "Vehicle" and kind = "Car"')

I1 = parse_filter('class = "Stock"')
I2 = parse_filter('class = "Auction"')


def stage1_filters():
    """Stage 1: weaken per Gc, then merge covering filters (g1 <- f1, f2)."""
    stock = merge_covering(
        [weaken_filter(f, STOCK_ASSOC, 1) for f in (F1, F2, F3)]
    )
    auction = [weaken_filter(F4, AUCTION_ASSOC, 1)]
    return stock + auction


class TestStage1:
    def test_g_filters_reproduced(self):
        produced = stage1_filters()
        assert len(produced) == 3
        assert G1 in produced
        assert G2 in produced
        assert G3 in produced

    def test_g1_covers_f1_and_f2(self):
        assert G1.covers(F1)
        assert G1.covers(F2)

    def test_g2_covers_f3_and_g3_covers_f4(self):
        assert G2.covers(F3)
        assert G3.covers(F4)

    def test_fewer_filters_than_user_level(self):
        assert len(stage1_filters()) < 4


class TestStage2:
    def test_h_filters_reproduced(self):
        assert weaken_filter(G1, STOCK_ASSOC, 2) == H1
        assert weaken_filter(G2, STOCK_ASSOC, 2) == H2
        assert weaken_filter(G3, AUCTION_ASSOC, 2) == H3

    def test_h_filters_cover_g_filters(self):
        assert H1.covers(G1)
        assert H2.covers(G2)
        assert H3.covers(G3)


class TestStage3:
    def test_i_filters_reproduced(self):
        assert weaken_filter(H1, STOCK_ASSOC, 3) == I1
        assert weaken_filter(H2, STOCK_ASSOC, 3) == I1
        assert weaken_filter(H3, AUCTION_ASSOC, 3) == I2

    def test_stage3_collapses_to_type_filters(self):
        produced = {
            weaken_filter(h, STOCK_ASSOC if "Stock" in str(h) else AUCTION_ASSOC, 3)
            for h in (H1, H2, H3)
        }
        assert produced == {I1, I2}


class TestEndToEndCovering:
    """Every stage covers everything below it — the Proposition-1 chain."""

    def test_full_ladders(self):
        ladders = [
            (F1, G1, H1, I1),
            (F2, G1, H1, I1),
            (F3, G2, H2, I1),
            (F4, G3, H3, I2),
        ]
        for ladder in ladders:
            for higher_index in range(1, len(ladder)):
                for lower_index in range(higher_index):
                    assert ladder[higher_index].covers(ladder[lower_index]), (
                        f"{ladder[higher_index]} should cover {ladder[lower_index]}"
                    )

    def test_matching_is_consistent_along_the_ladder(self):
        stock_event = {
            "class": "Stock", "symbol": "DEF", "price": 9.5, "volume": 100,
        }
        assert F1.matches(stock_event)
        for filter_ in (G1, H1, I1):
            assert filter_.matches(stock_event)

    def test_paper_remark_g1_covers_f1_derivative(self):
        """'we can now ignore filter f1 (and its derivative) and keep only
        g1' — f1's stage-1 weakening is covered by g1."""
        assert G1.covers(weaken_filter(F1, STOCK_ASSOC, 1))
