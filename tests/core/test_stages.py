"""Unit tests for attribute generality and the Gc association (§4.1)."""

import pytest

from repro.core.stages import AttributeStageAssociation, rank_by_generality

SCHEMA = ("class", "product", "kind", "capacity", "price")


class TestRankByGenerality:
    def test_smallest_domain_is_most_general(self):
        order = rank_by_generality({"title": 10000, "year": 30, "author": 2000})
        assert order == ["year", "author", "title"]

    def test_ties_break_alphabetically(self):
        assert rank_by_generality({"b": 5, "a": 5}) == ["a", "b"]

    def test_empty(self):
        assert rank_by_generality({}) == []


class TestConstruction:
    def test_example6_prefixes(self):
        assoc = AttributeStageAssociation.from_prefixes(SCHEMA, [5, 4, 3, 1])
        assert assoc.attributes_for_stage(0) == SCHEMA
        assert assoc.attributes_for_stage(1) == SCHEMA[:4]
        assert assoc.attributes_for_stage(2) == SCHEMA[:3]
        assert assoc.attributes_for_stage(3) == ("class",)

    def test_uniform_drops_one_per_stage(self):
        assoc = AttributeStageAssociation.uniform(("a", "b", "c", "d"), stages=4)
        assert [len(assoc.attributes_for_stage(i)) for i in range(4)] == [4, 3, 2, 1]

    def test_uniform_never_drops_below_one(self):
        assoc = AttributeStageAssociation.uniform(("a", "b"), stages=4)
        assert assoc.attributes_for_stage(3) == ("a",)

    def test_stage0_must_be_full_schema(self):
        with pytest.raises(ValueError):
            AttributeStageAssociation(("a", "b"), [("a",), ("a",)])

    def test_non_prefix_rejected(self):
        with pytest.raises(ValueError):
            AttributeStageAssociation(("a", "b"), [("a", "b"), ("b",)])

    def test_growing_stage_rejected(self):
        with pytest.raises(ValueError):
            AttributeStageAssociation.from_prefixes(("a", "b", "c"), [3, 1, 2])

    def test_duplicate_schema_rejected(self):
        with pytest.raises(ValueError):
            AttributeStageAssociation.from_prefixes(("a", "a"), [2, 1])

    def test_out_of_range_prefix_rejected(self):
        with pytest.raises(ValueError):
            AttributeStageAssociation.from_prefixes(("a", "b"), [2, 5])

    def test_at_least_one_stage(self):
        with pytest.raises(ValueError):
            AttributeStageAssociation(("a",), [])
        with pytest.raises(ValueError):
            AttributeStageAssociation.uniform(("a",), stages=0)


class TestQueries:
    @pytest.fixture()
    def assoc(self):
        return AttributeStageAssociation.from_prefixes(SCHEMA, [5, 4, 3, 1])

    def test_num_stages_and_top(self, assoc):
        assert assoc.num_stages == 4
        assert assoc.top_stage == 3

    def test_stage_beyond_top_degrades_to_top(self, assoc):
        assert assoc.attributes_for_stage(99) == ("class",)

    def test_negative_stage_rejected(self, assoc):
        with pytest.raises(ValueError):
            assoc.attributes_for_stage(-1)

    def test_top_stage_using(self, assoc):
        assert assoc.top_stage_using("class") == 3
        assert assoc.top_stage_using("kind") == 2
        assert assoc.top_stage_using("capacity") == 1
        assert assoc.top_stage_using("price") == 0
        assert assoc.top_stage_using("unknown") == -1

    def test_stages_iteration_and_dict(self, assoc):
        stages = dict(assoc.stages())
        assert stages == assoc.as_dict()
        assert stages[3] == ("class",)

    def test_equality_and_hash(self, assoc):
        same = AttributeStageAssociation.from_prefixes(SCHEMA, [5, 4, 3, 1])
        other = AttributeStageAssociation.from_prefixes(SCHEMA, [5, 4, 2, 1])
        assert assoc == same
        assert hash(assoc) == hash(same)
        assert assoc != other

    def test_repr(self, assoc):
        assert "prefixes=[5, 4, 3, 1]" in repr(assoc)
