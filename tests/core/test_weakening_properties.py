"""Property-based tests (hypothesis) for stage weakening: Propositions 1-2."""

import hypothesis.strategies as st
from hypothesis import given

from repro.core.stages import AttributeStageAssociation
from repro.core.weakening import weaken_event, weaken_filter, weakening_chain
from repro.events.base import PropertyEvent
from repro.filters.constraints import AttributeConstraint
from repro.filters.filter import Filter, event_covers
from repro.filters.operators import ALL, EQ, GE, GT, LE, LT

SCHEMA = ("w", "x", "y", "z")

values = st.one_of(
    st.integers(min_value=0, max_value=9),
    st.sampled_from(["a", "b", "c"]),
)


@st.composite
def associations(draw):
    lengths = [4]
    current = 4
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        current = draw(st.integers(min_value=1, max_value=current))
        lengths.append(current)
    return AttributeStageAssociation.from_prefixes(SCHEMA, lengths)


@st.composite
def schema_filters(draw):
    constraints = []
    for attribute in SCHEMA:
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            constraints.append(AttributeConstraint(attribute, ALL))
        elif kind == 1:
            constraints.append(
                AttributeConstraint(attribute, EQ, draw(values))
            )
        else:
            op = draw(st.sampled_from([LT, LE, GT, GE]))
            constraints.append(
                AttributeConstraint(attribute, op, draw(st.integers(0, 9)))
            )
    return Filter(constraints)


@st.composite
def schema_events(draw):
    return PropertyEvent({attribute: draw(values) for attribute in SCHEMA})


@given(f=schema_filters(), assoc=associations(), e=schema_events())
def test_proposition1_weakened_filters_cover_originals(f, assoc, e):
    """Every stage's weakening may pre-filter for the original: no event
    the original accepts is ever dropped upstream."""
    for stage in range(assoc.num_stages):
        weakened = weaken_filter(f, assoc, stage)
        assert weakened.covers(f)
        if f.matches(e):
            assert weakened.matches(e)


@given(f=schema_filters(), assoc=associations())
def test_chain_is_monotone(f, assoc):
    chain = weakening_chain(f, assoc)
    for higher in range(1, len(chain)):
        assert chain[higher].covers(chain[higher - 1])


@given(f=schema_filters(), assoc=associations(), e=schema_events())
def test_proposition2_coordinated_event_weakening(f, assoc, e):
    """The stage-s weakened event covers the original for every stage-s
    weakened filter (the coordination requirement of Prop. 2)."""
    for stage in range(assoc.num_stages):
        weakened_filter = weaken_filter(f, assoc, stage)
        weakened_event = weaken_event(e, assoc, stage)
        assert event_covers(weakened_event, e, weakened_filter)
        # And the match outcome is identical, not merely covering:
        assert weakened_filter.matches(weakened_event) == weakened_filter.matches(e)


@given(f=schema_filters(), assoc=associations())
def test_top_stage_keeps_most_general_attributes_only(f, assoc):
    top = weaken_filter(f, assoc, assoc.top_stage)
    allowed = set(assoc.attributes_for_stage(assoc.top_stage))
    assert set(top.attributes()) <= allowed
