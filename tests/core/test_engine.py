"""Unit tests for the MultiStageEventSystem facade."""

import pytest

from repro.core.engine import MultiStageEventSystem
from repro.filters.parser import parse_filter

STOCK_SCHEMA = ("class", "symbol", "price")


class Stock:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


class TechStock(Stock):
    def get_sector(self):
        return "tech"


def make_system(**kwargs):
    defaults = dict(stage_sizes=(4, 2, 1), seed=1)
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.register_type(Stock)
    system.advertise("Stock", schema=STOCK_SCHEMA)
    return system


def test_invalid_engine_rejected():
    with pytest.raises(ValueError):
        MultiStageEventSystem(engine="magic")


def test_publish_subscribe_round_trip():
    system = make_system()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = []
    system.subscribe(
        subscriber, 'class = "Stock" and price < 10.0',
        handler=lambda e, m, s: got.append(e.get_price()),
    )
    system.drain()
    publisher.publish(Stock("Foo", 9.0))
    publisher.publish(Stock("Foo", 11.0))
    system.drain()
    assert got == [9.0]


def test_table_engine_behaves_identically():
    for engine in ("index", "table"):
        system = make_system(engine=engine)
        publisher = system.create_publisher()
        subscriber = system.create_subscriber()
        got = []
        system.subscribe(
            subscriber, 'class = "Stock" and symbol = "A"',
            handler=lambda e, m, s: got.append(e.get_symbol()),
        )
        system.drain()
        publisher.publish(Stock("A", 1.0))
        publisher.publish(Stock("B", 1.0))
        system.drain()
        assert got == ["A"], engine


def test_filter_objects_and_none_filters():
    system = make_system()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = []
    system.subscribe(
        subscriber, parse_filter('class = "Stock"'),
        handler=lambda e, m, s: got.append("f"),
    )
    system.subscribe(
        subscriber, None, event_class="Stock",
        handler=lambda e, m, s: got.append("n"),
    )
    system.drain()
    publisher.publish(Stock("X", 1.0))
    system.drain()
    assert sorted(got) == ["f", "n"]


def test_event_class_inferred_from_class_constraint():
    system = make_system()
    subs = system.subscribe(
        system.create_subscriber(), 'class = "Stock" and price < 5'
    )
    assert subs[0].event_class == "Stock"


def test_event_class_required_without_class_constraint():
    system = make_system()
    with pytest.raises(ValueError):
        system.subscribe(system.create_subscriber(), "price < 5")


def test_subscribing_to_unadvertised_class_raises():
    system = make_system()
    with pytest.raises(KeyError):
        system.subscribe(system.create_subscriber(), None, event_class="Ghost")


def test_residual_predicate_applied_at_edge():
    system = make_system()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = []
    system.subscribe(
        subscriber, 'class = "Stock" and price < 10',
        residual=lambda stock: stock.get_symbol() != "Skip",
        handler=lambda e, m, s: got.append(e.get_symbol()),
    )
    system.drain()
    publisher.publish(Stock("Keep", 5.0))
    publisher.publish(Stock("Skip", 5.0))
    system.drain()
    assert got == ["Keep"]


class TestTypeBasedSubscription:
    def test_expands_over_existing_conformers(self):
        system = make_system()
        system.register_type(TechStock)
        system.advertise("TechStock", schema=STOCK_SCHEMA)
        subscriber = system.create_subscriber()
        subs = system.subscribe(subscriber, event_class=Stock)
        assert {s.event_class for s in subs} == {"Stock", "TechStock"}

    def test_future_subtypes_auto_subscribe(self):
        system = make_system()
        publisher = system.create_publisher()
        subscriber = system.create_subscriber()
        got = []
        system.subscribe(
            subscriber, event_class=Stock,
            handler=lambda e, m, s: got.append(m["class"]),
        )
        system.drain()
        # The publisher extends the hierarchy afterwards.
        system.register_type(TechStock)
        system.advertise("TechStock", schema=STOCK_SCHEMA)
        system.drain()
        publisher.publish(TechStock("NVDA", 100.0))
        system.drain()
        assert got == ["TechStock"]

    def test_unrelated_advertisements_do_not_expand(self):
        system = make_system()

        class Auction:
            def get_item(self):
                return "x"

        system.register_type(Auction)
        subscriber = system.create_subscriber()
        subs = system.subscribe(subscriber, event_class=Stock)
        before = len(subscriber.subscriptions())
        system.advertise("Auction", schema=("class", "item"))
        assert len(subscriber.subscriptions()) == before
        assert len(subs) == 1

    def test_filter_applies_to_all_conformers(self):
        system = make_system()
        system.register_type(TechStock)
        system.advertise("TechStock", schema=STOCK_SCHEMA)
        publisher = system.create_publisher()
        subscriber = system.create_subscriber()
        got = []
        system.subscribe(
            subscriber, "price < 10", event_class=Stock,
            handler=lambda e, m, s: got.append((m["class"], m["price"])),
        )
        system.drain()
        publisher.publish(Stock("A", 5.0))
        publisher.publish(TechStock("B", 5.0))
        publisher.publish(TechStock("C", 50.0))
        system.drain()
        assert sorted(got) == [("Stock", 5.0), ("TechStock", 5.0)]


def test_counters_by_stage_has_all_stages():
    system = make_system()
    counters = system.counters_by_stage()
    assert sorted(counters) == [0, 1, 2, 3]
    assert len(counters[1]) == 4
    assert len(counters[3]) == 1


def test_totals():
    system = make_system()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    system.subscribe(subscriber, None, event_class="Stock")
    system.drain()
    publisher.publish(Stock("X", 1.0))
    system.drain()
    assert system.total_events_published() == 1
    assert system.total_subscriptions() == 1


def test_run_for_advances_time():
    system = make_system()
    start = system.sim.now
    system.run_for(5.0)
    assert system.sim.now == start + 5.0


def test_repr():
    assert "publishers" in repr(make_system())
