"""Unit tests for filter/event weakening and covering merges (§3.3, §4.1)."""

from repro.core.stages import AttributeStageAssociation
from repro.core.weakening import (
    merge_covering,
    weaken_event,
    weaken_filter,
    weakening_chain,
)
from repro.events.base import PropertyEvent
from repro.filters.filter import Filter
from repro.filters.parser import parse_filter

SCHEMA = ("class", "symbol", "price")
ASSOC = AttributeStageAssociation.from_prefixes(SCHEMA, [3, 2, 1])

F1 = parse_filter('class = "Stock" and symbol = "DEF" and price < 10.0')


class TestWeakenFilter:
    def test_stage_zero_is_identity(self):
        assert weaken_filter(F1, ASSOC, 0) == F1

    def test_stage_one_drops_price(self):
        weakened = weaken_filter(F1, ASSOC, 1)
        assert weakened.attributes() == ["class", "symbol"]

    def test_stage_two_keeps_only_class(self):
        weakened = weaken_filter(F1, ASSOC, 2)
        assert weakened.attributes() == ["class"]

    def test_every_weakening_covers_the_original(self):
        for stage in range(3):
            assert weaken_filter(F1, ASSOC, stage).covers(F1)

    def test_wildcards_dropped_by_default(self):
        f = parse_filter('class = "Stock" and symbol = *')
        weakened = weaken_filter(f, ASSOC, 1)
        assert weakened.attributes() == ["class"]

    def test_wildcards_kept_on_request(self):
        f = parse_filter('class = "Stock" and symbol = *')
        weakened = weaken_filter(f, ASSOC, 1, keep_wildcards=True)
        assert weakened.attributes() == ["class", "symbol"]

    def test_bottom_passes_through(self):
        assert weaken_filter(Filter.bottom(), ASSOC, 1).is_bottom


class TestWeakeningChain:
    def test_chain_length_equals_stages(self):
        chain = weakening_chain(F1, ASSOC)
        assert len(chain) == 3

    def test_chain_is_monotonically_weaker(self):
        chain = weakening_chain(F1, ASSOC)
        for higher in range(len(chain)):
            for lower in range(higher):
                assert chain[higher].covers(chain[lower])

    def test_chain_standardizes_partial_filters(self):
        partial = parse_filter('class = "Stock" and price < 10')
        chain = weakening_chain(partial, ASSOC)
        # Stage 0 holds the standard form with wildcards stripped (a
        # matching-equivalent filter): schema order, symbol dropped.
        assert chain[0].attributes() == ["class", "price"]
        assert chain[0].covers(partial) and partial.covers(chain[0])

    def test_chain_without_standardization(self):
        partial = parse_filter('class = "Stock" and price < 10')
        chain = weakening_chain(partial, ASSOC, schema_standardize=False)
        assert chain[0] == partial


class TestWeakenEvent:
    def test_keeps_stage_attributes_only(self):
        event = PropertyEvent({"class": "Stock", "symbol": "DEF", "price": 9.0})
        weakened = weaken_event(event, ASSOC, 1)
        assert dict(weakened) == {"class": "Stock", "symbol": "DEF"}

    def test_proposition2_coordination(self):
        """Weakened events cover originals for every same-stage-weakened
        filter: the stage-s filter never probes attributes the stage-s
        event dropped."""
        event = PropertyEvent({"class": "Stock", "symbol": "DEF", "price": 9.0})
        for stage in range(3):
            f_weak = weaken_filter(F1, ASSOC, stage)
            e_weak = weaken_event(event, ASSOC, stage)
            assert f_weak.matches(e_weak) == f_weak.matches(event)


class TestMergeCovering:
    def test_example5_g1_merge(self):
        """f1 and f2 of Example 5 merge into g1 (the weaker price bound)."""
        f1 = parse_filter('class = "Stock" and symbol = "DEF" and price < 10.0')
        f2 = parse_filter('class = "Stock" and symbol = "DEF" and price < 11.0')
        merged = merge_covering([f1, f2])
        assert len(merged) == 1
        g1 = merged[0]
        assert g1.covers(f1) and g1.covers(f2)
        assert g1.constraints_on("price")[0].operand == 11.0

    def test_different_rigid_parts_do_not_merge(self):
        f1 = parse_filter('symbol = "DEF" and price < 10')
        f3 = parse_filter('symbol = "GHI" and price < 8')
        assert len(merge_covering([f1, f3])) == 2

    def test_lower_bounds_take_the_loosest(self):
        a = parse_filter('symbol = "X" and price > 5')
        b = parse_filter('symbol = "X" and price > 2')
        merged = merge_covering([a, b])
        assert len(merged) == 1
        assert merged[0].constraints_on("price")[0].operand == 2

    def test_two_sided_bounds(self):
        a = parse_filter('symbol = "X" and price > 2 and price < 10')
        b = parse_filter('symbol = "X" and price > 4 and price < 12')
        merged = merge_covering([a, b])
        assert len(merged) == 1
        assert merged[0].covers(a) and merged[0].covers(b)

    def test_member_without_bound_drops_the_bound(self):
        bounded = parse_filter('symbol = "X" and price < 10')
        unbounded = parse_filter('symbol = "X"')
        merged = merge_covering([bounded, unbounded])
        assert len(merged) == 1
        assert merged[0].constraints_on("price") == ()
        assert merged[0].covers(bounded) and merged[0].covers(unbounded)

    def test_le_at_equal_value_is_weaker_than_lt(self):
        lt = parse_filter('symbol = "X" and price < 10')
        le = parse_filter('symbol = "X" and price <= 10')
        merged = merge_covering([lt, le])
        assert len(merged) == 1
        assert merged[0].covers(lt) and merged[0].covers(le)
        constraint = merged[0].constraints_on("price")[0]
        assert constraint.operator.symbol == "<="

    def test_incomparable_bounds_dropped_not_crashed(self):
        numeric = parse_filter('symbol = "X" and price < 10')
        stringy = parse_filter('symbol = "X" and price < "ten"')
        merged = merge_covering([numeric, stringy])
        assert len(merged) == 1
        assert merged[0].covers(numeric) and merged[0].covers(stringy)

    def test_bottom_passes_through(self):
        merged = merge_covering([Filter.bottom(), parse_filter("a = 1")])
        assert Filter.bottom() in merged

    def test_empty_input(self):
        assert merge_covering([]) == []

    def test_identical_filters_merge_to_one(self):
        f = parse_filter('symbol = "X" and price < 10')
        assert len(merge_covering([f, f, f])) == 1
