"""Unit tests for advertisements and the advertisement registry."""

import pytest

from repro.core.advertisement import Advertisement, AdvertisementRegistry
from repro.core.stages import AttributeStageAssociation
from repro.filters.parser import parse_filter
from repro.filters.standard import wildcard_attributes

STOCK = Advertisement(
    "Stock",
    AttributeStageAssociation.from_prefixes(("class", "symbol", "price"), [3, 2, 1]),
)
BIB = Advertisement(
    "BibRecord",
    AttributeStageAssociation.uniform(("year", "conference", "author", "title"), 4),
)


class TestAdvertisement:
    def test_schema_comes_from_association(self):
        assert STOCK.schema == ("class", "symbol", "price")

    def test_class_filter(self):
        f = STOCK.class_filter()
        assert f.matches({"class": "Stock"})
        assert not f.matches({"class": "Auction"})

    def test_standardize_fills_wildcards(self):
        standard = STOCK.standardize(parse_filter('symbol = "Foo"'))
        assert standard.attributes() == ["class", "symbol", "price"]
        assert wildcard_attributes(standard) == ["price"]

    def test_standardize_defaults_class_to_equality(self):
        """Subscribing through an advertisement pins the class, never a
        class wildcard — that is what makes i1-style root filters work."""
        standard = STOCK.standardize(parse_filter("price < 10"))
        class_constraint = standard.constraints_on("class")[0]
        assert class_constraint.operand == "Stock"
        assert not standard.matches({"class": "Other", "symbol": "X", "price": 5})

    def test_standardize_keeps_explicit_class_constraint(self):
        standard = STOCK.standardize(parse_filter('class = "Stock" and price < 10'))
        assert standard.constraints_on("class")[0].operand == "Stock"

    def test_standardize_without_class_in_schema(self):
        standard = BIB.standardize(parse_filter("year = 2002"))
        assert standard.attributes() == list(BIB.schema)
        assert "class" not in standard.attributes()

    def test_standardize_rejects_foreign_attributes(self):
        with pytest.raises(ValueError):
            STOCK.standardize(parse_filter("volume > 100"))


class TestRegistry:
    def test_add_and_get(self):
        registry = AdvertisementRegistry()
        assert registry.add(STOCK) is True
        assert registry.get("Stock") is STOCK
        assert "Stock" in registry
        assert len(registry) == 1

    def test_readding_same_is_not_a_change(self):
        registry = AdvertisementRegistry()
        registry.add(STOCK)
        assert registry.add(STOCK) is False

    def test_updated_association_is_a_change(self):
        registry = AdvertisementRegistry()
        registry.add(STOCK)
        updated = Advertisement(
            "Stock",
            AttributeStageAssociation.from_prefixes(
                ("class", "symbol", "price"), [3, 3, 1]
            ),
        )
        assert registry.add(updated) is True
        assert registry.get("Stock") == updated

    def test_require_raises_on_unknown(self):
        with pytest.raises(KeyError):
            AdvertisementRegistry().require("Nope")

    def test_get_returns_none_on_unknown(self):
        assert AdvertisementRegistry().get("Nope") is None

    def test_classes_and_iteration(self):
        registry = AdvertisementRegistry()
        registry.add(STOCK)
        registry.add(BIB)
        assert registry.classes() == ["Stock", "BibRecord"]
        assert list(registry) == [STOCK, BIB]


class TestInference:
    def test_schema_inferred_by_domain_size(self):
        from repro.events.base import PropertyEvent

        samples = [
            PropertyEvent(year=1990 + (i % 3), author=f"a{i % 20}", title=f"t{i}")
            for i in range(40)
        ]
        advertisement = Advertisement.infer("Bib", samples, stages=4,
                                            include_class=False)
        assert advertisement.schema == ("year", "author", "title")
        assert advertisement.association.num_stages == 4

    def test_class_attribute_leads_when_included(self):
        from repro.events.base import PropertyEvent

        samples = [PropertyEvent(x=i % 2, y=i) for i in range(10)]
        advertisement = Advertisement.infer("Thing", samples, stages=3)
        assert advertisement.schema[0] == "class"
        assert advertisement.schema[1] == "x"

    def test_typed_samples_are_reflected(self):
        class Ping:
            def __init__(self, i):
                self._i = i

            def get_host(self):
                return f"h{self._i % 2}"

            def get_seq(self):
                return self._i

        advertisement = Advertisement.infer(
            "Ping", [Ping(i) for i in range(12)], stages=3
        )
        assert advertisement.schema == ("class", "host", "seq")

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            Advertisement.infer("X", [], stages=3)


def test_engine_advertise_from_samples():
    from repro.core.engine import MultiStageEventSystem
    from repro.events.base import PropertyEvent

    system = MultiStageEventSystem(stage_sizes=(2, 1))
    samples = [PropertyEvent(kind=f"k{i % 2}", detail=f"d{i}") for i in range(10)]
    advertisement = system.advertise_from_samples("Obs", samples)
    assert advertisement.schema == ("class", "kind", "detail")
    system.drain()
    for node in system.hierarchy.nodes():
        assert node.advertisements.get("Obs") is not None
