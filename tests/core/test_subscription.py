"""Unit tests for subscriptions and TTL lease tables (§4.3)."""

import pytest

from repro.core.subscription import LeaseTable, Subscription
from repro.events.closures import FilterClosure
from repro.filters.parser import parse_filter

F = parse_filter('symbol = "Foo" and price < 10')


class TestSubscription:
    def test_ids_are_unique(self):
        a = Subscription(F, "Stock")
        b = Subscription(F, "Stock")
        assert a.subscription_id != b.subscription_id

    def test_matches_exactly_plain_filter(self):
        sub = Subscription(F, "Stock")
        assert sub.matches_exactly({"symbol": "Foo", "price": 5})
        assert not sub.matches_exactly({"symbol": "Foo", "price": 50})

    def test_matches_exactly_with_closure(self):
        closure = FilterClosure(F, residual=lambda e: e["price"] > 3)
        sub = Subscription(F, "Stock", closure)
        assert sub.matches_exactly({"symbol": "Foo", "price": 5})
        assert not sub.matches_exactly({"symbol": "Foo", "price": 2})

    def test_matches_exactly_with_separate_metadata(self):
        class Typed:
            pass

        closure = FilterClosure(F, residual=lambda e: isinstance(e, Typed))
        sub = Subscription(F, "Stock", closure)
        assert sub.matches_exactly(Typed(), metadata={"symbol": "Foo", "price": 5})

    def test_hash_by_id(self):
        sub = Subscription(F, "Stock")
        assert len({sub, sub}) == 1

    def test_repr(self):
        assert "Stock" in repr(Subscription(F, "Stock"))


class TestLeaseTable:
    def test_validation(self):
        with pytest.raises(ValueError):
            LeaseTable(ttl=0)
        with pytest.raises(ValueError):
            LeaseTable(ttl=10, expiry_factor=0.5)

    def test_touch_makes_pair_live(self):
        leases = LeaseTable(ttl=10)
        leases.touch(F, "sub", now=0.0)
        assert leases.is_live(F, "sub", now=5.0)
        assert (F, "sub") in leases
        assert len(leases) == 1

    def test_expiry_at_three_ttl(self):
        leases = LeaseTable(ttl=10)
        leases.touch(F, "sub", now=0.0)
        assert leases.is_live(F, "sub", now=29.9)
        assert not leases.is_live(F, "sub", now=30.0)
        assert leases.expired(now=30.0) == [(F, "sub")]

    def test_renewal_extends_the_lease(self):
        leases = LeaseTable(ttl=10)
        leases.touch(F, "sub", now=0.0)
        leases.touch(F, "sub", now=25.0)
        assert leases.is_live(F, "sub", now=50.0)
        assert leases.expired(now=50.0) == []

    def test_touch_all_renews_by_destination(self):
        other = parse_filter('symbol = "Bar"')
        leases = LeaseTable(ttl=10)
        leases.touch(F, "a", now=0.0)
        leases.touch(other, "a", now=0.0)
        leases.touch(F, "b", now=0.0)
        assert leases.touch_all("a", now=25.0) == 2
        expired = leases.expired(now=40.0)
        assert expired == [(F, "b")]

    def test_forget(self):
        leases = LeaseTable(ttl=10)
        leases.touch(F, "sub", now=0.0)
        leases.forget(F, "sub")
        assert not leases.is_live(F, "sub", now=1.0)
        assert len(leases) == 0

    def test_forget_unknown_is_noop(self):
        LeaseTable(ttl=10).forget(F, "ghost")

    def test_unknown_pair_is_not_live(self):
        assert not LeaseTable(ttl=10).is_live(F, "sub", now=0.0)

    def test_custom_expiry_factor(self):
        leases = LeaseTable(ttl=10, expiry_factor=1.0)
        leases.touch(F, "sub", now=0.0)
        assert not leases.is_live(F, "sub", now=10.0)

    def test_pairs_listing(self):
        leases = LeaseTable(ttl=10)
        leases.touch(F, "a", now=0.0)
        assert leases.pairs() == [(F, "a")]
