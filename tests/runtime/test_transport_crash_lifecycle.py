"""Crash-lifecycle regression tests for the TCP transport (PR 9).

Three transport bugs rode along with PR 8's endpoint FSM:

1. An ``_inflight`` leak: a frame whose write succeeded into a killed
   endpoint's socket buffer was never read, so the runtime's in-flight
   counter never came back down and ``run()`` burned its full
   ``idle_timeout`` waiting for an idleness that could not happen.
2. ``kill()`` was not idempotent: a second kill re-ran ``crash()`` and
   overwrote ``endpoint.teardown``, orphaning the first teardown task so
   a later ``restore()`` could race the still-closing server socket.
3. ``restore()`` on a live endpoint silently started a second server on
   the process's port instead of failing loudly.

These tests pin the fixed behaviour: prompt settling after a kill with
frames in flight, drop accounting that matches the swallowed frames
exactly, one-shot FSM edges, and the documented endpoint history across
kill -> restore -> kill.
"""

import time

import pytest

from repro.runtime.asyncio_backend import (
    AsyncioRuntime,
    BINDING,
    CRASHED,
    INIT,
    LISTENING,
    RECOVERING,
    SERVING,
    TcpTransport,
)
from repro.sim.kernel import Process, SimulationError


class Sink(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, message, sender):
        self.received.append((message, getattr(sender, "name", None)))


@pytest.fixture
def fabric():
    runtime = AsyncioRuntime()
    transport = TcpTransport(runtime)
    try:
        yield runtime, transport
    finally:
        transport.close()
        runtime.close()


def _establish(runtime, transport, a, b):
    """One delivered frame: servers bound, writer cached, FSM at SERVING."""
    transport.send(a, b, "warmup")
    assert runtime.run_until(lambda: len(b.received) == 1, timeout=5.0)


class TestInFlightReconciliation:
    def test_run_settles_promptly_after_kill_with_frames_in_flight(self, fabric):
        runtime, transport = fabric
        a, b = Sink(runtime, "a"), Sink(runtime, "b")
        transport.connect(a, b)
        _establish(runtime, transport, a, b)

        # A burst the victim will never read: the writes land in its
        # socket buffer (or fail against the closing server), and the
        # kill must reconcile whatever the dispatch path cannot settle.
        for i in range(20):
            transport.send(a, b, f"swallowed-{i}")
        transport.kill(b)

        start = time.monotonic()
        runtime.run()
        elapsed = time.monotonic() - start
        # The leak made this wait out the full idle_timeout (30 s).
        assert elapsed < 10.0, f"run() took {elapsed:.1f}s — in-flight leak?"
        assert runtime._inflight == 0
        assert transport.stats.in_flight == 0

    def test_drops_match_swallowed_frames_exactly(self, fabric):
        runtime, transport = fabric
        a, b = Sink(runtime, "a"), Sink(runtime, "b")
        transport.connect(a, b)
        _establish(runtime, transport, a, b)
        assert transport.stats.dropped_messages == 0

        in_flight_burst = 20
        for i in range(in_flight_burst):
            transport.send(a, b, f"burst-{i}")
        transport.kill(b)
        runtime.run()
        assert transport.stats.dropped_messages == in_flight_burst
        assert runtime._inflight == 0

        # Frames sent while the endpoint stays down fail the connect and
        # drop too — every swallowed frame is accounted, nothing else.
        downtime_sends = 5
        for i in range(downtime_sends):
            transport.send(a, b, f"down-{i}")
        runtime.run()
        assert (
            transport.stats.dropped_messages == in_flight_burst + downtime_sends
        )
        assert runtime._inflight == 0

        # After restore, fresh frames deliver and the drop count freezes.
        transport.restore(b)
        assert runtime.run_until(lambda: not b.crashed, timeout=5.0)
        transport.send(a, b, "fresh")
        assert runtime.run_until(
            lambda: any(m == "fresh" for m, _ in b.received), timeout=5.0
        )
        assert (
            transport.stats.dropped_messages == in_flight_burst + downtime_sends
        )
        assert transport.stats.in_flight == 0
        assert transport.errors == []


class TestIdempotentKill:
    def test_second_kill_is_a_noop(self, fabric):
        runtime, transport = fabric
        a, b = Sink(runtime, "a"), Sink(runtime, "b")
        transport.connect(a, b)
        _establish(runtime, transport, a, b)

        transport.kill(b)
        endpoint = transport.endpoint(b)
        first_teardown = endpoint.teardown
        assert endpoint.state == CRASHED
        assert first_teardown is not None

        transport.kill(b)  # must not re-crash or clobber the teardown
        assert endpoint.teardown is first_teardown
        assert endpoint.history.count(CRASHED) == 1
        assert b.incarnation == 0  # crash() ran once, restart() not at all

        # The preserved handle is what restore awaits; the lifecycle
        # must still complete normally after the double kill.
        transport.restore(b)
        assert runtime.run_until(lambda: not b.crashed, timeout=5.0)
        transport.send(a, b, "alive-again")
        assert runtime.run_until(
            lambda: any(m == "alive-again" for m, _ in b.received), timeout=5.0
        )


class TestRestoreGuard:
    def test_restore_on_live_endpoint_raises(self, fabric):
        runtime, transport = fabric
        a, b = Sink(runtime, "a"), Sink(runtime, "b")
        transport.connect(a, b)
        _establish(runtime, transport, a, b)
        with pytest.raises(SimulationError, match="cannot restore"):
            transport.restore(b)

    def test_restore_while_recovering_raises(self, fabric):
        runtime, transport = fabric
        a, b = Sink(runtime, "a"), Sink(runtime, "b")
        transport.connect(a, b)
        _establish(runtime, transport, a, b)
        transport.kill(b)
        transport.restore(b)  # schedules the rebind; state leaves CRASHED
        with pytest.raises(SimulationError, match="cannot restore"):
            transport.restore(b)
        assert runtime.run_until(lambda: not b.crashed, timeout=5.0)


class TestEndpointHistory:
    def test_documented_edge_sequence_across_kill_restore_kill(self, fabric):
        runtime, transport = fabric
        a, b = Sink(runtime, "a"), Sink(runtime, "b")
        transport.connect(a, b)
        _establish(runtime, transport, a, b)
        endpoint = transport.endpoint(b)
        assert endpoint.history == [INIT, BINDING, LISTENING, SERVING]

        transport.kill(b)
        runtime.run()
        transport.restore(b)
        assert runtime.run_until(
            lambda: not b.crashed and endpoint.state == LISTENING, timeout=5.0
        )
        transport.send(a, b, "post-restore")
        assert runtime.run_until(
            lambda: any(m == "post-restore" for m, _ in b.received), timeout=5.0
        )
        transport.kill(b)
        runtime.run()

        assert endpoint.history == [
            INIT,
            BINDING,
            LISTENING,
            SERVING,
            CRASHED,
            RECOVERING,
            LISTENING,
            SERVING,
            CRASHED,
        ]
