"""Tests for the real-runtime asyncio backend (PR 8 tentpole).

Everything here runs over actual localhost TCP sockets inside a private
event loop, driven synchronously — no pytest-asyncio needed.  The
overlay/flow/log code under test is byte-for-byte the code the
simulator runs; only the ``Executor``/``Transport`` bindings differ.
"""

import os

import pytest

from repro.core.engine import MultiStageEventSystem
from repro.log.config import LogConfig
from repro.runtime.asyncio_backend import (
    AsyncioRuntime,
    CRASHED,
    LISTENING,
    SERVING,
    TcpTransport,
    decode_frame,
    encode_frame,
)
from repro.runtime.base import Clock, Executor, Transport
from repro.sim.kernel import Process, SimulationError, Simulator
from repro.sim.network import Network

STOCK_SCHEMA = ("class", "symbol", "price")


class Stock:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


class Sink(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, message, sender):
        self.received.append((message, getattr(sender, "name", None)))


def make_system(runtime, **kwargs):
    defaults = dict(stage_sizes=(2, 1), seed=1, runtime=runtime)
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.register_type(Stock)
    system.advertise("Stock", schema=STOCK_SCHEMA)
    return system


# ---------------------------------------------------------------------------
# Protocol conformance


class TestProtocols:
    def test_simulator_satisfies_executor(self):
        sim = Simulator()
        assert isinstance(sim, Clock)
        assert isinstance(sim, Executor)

    def test_asyncio_runtime_satisfies_executor(self):
        runtime = AsyncioRuntime()
        try:
            assert isinstance(runtime, Clock)
            assert isinstance(runtime, Executor)
        finally:
            runtime.close()

    def test_transports_satisfy_transport(self):
        sim = Simulator()
        assert isinstance(Network(sim), Transport)
        runtime = AsyncioRuntime()
        try:
            assert isinstance(TcpTransport(runtime), Transport)
        finally:
            runtime.close()


# ---------------------------------------------------------------------------
# Timers on the real loop


class TestRuntimeTimers:
    def test_timers_fire_in_order(self):
        runtime = AsyncioRuntime()
        try:
            out = []
            runtime.schedule(0.02, out.append, "late")
            runtime.schedule(0.01, out.append, "early")
            runtime.run(until=0.1)
            assert out == ["early", "late"]
            assert runtime.processed_events == 2
        finally:
            runtime.close()

    def test_cancelled_timer_never_fires_or_counts(self):
        runtime = AsyncioRuntime()
        try:
            out = []
            handle = runtime.schedule(0.01, out.append, "dead")
            handle.cancel()
            runtime.schedule(0.02, out.append, "live")
            runtime.run(until=0.1)
            assert out == ["live"]
            assert runtime.processed_events == 1
        finally:
            runtime.close()

    def test_negative_delay_rejected(self):
        runtime = AsyncioRuntime()
        try:
            with pytest.raises(SimulationError):
                runtime.schedule(-1.0, lambda: None)
        finally:
            runtime.close()

    def test_recurring_timer_repeats_until_cancelled(self):
        runtime = AsyncioRuntime()
        try:
            ticks = []
            timer = runtime.every(0.01, lambda: ticks.append(runtime.now))
            runtime.run(until=0.06)
            timer.cancel()
            seen = len(ticks)
            assert seen >= 3
            runtime.run(until=0.1)
            assert len(ticks) == seen
        finally:
            runtime.close()

    def test_run_until_predicate(self):
        runtime = AsyncioRuntime()
        try:
            out = []
            runtime.schedule(0.03, out.append, "x")
            assert runtime.run_until(lambda: out, timeout=2.0) is True
            assert runtime.run_until(lambda: False, timeout=0.05) is False
        finally:
            runtime.close()


# ---------------------------------------------------------------------------
# Frame codec


class TestFrameCodec:
    def test_round_trip_plain_payload(self):
        payload = {"symbol": "Foo", "price": 9.0}
        frame = encode_frame("alice", payload)
        src, message = decode_frame(frame, lambda name: None)
        assert src == "alice"
        assert message == payload

    def test_process_references_resolve_by_name(self):
        sim = Simulator()
        bob = Sink(sim, "bob")
        frame = encode_frame("alice", {"reply_to": bob})
        src, message = decode_frame(
            frame, lambda name: bob if name == "bob" else None
        )
        assert message["reply_to"] is bob

    def test_corrupt_frame_raises(self):
        with pytest.raises(Exception):
            decode_frame(b"\xff not json", lambda name: None)


# ---------------------------------------------------------------------------
# TCP transport end-to-end


class TestTcpTransport:
    def test_frames_arrive_in_send_order(self):
        runtime = AsyncioRuntime()
        transport = TcpTransport(runtime)
        try:
            a = Sink(runtime, "a")
            b = Sink(runtime, "b")
            transport.connect(a, b)
            for i in range(20):
                transport.send(a, b, i)
            assert runtime.run_until(
                lambda: len(b.received) == 20, timeout=5.0
            )
            assert [m for m, _ in b.received] == list(range(20))
            assert transport.endpoint(b).state == SERVING
            assert transport.errors == []
        finally:
            transport.close()
            runtime.close()

    def test_endpoint_fsm_walks_the_documented_states(self):
        runtime = AsyncioRuntime()
        transport = TcpTransport(runtime)
        try:
            a = Sink(runtime, "a")
            b = Sink(runtime, "b")
            transport.connect(a, b)
            transport.send(a, b, "hello")
            assert runtime.run_until(lambda: b.received, timeout=5.0)
            assert transport.endpoint(b).history == [
                "init",
                "binding",
                "listening",
                "serving",
            ]
        finally:
            transport.close()
            runtime.close()

    def test_send_to_crashed_process_is_counted_drop(self):
        runtime = AsyncioRuntime()
        transport = TcpTransport(runtime)
        try:
            a = Sink(runtime, "a")
            b = Sink(runtime, "b")
            transport.connect(a, b)
            transport.send(a, b, "warm-up")
            assert runtime.run_until(lambda: b.received, timeout=5.0)
            transport.kill(b)
            assert transport.endpoint(b).state == CRASHED
            dropped_before = transport.stats.dropped_messages
            transport.send(a, b, "lost")
            runtime.run(until=0.3)
            assert len(b.received) == 1
            assert transport.stats.dropped_messages > dropped_before
        finally:
            transport.close()
            runtime.close()

    def test_kill_restore_rebinds_same_port(self):
        runtime = AsyncioRuntime()
        transport = TcpTransport(runtime)
        try:
            a = Sink(runtime, "a")
            b = Sink(runtime, "b")
            transport.connect(a, b)
            transport.send(a, b, "first")
            assert runtime.run_until(lambda: b.received, timeout=5.0)
            port = transport.endpoint(b).port
            transport.kill(b)
            transport.restore(b)
            assert runtime.run_until(
                lambda: transport.endpoint(b).state == LISTENING, timeout=5.0
            )
            assert transport.endpoint(b).port == port
            transport.send(a, b, "second")
            assert runtime.run_until(lambda: len(b.received) == 2, timeout=5.0)
        finally:
            transport.close()
            runtime.close()

    def test_duplicate_names_rejected(self):
        runtime = AsyncioRuntime()
        transport = TcpTransport(runtime)
        try:
            sim = Simulator()
            transport.register(Sink(sim, "same"))
            with pytest.raises(SimulationError):
                transport.register(Sink(sim, "same"))
        finally:
            transport.close()
            runtime.close()


# ---------------------------------------------------------------------------
# Full engine over sockets


class TestEngineOnAsyncio:
    def test_publish_subscribe_round_trip_over_tcp(self):
        with make_system("asyncio") as system:
            publisher = system.create_publisher()
            subscriber = system.create_subscriber()
            got = []
            system.subscribe(
                subscriber,
                'class = "Stock" and price < 10.0',
                handler=lambda e, m, s: got.append(e.get_price()),
            )
            assert system.run_until(lambda: subscriber._homes(), timeout=10.0)
            publisher.publish(Stock("Foo", 9.0))
            publisher.publish(Stock("Foo", 11.0))
            assert system.run_until(lambda: got, timeout=10.0)
            system.drain()
            assert got == [9.0]

    def test_default_runtime_is_sim(self):
        system = make_system("sim")
        assert system.runtime_name == "sim"
        assert isinstance(system.sim, Simulator)

    def test_invalid_runtime_rejected(self):
        with pytest.raises(ValueError):
            MultiStageEventSystem(stage_sizes=(2, 1), runtime="threads")

    def test_broker_kill_restart_recovers_log_from_disk(self, tmp_path):
        directory = str(tmp_path / "segments")
        with make_system(
            "asyncio",
            ttl=2.0,
            log=LogConfig(directory=directory, segment_size=4),
        ) as system:
            publisher = system.create_publisher()
            subscriber = system.create_subscriber()
            got = []
            system.subscribe(
                subscriber,
                'class = "Stock"',
                handler=lambda e, m, s: got.append(e.get_price()),
            )
            assert system.run_until(lambda: subscriber._homes(), timeout=10.0)
            system.start_maintenance()
            for i in range(5):
                publisher.publish(Stock("Foo", float(i)))
            assert system.run_until(lambda: len(got) >= 5, timeout=10.0)
            assert os.listdir(directory)

            home = subscriber._homes()[0]
            records_before = len(home.log)
            system.kill(home)
            assert system.run_until(lambda: home.crashed, timeout=5.0)
            assert home.log is None  # in-memory log died with the process

            system.restore(home)
            assert system.run_until(
                lambda: not home.crashed and home.log is not None, timeout=10.0
            )
            assert len(home.log) == records_before  # reloaded from JSONL
            assert home.log.truncated_records_discarded == 0

            # Renewals (kicked by ChannelReset) rebuild the table; then
            # fresh publishes flow end to end again.
            assert system.run_until(lambda: len(home.table) > 0, timeout=10.0)
            publisher.publish(Stock("Foo", 100.0))
            assert system.run_until(lambda: 100.0 in got, timeout=10.0)
            system.stop_maintenance()
