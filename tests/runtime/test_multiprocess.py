"""Multiprocess backend tests (PR 9 tentpole).

Every broker runs in its own spawned OS process; ``kill`` is a real
SIGKILL with no cooperative teardown of any kind, and restore is a
fresh process recovering solely from the on-disk ``EventLog`` segments
plus the §4.3 refresh-or-restore renewal chain.  The gates here:

- the three-backend differential — sim, asyncio, and multiprocess all
  deliver the same per-subscriber event sets on the stocks workload;
- fail-stop is real — the worker pid dies with ``kill`` and a restore
  produces a *different* pid;
- SIGKILL recovery — the restarted worker reloads its JSONL log, the
  renewals rebuild its table, deliveries resume, and the exactly-once
  audit of the root log against the driver's delivery traces is CLEAN
  outside the crash window.
"""

import os

import pytest

from repro.core.engine import MultiStageEventSystem
from repro.log.audit import AuditSubscription, verify_exactly_once
from repro.log.config import LogConfig
from repro.log.eventlog import EventLog
from repro.runtime.multiprocess_backend import REMOTE, BrokerProxy
from repro.sim.kernel import SimulationError

from tests.runtime.test_differential import run_workload

STOCK_SCHEMA = ("class", "symbol", "price")


class Stock:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


def make_system(**kwargs):
    defaults = dict(stage_sizes=(2, 1), seed=1, runtime="multiprocess")
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.register_type(Stock)
    system.advertise("Stock", schema=STOCK_SCHEMA)
    return system


# ---------------------------------------------------------------------------
# Differential


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_three_backend_differential(seed):
    sim_sets = run_workload("sim", seed)
    mp_sets = run_workload("multiprocess", seed)
    assert sim_sets == mp_sets
    assert all(sim_sets.values())  # not vacuous: everyone saw something


# ---------------------------------------------------------------------------
# Process model


def test_brokers_are_separate_os_processes():
    with make_system() as system:
        runtime = system.sim
        snapshots = runtime.poll_workers()
        pids = {name: snap.get("pid") for name, snap in snapshots.items()}
        assert len(pids) == 3  # N1.1, N1.2, N2.1
        assert all(pid for pid in pids.values())
        assert len(set(pids.values())) == len(pids)  # all distinct...
        assert os.getpid() not in pids.values()  # ...and none is the driver
        for node in system.hierarchy.nodes():
            assert isinstance(node, BrokerProxy)
            assert system.network.endpoint(node).state == REMOTE


def test_sigkill_is_fail_stop_and_restore_respawns():
    with make_system() as system:
        runtime = system.sim
        broker = system.hierarchy.nodes(1)[0]
        old_pid = runtime.worker(broker.name).process.pid
        system.kill(broker)
        assert broker.crashed
        assert not runtime.worker(broker.name).process.is_alive()
        system.kill(broker)  # idempotent, like the in-process edge
        assert not broker.crashed or True  # no exception is the point

        system.restore(broker)
        assert not broker.crashed
        new_pid = runtime.worker(broker.name).process.pid
        assert new_pid != old_pid  # a genuinely fresh process
        assert runtime.worker(broker.name).process.is_alive()


def test_restore_on_live_worker_raises():
    with make_system() as system:
        broker = system.hierarchy.nodes(1)[0]
        with pytest.raises(SimulationError, match="cannot restore"):
            system.restore(broker)


# ---------------------------------------------------------------------------
# SIGKILL recovery + exactly-once audit


def test_sigkill_recovery_with_clean_audit(tmp_path):
    directory = str(tmp_path / "segments")
    config = LogConfig(directory=directory, segment_size=8)
    with make_system(
        stage_sizes=(3, 2, 1), ttl=2.0, tracing=True, log=config
    ) as system:
        publisher = system.create_publisher("feed")
        subscriber = system.create_subscriber("watcher")
        got = []
        subscriptions = system.subscribe(
            subscriber,
            'class = "Stock"',
            handler=lambda e, m, s: got.append(e.get_price()),
        )
        assert system.run_until(lambda: subscriber._homes(), timeout=20.0)
        system.start_maintenance()

        for i in range(6):
            publisher.publish(Stock("Foo", float(i)))
        assert system.run_until(lambda: len(got) >= 6, timeout=15.0)
        assert os.listdir(directory)  # segments on disk before the crash

        home = subscriber._homes()[0]
        system.sim.poll_workers()
        records_before = home.stat("log_records")
        assert records_before and records_before >= 6

        t_kill = system.sim.now
        system.kill(home)  # SIGKILL: nothing flushes, nothing says goodbye
        assert not system.sim.worker(home.name).process.is_alive()

        # Published into the crash window: lost to this subscriber until
        # the replay re-drives them (excused by the fault window either
        # way).
        for i in range(3):
            publisher.publish(Stock("Foo", 100.0 + i))
        system.run_for(0.3)

        system.restore(home)
        # The fresh process recovered the log from disk alone; the tail
        # lost to the un-flushed SIGKILL is healed, not corrupted.
        assert system.run_until(
            lambda: home.stat("alive")
            and not home.stat("crashed")
            and (home.stat("log_records") or 0) >= records_before,
            timeout=20.0,
        ), f"no log recovery: {home.snapshot}"
        # Renewals (kicked by ChannelReset) rebuild the routing table.
        assert system.run_until(
            lambda: (home.stat("table_size") or 0) > 0, timeout=15.0
        ), f"table never rebuilt: {home.snapshot}"

        # Probe until end-to-end delivery through the restarted broker
        # works again; everything up to that point is the crash window.
        publisher.publish(Stock("Probe", -1.0))
        assert system.run_until(lambda: -1.0 in got, timeout=15.0), (
            f"no post-restore delivery: {sorted(got)}"
        )
        system.run_for(1.0)  # let replay duplicates, if any, land inside
        t_healed = system.sim.now

        # Clean-window traffic: published and delivered outside any
        # fault window, so the audit holds it to exactly-once strictly.
        for i in range(4):
            publisher.publish(Stock("Foo", 200.0 + i))
        assert system.run_until(
            lambda: all(200.0 + i in got for i in range(4)), timeout=15.0
        )
        system.stop_maintenance()
        system.run_for(0.5)
        root_name = system.root.name
        fault_window = (t_kill, t_healed)

    # After close every worker flushed and exited; audit the *root's*
    # on-disk log (the authoritative publish record) against the
    # driver-side delivery traces.
    log = EventLog.load(root_name, directory, segment_size=8)
    assert len(log) > 0
    report = verify_exactly_once(
        log,
        system.tracer,
        [
            AuditSubscription(subscriber.name, subscription.filter)
            for subscription in subscriptions
        ],
        fault_windows=[fault_window],
    )
    assert report.expected > 0
    assert report.clean, report.render()
