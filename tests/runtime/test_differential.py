"""Cross-backend differential gate (PR 8 satellite).

The same workload — hierarchy shape, advertisements, subscriptions,
publishes — must deliver the same event *sets* per subscriber on the
deterministic simulator and on the real asyncio/TCP backend.  Sets,
not sequences: the paper's delivery semantics never promised global
order, and real sockets interleave differently from the sim's
deterministic tie-break.  Three seeds vary the placement RNG.
"""

import pytest

from repro.core.engine import MultiStageEventSystem

QUOTE_SCHEMA = ("class", "symbol", "price", "volume")

SUBSCRIPTIONS = [
    ("alice", 'class = "Quote" and price < 10.0'),
    ("bob", 'class = "Quote" and symbol = "HOT"'),
    ("carol", 'class = "Quote" and price >= 10.0 and volume > 100'),
]

EVENTS = [
    ("HOT", 3.0, 50),
    ("HOT", 15.0, 500),
    ("COLD", 4.0, 10),
    ("COLD", 12.0, 200),
    ("HOT", 7.0, 150),
    ("COLD", 25.0, 50),
]


class Quote:
    def __init__(self, symbol, price, volume):
        self._symbol = symbol
        self._price = price
        self._volume = volume

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price

    def get_volume(self):
        return self._volume


def run_workload(runtime, seed):
    """One full pub/sub run; returns {subscriber: frozenset(events)}."""
    system = MultiStageEventSystem(
        stage_sizes=(3, 2, 1), seed=seed, runtime=runtime
    )
    try:
        system.register_type(Quote)
        system.advertise("Quote", schema=QUOTE_SCHEMA)
        publisher = system.create_publisher()
        delivered = {name: [] for name, _ in SUBSCRIPTIONS}
        subscribers = []
        for name, expression in SUBSCRIPTIONS:
            subscriber = system.create_subscriber(name)
            subscribers.append(subscriber)
            system.subscribe(
                subscriber,
                expression,
                handler=lambda e, m, s, name=name: delivered[name].append(
                    (e.get_symbol(), e.get_price(), e.get_volume())
                ),
            )
        if runtime == "sim":
            system.drain()
        else:
            assert system.run_until(
                lambda: all(s._homes() for s in subscribers), timeout=15.0
            ), "subscriptions never joined"
        for symbol, price, volume in EVENTS:
            publisher.publish(Quote(symbol, price, volume))
        expected_total = sum(
            _matches(expression, event)
            for _, expression in SUBSCRIPTIONS
            for event in EVENTS
        )
        if runtime == "sim":
            system.drain()
        else:
            system.run_until(
                lambda: sum(len(v) for v in delivered.values())
                >= expected_total,
                timeout=15.0,
            )
        return {name: frozenset(events) for name, events in delivered.items()}
    finally:
        system.close()


def _matches(expression, event):
    symbol, price, volume = event
    if "price < 10.0" in expression:
        return price < 10.0
    if 'symbol = "HOT"' in expression:
        return symbol == "HOT"
    return price >= 10.0 and volume > 100


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_same_event_sets_on_both_runtimes(seed):
    sim_sets = run_workload("sim", seed)
    asyncio_sets = run_workload("asyncio", seed)
    assert sim_sets == asyncio_sets
    # And the run is not vacuous: every subscriber saw something.
    assert all(sim_sets.values())


def test_sim_runtime_is_seed_deterministic():
    # The differential is only meaningful if the sim side is stable.
    assert run_workload("sim", 1) == run_workload("sim", 1)
