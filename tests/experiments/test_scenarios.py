"""Tests for the experiment harness: the reproduced shapes must hold.

These runs are small (seconds), but assert the qualitative claims of the
paper's evaluation — the same claims the full-scale benchmarks print.
"""

import pytest

from repro.experiments import figure7, rlc_table
from repro.experiments.common import ScenarioConfig, run_bibliographic

QUICK = ScenarioConfig(stage_sizes=(10, 3, 1), n_subscribers=120, n_events=150)


@pytest.fixture(scope="module")
def result():
    return run_bibliographic(QUICK)


class TestScenarioMechanics:
    def test_all_subscribers_join(self, result):
        assert all(s.all_joined() for s in result.system.subscribers)

    def test_totals(self, result):
        assert result.total_events == 150
        assert result.total_subscriptions == 120

    def test_counters_cover_all_stages(self, result):
        assert result.stages() == [0, 1, 2, 3]
        assert len(result.counters_by_stage[0]) == 120
        assert len(result.counters_by_stage[1]) == 10

    def test_runs_are_reproducible(self):
        a = run_bibliographic(QUICK)
        b = run_bibliographic(QUICK)
        assert a.rlc_global_total() == b.rlc_global_total()
        assert a.subscriber_average_mr() == b.subscriber_average_mr()
        assert a.mr_values(1) == b.mr_values(1)

    def test_different_seeds_differ(self):
        other = run_bibliographic(
            ScenarioConfig(**{**QUICK.__dict__, "seed": 99})
        )
        base = run_bibliographic(QUICK)
        assert other.mr_values(0) != base.mr_values(0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(placement="nearest")
        with pytest.raises(ValueError):
            ScenarioConfig(n_subscribers=0)


class TestRlcShape:
    """The §5.3 table's qualitative content."""

    def test_every_broker_rlc_far_below_centralized(self, result):
        for stage in (1, 2, 3):
            for rlc in result.rlc_values(stage):
                assert rlc < 0.5  # centralized server = 1

    def test_subscriber_rlc_is_tiny(self, result):
        assert result.rlc_node_average(0) < 1e-3

    def test_rlc_rises_through_mid_stages(self, result):
        assert result.rlc_node_average(0) < result.rlc_node_average(1)
        assert result.rlc_node_average(1) < result.rlc_node_average(2)

    def test_global_total_at_most_centralized(self, result):
        # "no greater computational power requirement in global sense".
        assert result.rlc_global_total() <= 1.5

    def test_rows_match_result_accessors(self, result):
        rows = rlc_table.rlc_rows(result)
        assert [stage for stage, _, _ in rows] == [0, 1, 2, 3]
        for stage, node_avg, total in rows:
            assert node_avg == pytest.approx(result.rlc_node_average(stage))
            assert total == pytest.approx(result.rlc_stage_total(stage))

    def test_render_includes_paper_references(self, result):
        text = rlc_table.render(result)
        assert "2.00e-07" in text  # the paper's stage-0 value
        assert "Stage" in text


class TestFigure7Shape:
    def test_subscriber_mr_is_high(self, result):
        """Pre-filtering means subscribers mostly see relevant events;
        the paper reports 0.87."""
        assert result.subscriber_average_mr() > 0.6

    def test_stage1_mr_is_high(self, result):
        values = result.mr_values(1)
        assert values
        # Small-scale runs are noisy; the paper-scale benchmark asserts > 0.7.
        assert sum(values) / len(values) > 0.5

    def test_mr_values_are_rates(self, result):
        for stage in (0, 1, 2):
            for value in result.mr_values(stage):
                assert 0.0 <= value <= 1.0

    def test_series_and_render(self, result):
        series = figure7.mr_series(result)
        assert set(series) == {0, 1, 2}
        text = figure7.render(result)
        assert "subscriber average MR" in text
        assert "0.87" in text  # paper reference


class TestPreFiltering:
    def test_lower_stages_see_fewer_events(self, result):
        """The whole point of pre-filtering (§3.2)."""
        root_received = result.counters_by_stage[3][0][1].events_received
        stage1_avg = sum(result.stage1_event_loads()) / len(
            result.stage1_event_loads()
        )
        assert root_received == result.total_events
        assert stage1_avg < root_received

    def test_subscribers_see_far_less_than_published(self, result):
        per_subscriber = [
            c.events_received for _, c in result.counters_by_stage[0]
        ]
        assert max(per_subscriber) < result.total_events / 2
