"""Tests for the architecture comparison and the ablations."""

import pytest

from repro.experiments import ablations, comparison
from repro.experiments.common import ScenarioConfig

QUICK = ScenarioConfig(stage_sizes=(8, 2, 1), n_subscribers=60, n_events=100)


@pytest.fixture(scope="module")
def results():
    return comparison.run_comparison(QUICK)


class TestComparison:
    def test_all_architectures_present(self, results):
        assert set(results) == set(comparison.ARCHITECTURES)

    def test_identical_deliveries_everywhere(self, results):
        """End-to-end soundness: weakening never changes what subscribers
        get (Propositions 1 and 2)."""
        reference = results["centralized"].deliveries
        for name, result in results.items():
            assert result.deliveries == reference, name

    def test_centralized_rlc_is_one(self, results):
        assert results["centralized"].max_broker_rlc == pytest.approx(1.0)

    def test_multistage_beats_centralized_per_node(self, results):
        assert results["multistage"].max_broker_rlc < 0.5

    def test_broadcast_floods_the_edges(self, results):
        assert results["broadcast"].edge_avg_received == QUICK.n_events
        assert results["multistage"].edge_avg_received < QUICK.n_events / 2

    def test_topic_based_equals_broadcast_for_single_class(self, results):
        assert (
            results["topicbased"].edge_avg_received
            == results["broadcast"].edge_avg_received
        )

    def test_edge_mr_ordering(self, results):
        """Multi-stage edges see mostly-relevant traffic; broadcast edges
        see the raw stream."""
        assert results["multistage"].edge_avg_mr > results["broadcast"].edge_avg_mr

    def test_render(self, results):
        text = comparison.render(results)
        assert "multistage" in text and "centralized" in text

    def test_architecture_subset(self):
        subset = comparison.run_comparison(
            QUICK, architectures=("centralized", "broadcast")
        )
        assert set(subset) == {"centralized", "broadcast"}

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            comparison.run_comparison(QUICK, architectures=("quantum",))


class TestPlacementAblation:
    @pytest.fixture(scope="class")
    def ablation(self):
        # A similarity-heavy workload: few records, many subscribers.
        config = ScenarioConfig(
            stage_sizes=(8, 2, 1), n_subscribers=80, n_events=100,
            n_records=60, n_authors=30,
        )
        return ablations.run_placement_ablation(config)

    def test_similarity_needs_no_more_upper_filters(self, ablation):
        similarity, random_placement = ablation.upper_stage_filters()
        assert similarity <= random_placement

    def test_similarity_forwards_no_more_copies(self, ablation):
        similarity, random_placement = ablation.forwarded_messages()
        assert similarity <= random_placement

    def test_deliveries_unaffected_by_placement(self, ablation):
        assert (
            ablation.similarity.subscriber_average_mr()
            == pytest.approx(ablation.random.subscriber_average_mr(), abs=0.15)
        )


class TestWildcardAblation:
    def test_routed_reduces_stage1_load(self):
        config = ScenarioConfig(
            stage_sizes=(8, 2, 1), n_subscribers=60, n_events=120,
        )
        ablation = ablations.run_wildcard_ablation(config, wildcard_rate=0.4)
        routed, naive = ablation.total_stage1_load()
        assert routed < naive


class TestDepthAblation:
    def test_deeper_hierarchies_bound_per_node_rlc(self):
        points = ablations.run_depth_ablation(
            ScenarioConfig(stage_sizes=(8, 2, 1), n_subscribers=60, n_events=80),
            depth_configs=((1,), (4, 1), (16, 4, 1)),
        )
        assert len(points) == 3
        assert points[-1].max_node_rlc < points[0].max_node_rlc
        # More stages, more hops, more messages.
        assert points[-1].messages > points[0].messages

    def test_render_depth(self):
        points = ablations.run_depth_ablation(
            ScenarioConfig(stage_sizes=(4, 1), n_subscribers=30, n_events=40),
            depth_configs=((1,), (4, 1)),
        )
        text = ablations.render_depth(points)
        assert "Max node RLC" in text


class TestCompactionAblation:
    def test_compaction_shrinks_upper_tables_without_changing_mr_much(self):
        config = ScenarioConfig(
            stage_sizes=(6, 2, 1), n_subscribers=60, n_events=80,
            n_records=40, n_authors=20,
        )
        ablation = ablations.run_compaction_ablation(config)
        plain_mr, compacted_mr = ablation.subscriber_mr()
        # Merging only weakens broker filters; end deliveries are exact
        # either way, and MR can only drop (more traffic reaches edges).
        assert compacted_mr <= plain_mr + 1e-9


class TestMulticlassComparison:
    @pytest.fixture(scope="class")
    def multiclass_results(self):
        from repro.experiments.multiclass import MulticlassConfig, run_multiclass

        return run_multiclass(
            MulticlassConfig(stage_sizes=(8, 2, 1), n_subscribers=80, n_events=150)
        )

    def test_identical_deliveries(self, multiclass_results):
        reference = multiclass_results["multistage"].deliveries
        for name, result in multiclass_results.items():
            assert result.deliveries == reference, name

    def test_selectivity_ordering(self, multiclass_results):
        """multistage < topicbased < broadcast in edge load: topics
        recover class selectivity, content filters recover the rest."""
        multistage = multiclass_results["multistage"].edge_avg_received
        topic = multiclass_results["topicbased"].edge_avg_received
        broadcast = multiclass_results["broadcast"].edge_avg_received
        assert multistage < topic < broadcast

    def test_mr_ordering(self, multiclass_results):
        assert (
            multiclass_results["multistage"].edge_avg_mr
            > multiclass_results["topicbased"].edge_avg_mr
            > multiclass_results["broadcast"].edge_avg_mr
        )
