"""Tests for the `python -m repro.experiments` entry point."""


from repro.experiments.__main__ import main


def test_unknown_experiment_returns_2(capsys):
    assert main(["bogus"]) == 2
    assert "unknown experiments" in capsys.readouterr().err


def test_quick_rlc_runs(capsys):
    assert main(["--quick", "rlc"]) == 0
    out = capsys.readouterr().out
    assert "RLC table" in out
    assert "centralized reference RLC = 1" in out


def test_quick_multiclass_runs(capsys):
    assert main(["--quick", "multiclass"]) == 0
    out = capsys.readouterr().out
    assert "multistage" in out and "topicbased" in out
