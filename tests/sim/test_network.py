"""Unit tests for the simulated network."""

import pytest

from repro.sim.kernel import Process, SimulationError, Simulator
from repro.sim.network import Network


class Sink(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.inbox = []

    def receive(self, message, sender):
        self.inbox.append((message, sender.name, self.sim.now))


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def net(sim):
    return Network(sim)


def test_send_delivers_after_latency(sim, net):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b, latency=0.5)
    net.send(a, b, "hello")
    sim.run()
    assert b.inbox == [("hello", "a", 0.5)]


def test_links_are_bidirectional(sim, net):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b, latency=0.1)
    net.send(b, a, "up")
    sim.run()
    assert a.inbox[0][0] == "up"


def test_send_without_link_raises(sim):
    net = Network(sim, default_latency=None)
    a, b = Sink(sim, "a"), Sink(sim, "b")
    with pytest.raises(SimulationError):
        net.send(a, b, "x")


def test_default_latency_connects_lazily(sim):
    net = Network(sim, default_latency=0.25)
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.send(a, b, "x")
    sim.run()
    assert b.inbox[0][2] == 0.25
    assert net.link(a, b) is not None


def test_negative_latency_rejected(sim, net):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    with pytest.raises(SimulationError):
        net.connect(a, b, latency=-1.0)


def test_per_link_fifo_ordering(sim, net):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b, latency=0.5)
    for i in range(5):
        net.send(a, b, i)
    sim.run()
    assert [m for m, _, _ in b.inbox] == [0, 1, 2, 3, 4]


def test_stats_count_messages_and_bytes(sim, net):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b)
    net.send(a, b, "payload")
    net.send(a, b, "payload")
    sim.run()
    assert net.stats.total_messages == 2
    assert net.stats.total_bytes > 0
    assert net.stats.messages_by_process["b"] == 2


def test_link_counters(sim, net):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b)
    net.send(a, b, "x")
    link = net.link(a, b)
    assert link.messages == 1
    assert net.link(b, a).messages == 0


def test_custom_sizer(sim):
    net = Network(sim, sizer=lambda m: 1000)
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b)
    net.send(a, b, "x")
    assert net.stats.total_bytes == 1000


def test_disconnect_partitions(sim):
    net = Network(sim, default_latency=None)
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b)
    net.disconnect(a, b)
    with pytest.raises(SimulationError):
        net.send(a, b, "x")


def test_reconnect_after_partition(sim, net):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b)
    net.disconnect(a, b)
    net.connect(a, b, latency=0.1)
    net.send(a, b, "back")
    sim.run()
    assert b.inbox[0][0] == "back"


def test_messages_to_distinct_peers_are_independent(sim, net):
    hub = Sink(sim, "hub")
    spokes = [Sink(sim, f"s{i}") for i in range(3)]
    for spoke in spokes:
        net.connect(hub, spoke, latency=0.1)
    for spoke in spokes:
        net.send(hub, spoke, "tick")
    sim.run()
    assert all(len(s.inbox) == 1 for s in spokes)


def test_partition_drops_silently(sim, net):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b)
    net.partition(a, b)
    net.send(a, b, "lost")
    net.send(b, a, "also lost")
    sim.run()
    assert a.inbox == [] and b.inbox == []
    assert net.stats.dropped_messages == 2
    assert net.stats.total_messages == 0


def test_heal_restores_delivery(sim, net):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b)
    net.partition(a, b)
    net.send(a, b, "lost")
    net.heal(a, b)
    net.send(a, b, "found")
    sim.run()
    assert [m for m, _, _ in b.inbox] == ["found"]


def test_is_partitioned_is_symmetric(sim, net):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.partition(a, b)
    assert net.is_partitioned(a, b)
    assert net.is_partitioned(b, a)
    net.heal(b, a)
    assert not net.is_partitioned(a, b)


def test_partition_is_pairwise(sim, net):
    a, b, c = Sink(sim, "a"), Sink(sim, "b"), Sink(sim, "c")
    net.connect(a, b)
    net.connect(a, c)
    net.partition(a, b)
    net.send(a, c, "ok")
    sim.run()
    assert len(c.inbox) == 1


def test_disconnect_not_undone_by_default_latency(sim):
    """Regression: lazy reconnection used to silently undo disconnect."""
    net = Network(sim, default_latency=0.25)
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b)
    net.disconnect(a, b)
    with pytest.raises(SimulationError):
        net.send(a, b, "x")
    with pytest.raises(SimulationError):
        net.send(b, a, "x")
    # Unrelated pairs still lazily connect.
    c = Sink(sim, "c")
    net.send(a, c, "ok")
    sim.run()
    assert c.inbox[0][0] == "ok"


def test_explicit_connect_clears_disconnect_tombstone(sim):
    net = Network(sim, default_latency=0.25)
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b)
    net.disconnect(a, b)
    net.connect(a, b, latency=0.1)
    net.send(a, b, "back")
    sim.run()
    assert b.inbox[0][0] == "back"


def test_duplicate_process_names_rejected(sim, net):
    """Regression: same-name processes merged their traffic counters."""
    a = Sink(sim, "dup")
    b = Sink(sim, "b")
    impostor = Sink(sim, "dup")
    net.connect(a, b)
    with pytest.raises(SimulationError):
        net.connect(impostor, b)
    # The same process reconnecting under its own name is fine.
    net.connect(a, b, latency=0.2)


def test_duplicate_names_rejected_on_lazy_connect(sim):
    net = Network(sim, default_latency=0.1)
    a = Sink(sim, "dup")
    b = Sink(sim, "b")
    impostor = Sink(sim, "dup")
    net.connect(a, b)
    with pytest.raises(SimulationError):
        net.send(impostor, b, "x")


def test_partition_drop_accounts_bytes_and_link(sim, net):
    """Regression: partitioned sends dropped bytes/link counts on the floor."""
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b)
    net.partition(a, b)
    net.send(a, b, "lost payload")
    sim.run()
    assert net.stats.dropped_messages == 1
    assert net.stats.dropped_bytes > 0
    link = net.link(a, b)
    assert link.dropped_messages == 1
    assert link.dropped_bytes == net.stats.dropped_bytes
    assert link.messages == 0
