"""Unit tests for the named RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream():
    rngs = RngRegistry(1)
    assert rngs.stream("a") is rngs.stream("a")


def test_different_names_give_independent_streams():
    rngs = RngRegistry(1)
    a = [rngs.stream("a").random() for _ in range(5)]
    b = [rngs.stream("b").random() for _ in range(5)]
    assert a != b


def test_streams_reproducible_across_registries():
    first = [RngRegistry(7).stream("x").random() for _ in range(3)]
    second = [RngRegistry(7).stream("x").random() for _ in range(3)]
    assert first == second


def test_streams_do_not_depend_on_creation_order():
    one = RngRegistry(3)
    one.stream("a")
    value_b_after_a = one.stream("b").random()
    two = RngRegistry(3)
    value_b_alone = two.stream("b").random()
    assert value_b_after_a == value_b_alone


def test_different_seeds_differ():
    assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()


def test_fork_is_deterministic():
    assert (
        RngRegistry(5).fork("trial-1").stream("x").random()
        == RngRegistry(5).fork("trial-1").stream("x").random()
    )


def test_fork_differs_from_parent_and_siblings():
    parent = RngRegistry(5)
    fork_a = parent.fork("a")
    fork_b = parent.fork("b")
    values = {
        parent.stream("x").random(),
        fork_a.stream("x").random(),
        fork_b.stream("x").random(),
    }
    assert len(values) == 3
