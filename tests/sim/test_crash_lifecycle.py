"""Regression tests for the crash/restart timer lifecycle (PR 8 satellite).

Before this sweep, ``Process.crash()`` left previously scheduled
callbacks live in the simulator heap: a crashed process could fire
stale timers, and a crash -> restart cycle could double-schedule
maintenance work.  Timers created through the ``Process.call_*``
helpers are now owned by the process — cancelled on crash and guarded
by incarnation so a pre-crash closure can never run against
post-restart state.
"""

import pytest

from repro.sim.kernel import Process, SimulationError, Simulator


class Sink(Process):
    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.received = []

    def receive(self, message, sender):
        self.received.append(message)


class TestOwnedTimerCancellation:
    def test_crash_cancels_pending_call_later(self):
        sim = Simulator()
        proc = Sink(sim)
        fired = []
        proc.call_later(1.0, fired.append, "stale")
        proc.crash()
        sim.run()
        assert fired == []

    def test_crash_cancels_pending_call_at_and_call_soon(self):
        sim = Simulator()
        proc = Sink(sim)
        fired = []
        proc.call_at(2.0, fired.append, "at")
        proc.call_soon(fired.append, "soon")
        proc.crash()
        sim.run()
        assert fired == []

    def test_crash_stops_call_every(self):
        sim = Simulator()
        proc = Sink(sim)
        ticks = []
        proc.call_every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        assert len(ticks) == 3
        proc.crash()
        sim.run(until=10.0)
        assert len(ticks) == 3

    def test_timers_of_other_processes_survive_a_crash(self):
        sim = Simulator()
        victim = Sink(sim, "victim")
        bystander = Sink(sim, "bystander")
        fired = []
        victim.call_later(1.0, fired.append, "victim")
        bystander.call_later(1.0, fired.append, "bystander")
        victim.crash()
        sim.run()
        assert fired == ["bystander"]

    def test_fired_timers_leave_the_owned_set(self):
        sim = Simulator()
        proc = Sink(sim)
        for _ in range(50):
            proc.call_later(1.0, lambda: None)
        sim.run()
        assert not proc._owned_timers

    def test_negative_delay_rejected(self):
        sim = Simulator()
        proc = Sink(sim)
        with pytest.raises(SimulationError):
            proc.call_later(-0.1, lambda: None)


class TestIncarnationGuard:
    def test_restart_bumps_incarnation(self):
        sim = Simulator()
        proc = Sink(sim)
        assert proc.incarnation == 0
        proc.crash()
        proc.restart()
        assert proc.incarnation == 1

    def test_pre_crash_closure_never_runs_after_restart(self):
        # Even a handle that escapes cancellation (scheduled, crash,
        # restart all at the same instant) is inert: the closure checks
        # the incarnation it was created under.
        sim = Simulator()
        proc = Sink(sim)
        fired = []
        handle = proc.call_later(1.0, fired.append, "stale")
        proc.crash()
        # Simulate a lost cancellation: resurrect the raw handle.
        handle.cancelled = False
        sim._queue.append(handle)
        import heapq

        heapq.heapify(sim._queue)
        proc.restart()
        sim.run()
        assert fired == []

    def test_timer_scheduled_after_restart_fires(self):
        sim = Simulator()
        proc = Sink(sim)
        fired = []
        proc.crash()
        proc.restart()
        proc.call_later(1.0, fired.append, "fresh")
        sim.run()
        assert fired == ["fresh"]

    def test_crashed_process_timer_is_inert_even_if_uncancelled(self):
        sim = Simulator()
        proc = Sink(sim)
        fired = []
        handle = proc.call_later(1.0, fired.append, "x")
        # Crash without the cancellation taking effect (defensive path).
        proc.crashed = True
        handle.cancelled = False
        sim.run()
        assert fired == []


class TestDeterminismUnaffected:
    def test_call_helpers_preserve_schedule_order(self):
        # call_later must not perturb the seq-based tie-break relied on
        # by the byte-identical determinism gates.
        sim = Simulator()
        proc = Sink(sim)
        out = []
        proc.call_later(1.0, out.append, "a")
        sim.schedule(1.0, out.append, "b")
        proc.call_later(1.0, out.append, "c")
        sim.run()
        assert out == ["a", "b", "c"]
