"""Regression tests for cancelled-handle compaction (PR 8 satellite).

Cancelled :class:`EventHandle` tombstones used to sit in the heap until
their deadline was popped — a subscriber churning renewal timers could
pin an unbounded number of dead handles.  The simulator now tracks the
tombstone count and re-heapifies the live handles once cancellations
dominate the queue.
"""

from repro.sim.kernel import Simulator


class TestCompaction:
    def test_cancelled_backlog_is_bounded_under_churn(self):
        sim = Simulator()
        # Schedule-and-cancel far-future timers, the renewal-churn shape.
        for _ in range(10_000):
            sim.schedule(1_000.0, lambda: None).cancel()
        assert sim.compactions > 0
        # Pending tombstones never exceed max(threshold*2, half the queue).
        assert sim.cancelled_pending < 10_000
        assert len(sim._queue) < 10_000

    def test_small_cancel_counts_do_not_trigger_compaction(self):
        sim = Simulator()
        keep = [sim.schedule(5.0, lambda: None) for _ in range(10)]
        for _ in range(Simulator.COMPACT_MIN_CANCELLED - 1):
            sim.schedule(1_000.0, lambda: None).cancel()
        assert sim.compactions == 0
        assert keep  # live handles untouched

    def test_compaction_preserves_execution_order(self):
        ordered = Simulator()
        out_plain = []
        for i in range(200):
            ordered.schedule(float(i % 7), out_plain.append, i)
        ordered.run()

        churned = Simulator()
        out_churned = []
        for i in range(200):
            churned.schedule(float(i % 7), out_churned.append, i)
            # Interleave heavy cancel churn to force compactions.
            for _ in range(3):
                churned.schedule(1_000.0, lambda: None).cancel()
        churned.run(until=999.0)
        assert out_churned == out_plain

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.cancelled_pending == 1


class TestProcessedEventsExcludesCancelled:
    def test_cancelled_never_counted_processed(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "live")
        sim.schedule(2.0, out.append, "dead").cancel()
        sim.schedule(3.0, out.append, "live2")
        executed = sim.run()
        assert out == ["live", "live2"]
        assert executed == 2
        assert sim.processed_events == 2

    def test_cancelled_popped_by_step_not_counted(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        # step() skips the tombstone and executes the live event.
        assert sim.step() is True
        assert sim.processed_events == 1
        assert sim.cancelled_pending == 0

    def test_compacted_and_popped_tombstones_agree_on_stats(self):
        sim = Simulator()
        for i in range(500):
            handle = sim.schedule(float(i), lambda: None)
            if i % 2:
                handle.cancel()
        sim.run()
        assert sim.processed_events == 250
        assert sim.cancelled_pending == 0
        assert sim.pending_events == 0
