"""Unit tests for the trace recorder."""

from repro.sim.trace import TraceRecorder


def test_record_and_len():
    trace = TraceRecorder()
    trace.record(1.0, "publish", "node-1", size=3)
    trace.record(2.0, "deliver", "sub-1")
    assert len(trace) == 2


def test_disabled_recorder_is_noop():
    trace = TraceRecorder(enabled=False)
    trace.record(1.0, "publish", "node-1")
    assert len(trace) == 0


def test_query_by_category():
    trace = TraceRecorder()
    trace.record(1.0, "a", "x")
    trace.record(2.0, "b", "x")
    trace.record(3.0, "a", "y")
    assert len(trace.query(category="a")) == 2


def test_query_by_source():
    trace = TraceRecorder()
    trace.record(1.0, "a", "x")
    trace.record(2.0, "a", "y")
    assert [r.source for r in trace.query(source="y")] == ["y"]


def test_query_by_predicate():
    trace = TraceRecorder()
    trace.record(1.0, "a", "x", value=1)
    trace.record(2.0, "a", "x", value=9)
    heavy = trace.query(predicate=lambda r: r.details.get("value", 0) > 5)
    assert len(heavy) == 1


def test_combined_criteria():
    trace = TraceRecorder()
    trace.record(1.0, "a", "x")
    trace.record(2.0, "a", "y")
    trace.record(3.0, "b", "y")
    assert trace.count(category="a", source="y") == 1


def test_clear():
    trace = TraceRecorder()
    trace.record(1.0, "a", "x")
    trace.clear()
    assert len(trace) == 0


def test_records_preserve_details_and_repr():
    trace = TraceRecorder()
    trace.record(1.5, "match", "node", filter="f1")
    record = list(trace)[0]
    assert record.details["filter"] == "f1"
    assert "match" in repr(record)
