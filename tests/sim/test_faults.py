"""Unit tests for fault injection: FaultPlan, crash gates, accounting."""

import pytest

from repro.sim.kernel import Process, SimulationError, Simulator
from repro.sim.network import FaultPlan, Network


class Sink(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.inbox = []

    def receive(self, message, sender):
        self.inbox.append((message, self.sim.now))


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def net(sim):
    return Network(sim)


def wired(sim, net, latency=0.001):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.connect(a, b, latency=latency)
    return a, b


class TestFaultWindows:
    def test_total_loss_drops_everything_inside_the_window(self, sim, net):
        a, b = wired(sim, net)
        plan = FaultPlan(seed=1)
        plan.add_window(0.0, 10.0, loss=1.0)
        net.install_faults(plan)
        for i in range(5):
            net.send(a, b, i)
        sim.run()
        assert b.inbox == []
        assert net.stats.dropped_messages == 5
        assert net.stats.dropped_bytes > 0
        assert net.link(a, b).dropped_messages == 5

    def test_faults_only_apply_inside_the_window(self, sim, net):
        a, b = wired(sim, net)
        plan = FaultPlan(seed=1)
        plan.add_window(5.0, 10.0, loss=1.0)
        net.install_faults(plan)
        net.send(a, b, "before")
        sim.run()
        sim.schedule_at(6.0, net.send, a, b, "inside")
        sim.schedule_at(11.0, net.send, a, b, "after")
        sim.run()
        assert [m for m, _ in b.inbox] == ["before", "after"]

    def test_window_can_target_specific_links(self, sim, net):
        a, b = wired(sim, net)
        c = Sink(sim, "c")
        net.connect(a, c, latency=0.001)
        plan = FaultPlan(seed=1)
        plan.add_window(0.0, 10.0, loss=1.0, links=[(a, b)])
        net.install_faults(plan)
        net.send(a, b, "lost")
        net.send(a, c, "fine")
        sim.run()
        assert b.inbox == []
        assert [m for m, _ in c.inbox] == ["fine"]

    def test_duplication_delivers_extra_copies(self, sim, net):
        a, b = wired(sim, net)
        plan = FaultPlan(seed=3)
        plan.add_window(0.0, 100.0, duplicate=1.0)
        net.install_faults(plan)
        net.send(a, b, "x")
        sim.run()
        # 100% duplication is capped, but always at least one extra copy.
        assert len(b.inbox) >= 2
        assert net.stats.duplicated_messages == len(b.inbox) - 1
        # Duplicates are wire noise, not sender traffic.
        assert net.stats.total_messages == 1

    def test_jitter_can_reorder_messages(self, sim, net):
        a, b = wired(sim, net, latency=0.001)
        plan = FaultPlan(seed=5)
        plan.add_window(0.0, 100.0, jitter=0.5)
        net.install_faults(plan)
        for i in range(20):
            net.send(a, b, i)
        sim.run()
        order = [m for m, _ in b.inbox]
        assert sorted(order) == list(range(20))
        assert order != list(range(20))  # seed 5 produces a reorder

    def test_same_seed_same_fate(self, sim):
        def run(seed):
            sim = Simulator()
            net = Network(sim)
            a, b = wired(sim, net)
            plan = FaultPlan(seed=seed)
            plan.add_window(0.0, 100.0, loss=0.3, duplicate=0.3, jitter=0.2)
            net.install_faults(plan)
            for i in range(50):
                net.send(a, b, i)
            sim.run()
            return [m for m, _ in b.inbox], net.stats.dropped_messages

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_window_validation(self):
        plan = FaultPlan()
        with pytest.raises(SimulationError):
            plan.add_window(5.0, 5.0)
        with pytest.raises(SimulationError):
            plan.add_window(0.0, 1.0, loss=1.5)
        with pytest.raises(SimulationError):
            plan.add_window(0.0, 1.0, jitter=-0.1)
        with pytest.raises(SimulationError):
            plan.add_crash(Sink(Simulator(), "x"), 1.0, duration=0.0)

    def test_in_fault_window(self):
        plan = FaultPlan()
        plan.add_window(2.0, 4.0, loss=0.5)
        victim = Sink(Simulator(), "v")
        plan.add_crash(victim, 6.0, duration=2.0)
        assert not plan.in_fault_window(1.0)
        assert plan.in_fault_window(2.0)
        assert not plan.in_fault_window(4.0)
        assert plan.in_fault_window(7.0)
        assert not plan.in_fault_window(8.5)


class TestCrashGate:
    def test_crashed_receiver_drops_at_send_time(self, sim, net):
        a, b = wired(sim, net)
        b.crash()
        net.send(a, b, "x")
        sim.run()
        assert b.inbox == []
        assert net.stats.dropped_messages == 1
        assert net.stats.dropped_bytes > 0

    def test_crashed_sender_drops(self, sim, net):
        a, b = wired(sim, net)
        a.crash()
        net.send(a, b, "x")
        sim.run()
        assert b.inbox == []

    def test_in_flight_message_lost_when_receiver_crashes(self, sim, net):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        net.connect(a, b, latency=1.0)
        net.send(a, b, "in flight")
        sim.schedule_at(0.5, b.crash)
        sim.run()
        assert b.inbox == []
        assert net.stats.dropped_messages == 1

    def test_restart_restores_delivery(self, sim, net):
        a, b = wired(sim, net)
        b.crash()
        net.send(a, b, "lost")
        b.restart()
        net.send(a, b, "found")
        sim.run()
        assert [m for m, _ in b.inbox] == ["found"]

    def test_install_faults_schedules_crash_and_restart(self, sim, net):
        a, b = wired(sim, net)
        plan = FaultPlan()
        plan.add_crash(b, at=2.0, duration=3.0)
        net.install_faults(plan)
        sim.schedule_at(3.0, net.send, a, b, "while down")
        sim.schedule_at(6.0, net.send, a, b, "after restart")
        sim.run()
        assert [m for m, _ in b.inbox] == ["after restart"]

    def test_crash_without_duration_is_permanent(self, sim, net):
        a, b = wired(sim, net)
        plan = FaultPlan()
        plan.add_crash(b, at=1.0)
        net.install_faults(plan)
        sim.schedule_at(100.0, net.send, a, b, "never")
        sim.run()
        assert b.inbox == []
