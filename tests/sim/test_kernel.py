"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import Process, SimulationError, Simulator


class Recorder:
    def __init__(self):
        self.calls = []

    def __call__(self, *args):
        self.calls.append(args)


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        out = []
        sim.schedule(2.0, out.append, "late")
        sim.schedule(1.0, out.append, "early")
        sim.run()
        assert out == ["early", "late"]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        out = []
        for label in "abcde":
            sim.schedule(1.0, out.append, label)
        sim.run()
        assert out == list("abcde")

    def test_zero_delay_runs_after_current_instant(self):
        sim = Simulator()
        out = []
        sim.schedule(0.0, out.append, "first")
        sim.schedule(0.0, out.append, "second")
        sim.run()
        assert out == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(3.5, lambda: None)
        sim.run()
        assert sim.now == 3.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        out = []
        sim.schedule_at(5.0, out.append, "x")
        sim.run()
        assert out == ["x"]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_callbacks_receive_args(self):
        sim = Simulator()
        rec = Recorder()
        sim.schedule(1.0, rec, 1, "two", [3])
        sim.run()
        assert rec.calls == [(1, "two", [3])]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        out = []

        def chain(n):
            out.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert out == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestCancel:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        out = []
        handle = sim.schedule(1.0, out.append, "x")
        handle.cancel()
        sim.run()
        assert out == []

    def test_cancel_is_reflected_in_repr(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert "pending" in repr(handle)
        handle.cancel()
        assert "cancelled" in repr(handle)

    def test_cancelled_events_not_counted_as_processed(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.processed_events == 1


class TestRunBounds:
    def test_run_until_is_inclusive(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "in")
        sim.schedule(2.0, out.append, "boundary")
        sim.schedule(3.0, out.append, "out")
        sim.run(until=2.0)
        assert out == ["in", "boundary"]
        assert sim.now == 2.0

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_remaining_events_run_on_next_call(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "a")
        sim.schedule(5.0, out.append, "b")
        sim.run(until=2.0)
        sim.run()
        assert out == ["a", "b"]

    def test_max_events_bound(self):
        sim = Simulator()
        out = []
        for i in range(10):
            sim.schedule(float(i + 1), out.append, i)
        executed = sim.run(max_events=4)
        assert executed == 4
        assert out == [0, 1, 2, 3]

    def test_run_returns_executed_count(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 3

    def test_run_is_not_reentrant(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step_returns_false_on_empty_queue(self):
        assert Simulator().step() is False

    def test_step_executes_single_event(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "a")
        sim.schedule(2.0, out.append, "b")
        assert sim.step() is True
        assert out == ["a"]

    def test_pending_events_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0


class TestProcess:
    def test_receive_is_abstract(self):
        process = Process(Simulator(), "p")
        with pytest.raises(NotImplementedError):
            process.receive("msg", process)

    def test_repr_includes_name(self):
        assert "worker" in repr(Process(Simulator(), "worker"))
