"""Swapping the compiled engine into the overlay is observationally invisible.

``MultiStageEventSystem(engine="compiled")`` routes every broker's
matching through :class:`CompiledMatchEngine`.  Like the routing cache
and batched dispatch before it, the compiled hot path must change only
how much work matching takes — never what the system delivers: with the
engine swapped, same-seed runs must produce byte-identical per-subscriber
delivery traces (timestamps included) and identical LC/RLC/MR counter
inputs, node for node, against the default counting index.
"""

import pytest

from repro.core.engine import MultiStageEventSystem
from repro.sim.rng import RngRegistry
from repro.workloads.bibliographic import BIB_EVENT_CLASS, BibliographicWorkload

#: Counter fields feeding LC/RLC/MR — invariant across engine choices.
#: ``filter_evaluations`` is excluded: the compiled engine's bitmap
#: probes are accounted differently from the counting index's harvests
#: by design (that asymmetry is the speedup).
INVARIANT_FIELDS = (
    "events_received",
    "events_matched",
    "events_forwarded",
    "events_delivered",
    "filters_held",
    "max_filters_held",
)


def run(seed, engine, cache=True, batch=True):
    rngs = RngRegistry(seed)
    workload = BibliographicWorkload(rngs.stream("records"), n_records=150)
    system = MultiStageEventSystem(
        stage_sizes=(6, 3, 1), seed=seed, engine=engine, cache=cache, batch=batch
    )
    system.advertise(
        BIB_EVENT_CLASS, schema=workload.schema,
        association=workload.association(4),
    )
    system.drain()
    traces = {}
    sub_rng = rngs.stream("subs")
    for index in range(40):
        subscriber = system.create_subscriber(f"s{index}")
        trace = traces.setdefault(subscriber.name, [])
        system.subscribe(
            subscriber,
            workload.sample_subscription(sub_rng),
            event_class=BIB_EVENT_CLASS,
            handler=lambda e, m, s, _t=trace: _t.append(
                (system.sim.now, m["title"])
            ),
        )
        system.drain()
    publisher = system.create_publisher()
    event_rng = rngs.stream("events")
    for _ in range(80):
        publisher.publish(workload.sample_record(event_rng))
    system.drain()
    return system, traces


def counters_projection(system):
    return {
        stage: [
            (name, {f: getattr(c, f) for f in INVARIANT_FIELDS})
            for name, c in entries
        ]
        for stage, entries in system.counters_by_stage().items()
    }


@pytest.mark.parametrize("seed", [5, 9])
def test_compiled_engine_preserves_delivery_traces_exactly(seed):
    compiled, traces_compiled = run(seed, engine="compiled")
    index, traces_index = run(seed, engine="index")

    # Byte-identical ordered (time, event) delivery sequences.
    assert repr(traces_compiled).encode() == repr(traces_index).encode()
    assert any(traces_compiled.values())  # non-trivial run

    assert counters_projection(compiled) == counters_projection(index)
    assert compiled.sim.now == index.sim.now


def test_compiled_engine_batch_path_engages():
    compiled, _ = run(7, engine="compiled")
    counters = [n.counters for n in compiled.hierarchy.nodes()]
    assert sum(c.events_matched_batch for c in counters) > 0
    assert sum(c.compile_rebuilds for c in counters) > 0
    # Every batched event was still received/filtered exactly once.
    for counter in counters:
        assert counter.events_matched_batch <= counter.events_received


def test_compiled_engine_without_cache_or_batch_still_identical():
    compiled, traces_compiled = run(13, engine="compiled", cache=False, batch=False)
    index, traces_index = run(13, engine="index", cache=False, batch=False)
    assert repr(traces_compiled).encode() == repr(traces_index).encode()
    assert counters_projection(compiled) == counters_projection(index)
    # Without batching there are no multi-event runs to batch-match.
    assert all(
        n.counters.events_matched_batch == 0 for n in compiled.hierarchy.nodes()
    )


def test_compiled_engine_composes_with_routing_cache():
    compiled, _ = run(17, engine="compiled", cache=True)
    counters = [n.counters for n in compiled.hierarchy.nodes()]
    assert sum(c.cache.hits for c in counters) > 0  # memo engaged on top


def test_engine_argument_validation():
    with pytest.raises(ValueError):
        MultiStageEventSystem(engine="bitmap")
