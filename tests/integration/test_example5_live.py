"""Example 5, run live on Figure 4's topology.

The paper hand-derives the per-stage filter tables for four subscriber
filters (f1..f4) over Stock and Auction events on a 4-stage hierarchy
(N1.1-N1.4 / N2.1-N2.2 / N3.1).  Here the same subscriptions flow
through the actual protocol and the resulting broker tables must contain
exactly the filters the paper lists: the i-set at stage 3, the h-set at
stage 2, and (with covering-merge compaction on the common path) the
g-collapse the paper points out for f1/f2.
"""

import pytest

from repro.core.engine import MultiStageEventSystem
from repro.filters.parser import parse_filter
from repro.workloads.auctions import AUCTION_SCHEMA, Auction
from repro.workloads.stocks import STOCK_SCHEMA, Stock

F1 = 'class = "Stock" and symbol = "DEF" and price < 10.0'
F2 = 'class = "Stock" and symbol = "DEF" and price < 11.0'
F3 = 'class = "Stock" and symbol = "GHI" and price < 8.0'
F4 = (
    'class = "Auction" and product = "Vehicle" and kind = "Car" '
    "and capacity < 2000 and price < 10000.0"
)

I1 = parse_filter('class = "Stock"')
I2 = parse_filter('class = "Auction"')
H1 = parse_filter('class = "Stock" and symbol = "DEF"')
H2 = parse_filter('class = "Stock" and symbol = "GHI"')
H3 = parse_filter('class = "Auction" and product = "Vehicle" and kind = "Car"')


@pytest.fixture(scope="module")
def system():
    system = MultiStageEventSystem(stage_sizes=(4, 2, 1), seed=2002)
    # Stock keeps price through stage 1 (the g1/g2 bounds of Example 5).
    system.advertise("Stock", schema=STOCK_SCHEMA, stage_prefixes=[3, 3, 2, 1])
    # Auction uses Example 6's G_Auction.
    system.advertise("Auction", schema=AUCTION_SCHEMA, stage_prefixes=[5, 4, 3, 1])
    system.register_type(Stock)
    system.register_type(Auction)
    for text in (F1, F2, F3, F4):
        subscriber = system.create_subscriber()
        system.subscribe(subscriber, text)
        system.drain()
    return system


def stage_filters(system, stage):
    filters = set()
    for node in system.hierarchy.nodes(stage):
        filters.update(node.table.filters())
    return filters


def test_stage3_holds_exactly_the_i_filters(system):
    assert stage_filters(system, 3) == {I1, I2}


def test_stage2_holds_exactly_the_h_filters(system):
    assert stage_filters(system, 2) == {H1, H2, H3}


def test_stage1_filters_cover_the_subscriptions(system):
    stage1 = stage_filters(system, 1)
    for text in (F1, F2, F3, F4):
        original = parse_filter(text)
        assert any(stored.covers(original) for stored in stage1), text


def test_similar_f1_f2_cluster_at_one_node(system):
    """§4.2: f1 and f2 differ only in the price bound, so the placement
    algorithm homes them on the same stage-1 node."""
    f1_sub, f2_sub = system.subscribers[0], system.subscribers[1]
    home1 = f1_sub.home_of(f1_sub.subscriptions()[0].subscription_id)
    home2 = f2_sub.home_of(f2_sub.subscriptions()[0].subscription_id)
    assert home1 is home2


def test_paper_example_events_route_correctly(system):
    publisher = system.create_publisher()
    delivered = []
    for index, subscriber in enumerate(system.subscribers):
        state = subscriber._states[subscriber.subscriptions()[0].subscription_id]

        def handler(event, metadata, subscription, _i=index):
            delivered.append(_i)

        state.handler = handler

    publisher.publish(Stock("DEF", 9.5))          # matches f1 and f2
    publisher.publish(Stock("DEF", 10.5))         # matches f2 only
    publisher.publish(Stock("GHI", 9.0))          # nobody (price >= 8)
    publisher.publish(Auction("Vehicle", "Car", 1500, 8000.0))  # f4
    publisher.publish(Auction("Vehicle", "Truck", 1500, 8000.0))  # nobody
    system.drain()
    assert sorted(delivered) == [0, 1, 1, 3]


def test_stage2_collapse_on_the_common_path(system):
    """f1 and f2's stage-2 weakenings are identical (h1), so the parent
    of their shared home holds ONE filter for that branch — the paper's
    "we can now ignore filter f1 ... and keep only g1" effect."""
    f1_sub = system.subscribers[0]
    home = f1_sub.home_of(f1_sub.subscriptions()[0].subscription_id)
    parent = home.parent
    stock_def_entries = [
        (stored, ids)
        for stored, ids in parent.table.entries()
        if stored == H1
    ]
    assert len(stock_def_entries) == 1
    assert home in stock_def_entries[0][1]
