"""End-to-end integration tests across the whole stack.

The headline invariant: whatever the overlay shape, weakening depth, or
placement, subscribers receive exactly the events their original filters
select — pre-filtering is sound (Propositions 1 and 2) and complete for
the workloads tested (no event that should arrive is lost).
"""

from collections import Counter

import pytest

from repro.baselines.centralized import CentralizedSystem
from repro.core.engine import MultiStageEventSystem
from repro.sim.rng import RngRegistry
from repro.workloads.bibliographic import BIB_EVENT_CLASS, BibliographicWorkload


def run_multistage(workload, filters, records, stage_sizes=(6, 3, 1), seed=0,
                   engine="index", wildcard_routing=True):
    system = MultiStageEventSystem(
        stage_sizes=stage_sizes, seed=seed, engine=engine,
        wildcard_routing=wildcard_routing,
    )
    system.advertise(
        BIB_EVENT_CLASS, schema=workload.schema,
        association=workload.association(system.hierarchy.top_stage + 1),
    )
    system.drain()
    deliveries = Counter()
    for index, filter_ in enumerate(filters):
        subscriber = system.create_subscriber(f"sub-{index}")
        system.subscribe(
            subscriber, filter_, event_class=BIB_EVENT_CLASS,
            handler=(
                lambda e, m, s, _i=index: deliveries.__setitem__(
                    (_i, m["title"]), deliveries[(_i, m["title"])] + 1
                )
            ),
        )
        system.drain()
    publisher = system.create_publisher()
    for record in records:
        publisher.publish(record)
    system.drain()
    return system, deliveries


def oracle_deliveries(filters, records):
    """Ground truth computed directly from the original filters."""
    expected = Counter()
    for index, filter_ in enumerate(filters):
        for record in records:
            if filter_.matches(record.to_property_event()):
                expected[(index, record.get_title())] += 1
    return expected


def make_workload(seed, wildcard_rate=0.0, n=40, events=80):
    rngs = RngRegistry(seed)
    workload = BibliographicWorkload(
        rngs.stream("records"), n_years=6, n_conferences=8,
        n_authors=60, n_records=120,
    )
    rng = rngs.stream("subs")
    filters = [
        workload.sample_subscription(rng, wildcard_rate=wildcard_rate,
                                     wildcard_attribute="author")
        for _ in range(n)
    ]
    records = [workload.sample_record(rngs.stream("events")) for _ in range(events)]
    return workload, filters, records


class TestDeliveryEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_multistage_matches_the_oracle(self, seed):
        workload, filters, records = make_workload(seed)
        _, deliveries = run_multistage(workload, filters, records, seed=seed)
        assert deliveries == oracle_deliveries(filters, records)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_with_wildcard_subscriptions(self, seed):
        workload, filters, records = make_workload(seed, wildcard_rate=0.4)
        _, deliveries = run_multistage(workload, filters, records, seed=seed)
        assert deliveries == oracle_deliveries(filters, records)

    def test_wildcards_without_special_routing(self):
        workload, filters, records = make_workload(6, wildcard_rate=0.4)
        _, deliveries = run_multistage(
            workload, filters, records, wildcard_routing=False
        )
        assert deliveries == oracle_deliveries(filters, records)

    def test_table_engine_equivalent_to_index(self):
        workload, filters, records = make_workload(7)
        _, with_index = run_multistage(workload, filters, records, engine="index")
        _, with_table = run_multistage(workload, filters, records, engine="table")
        assert with_index == with_table

    @pytest.mark.parametrize("stage_sizes", [(1,), (5, 1), (8, 4, 2, 1)])
    def test_any_hierarchy_depth(self, stage_sizes):
        workload, filters, records = make_workload(8)
        _, deliveries = run_multistage(
            workload, filters, records, stage_sizes=stage_sizes
        )
        assert deliveries == oracle_deliveries(filters, records)

    def test_agrees_with_centralized_baseline(self):
        workload, filters, records = make_workload(9)
        _, multistage = run_multistage(workload, filters, records)

        central = CentralizedSystem()
        central.advertise(workload.advertisement())
        central_deliveries = Counter()
        for index, filter_ in enumerate(filters):
            subscriber = central.create_subscriber()
            central.subscribe(
                subscriber, filter_, event_class=BIB_EVENT_CLASS,
                handler=(
                    lambda e, m, s, _i=index: central_deliveries.__setitem__(
                        (_i, m["title"]), central_deliveries[(_i, m["title"])] + 1
                    )
                ),
            )
        publisher = central.create_publisher()
        for record in records:
            publisher.publish(record)
        central.drain()
        assert multistage == central_deliveries


class TestOrdering:
    def test_per_subscription_delivery_preserves_publish_order(self):
        workload, _, _ = make_workload(10)
        system = MultiStageEventSystem(stage_sizes=(4, 2, 1), seed=10)
        system.advertise(
            BIB_EVENT_CLASS, schema=workload.schema,
            association=workload.association(4),
        )
        subscriber = system.create_subscriber()
        seen = []
        record = workload.records[0]
        system.subscribe(
            subscriber, workload.subscription_for(record),
            event_class=BIB_EVENT_CLASS,
            handler=lambda e, m, s: seen.append(m["sequence"]),
        )
        system.drain()
        publisher = system.create_publisher()
        for sequence in range(20):
            event = record.to_property_event().with_properties(sequence=sequence)
            publisher.publish(event)
        system.drain()
        assert seen == sorted(seen)
        assert len(seen) == 20


class TestFailureInjection:
    def test_partition_decays_then_heals(self):
        """§4.3: a partitioned branch's filters decay at the parent; after
        the partition heals, renewals restore them and delivery resumes."""
        ttl = 10.0
        system = MultiStageEventSystem(stage_sizes=(2, 1), seed=11, ttl=ttl)
        system.advertise("Note", schema=("class", "topic"))
        system.drain()
        subscriber = system.create_subscriber()
        delivered = []
        system.subscribe(
            subscriber, 'class = "Note" and topic = "x"',
            handler=lambda e, m, s: delivered.append(system.sim.now),
        )
        system.drain()
        home = subscriber.home_of(subscriber.subscriptions()[0].subscription_id)
        root = system.root
        publisher = system.create_publisher()
        system.start_maintenance()

        from repro.events.base import PropertyEvent

        def probe():
            publisher.publish(PropertyEvent({"class": "Note", "topic": "x"}))

        probe()
        system.run_for(1.0)
        assert len(delivered) == 1

        # Partition the home node from the root for > 3xTTL.
        system.network.partition(home, root)
        system.run_for(ttl * 4)
        assert len(root.table) == 0  # the branch's filter decayed
        probe()
        system.run_for(1.0)
        assert len(delivered) == 1  # no path, no delivery

        # Heal: the next renewal restores the filter at the root.
        system.network.heal(home, root)
        system.run_for(ttl)
        assert len(root.table) == 1
        probe()
        system.run_for(1.0)
        assert len(delivered) == 2
        system.stop_maintenance()

    def test_crashed_subscribers_decay_without_affecting_others(self):
        ttl = 10.0
        workload, filters, records = make_workload(12, n=20, events=0)
        system = MultiStageEventSystem(stage_sizes=(4, 2, 1), seed=12, ttl=ttl)
        system.advertise(
            BIB_EVENT_CLASS, schema=workload.schema,
            association=workload.association(4),
        )
        system.drain()
        subscribers = []
        for index, filter_ in enumerate(filters):
            subscriber = system.create_subscriber(f"sub-{index}")
            system.subscribe(subscriber, filter_, event_class=BIB_EVENT_CLASS)
            system.drain()
            subscribers.append(subscriber)
        system.start_maintenance()
        crashed = subscribers[::2]
        for subscriber in crashed:
            subscriber.stop_maintenance()
        system.run_for(ttl * 12)
        # Crashed subscribers' filters are gone from stage 1...
        stage1 = system.hierarchy.nodes(1)
        crashed_set = set(map(id, crashed))
        for node in stage1:
            for _, ids in node.table.entries():
                assert not (set(map(id, ids)) & crashed_set)
        # ...while every survivor's filter is still installed.
        survivors = [s for s in subscribers if s not in crashed]
        for subscriber in survivors:
            home = subscriber.home_of(
                subscriber.subscriptions()[0].subscription_id
            )
            assert any(
                subscriber in ids for _, ids in home.table.entries()
            )
        system.stop_maintenance()


class Alpha:
    def get_x(self):
        return 1


class Beta:
    def get_y(self):
        return 2


class TestMultiClass:
    def test_two_classes_share_one_overlay(self):
        system = MultiStageEventSystem(stage_sizes=(4, 2, 1), seed=13)
        system.register_type(Alpha)
        system.register_type(Beta)
        system.advertise("Alpha", schema=("class", "x"))
        system.advertise("Beta", schema=("class", "y"))
        publisher = system.create_publisher()
        subscriber = system.create_subscriber()
        got = []
        system.subscribe(
            subscriber, None, event_class="Alpha",
            handler=lambda e, m, s: got.append(m["class"]),
        )
        system.drain()
        publisher.publish(Alpha())
        publisher.publish(Beta())
        system.drain()
        assert got == ["Alpha"]
        # The root discriminates on class alone (i1/i2-style filters).
        root_filters = {str(f) for f in system.root.table.filters()}
        assert root_filters == {"(class, 'Alpha', =)"}


class TestGcDepthMismatch:
    def test_hierarchy_deeper_than_association_degrades_gracefully(self):
        """A 4-broker-stage tree with a 3-stage Gc: stages beyond the
        association reuse the top attribute set, deliveries stay exact."""
        workload, filters, records = make_workload(20)
        system = MultiStageEventSystem(stage_sizes=(6, 4, 2, 1), seed=20)
        system.advertise(
            BIB_EVENT_CLASS, schema=workload.schema,
            association=workload.association(stages=3),  # shallower Gc
        )
        system.drain()
        deliveries = Counter()
        for index, filter_ in enumerate(filters):
            subscriber = system.create_subscriber(f"sub-{index}")
            system.subscribe(
                subscriber, filter_, event_class=BIB_EVENT_CLASS,
                handler=(
                    lambda e, m, s, _i=index: deliveries.update(
                        [(_i, m["title"])]
                    )
                ),
            )
            system.drain()
        publisher = system.create_publisher()
        for record in records:
            publisher.publish(record)
        system.drain()
        assert deliveries == oracle_deliveries(filters, records)

    def test_association_deeper_than_hierarchy_is_fine_too(self):
        workload, filters, records = make_workload(21)
        system = MultiStageEventSystem(stage_sizes=(4, 1), seed=21)
        system.advertise(
            BIB_EVENT_CLASS, schema=workload.schema,
            association=workload.association(stages=4),  # deeper Gc
        )
        system.drain()
        deliveries = Counter()
        for index, filter_ in enumerate(filters):
            subscriber = system.create_subscriber(f"sub-{index}")
            system.subscribe(
                subscriber, filter_, event_class=BIB_EVENT_CLASS,
                handler=(
                    lambda e, m, s, _i=index: deliveries.update(
                        [(_i, m["title"])]
                    )
                ),
            )
            system.drain()
        publisher = system.create_publisher()
        for record in records:
            publisher.publish(record)
        system.drain()
        assert deliveries == oracle_deliveries(filters, records)


class TestBrokerCrash:
    def test_dead_branch_decays_and_rest_survives(self):
        """§4.3 applied to a *node* failure: when a stage-1 broker stops
        (partitioned from everything), its filters expire at the parent
        within 3xTTL, while subscribers homed elsewhere stay live."""
        ttl = 10.0
        system = MultiStageEventSystem(stage_sizes=(2, 1), seed=44, ttl=ttl)
        system.advertise("Note", schema=("class", "topic"))
        system.drain()

        from repro.events.base import PropertyEvent

        inbox = {"a": 0, "b": 0}
        subscribers = {}
        stage1 = system.hierarchy.stage1_nodes()
        # Pin each subscriber to its own stage-1 node so the crash hits
        # exactly one branch (deterministic regardless of seed).
        for (name, topic), node in zip((("a", "x"), ("b", "y")), stage1):
            subscriber = system.create_subscriber(name)
            subscribers[name] = subscriber
            system.subscribe(
                subscriber, f'class = "Note" and topic = "{topic}"',
                handler=lambda e, m, s, _n=name: inbox.__setitem__(
                    _n, inbox[_n] + 1
                ),
                at_node=node,
            )
            system.drain()

        home_a = subscribers["a"].home_of(
            subscribers["a"].subscriptions()[0].subscription_id
        )
        home_b = subscribers["b"].home_of(
            subscribers["b"].subscriptions()[0].subscription_id
        )
        assert home_a is not home_b

        publisher = system.create_publisher()
        system.start_maintenance()

        # Crash home_a: cut it off from parent and subscriber, stop tasks.
        home_a.stop_maintenance()
        system.network.partition(home_a, system.root)
        system.network.partition(home_a, subscribers["a"])
        system.run_for(ttl * 4)

        # The dead node's filter expired at the root...
        root_destinations = {
            destination
            for _, ids in system.root.table.entries()
            for destination in ids
        }
        assert home_a not in root_destinations
        assert home_b in root_destinations

        # ...and the surviving branch still delivers.
        publisher.publish(PropertyEvent({"class": "Note", "topic": "y"}))
        publisher.publish(PropertyEvent({"class": "Note", "topic": "x"}))
        system.run_for(1.0)
        assert inbox["b"] == 1
        assert inbox["a"] == 0
        system.stop_maintenance()
