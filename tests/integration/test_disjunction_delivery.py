"""End-to-end disjunctive subscriptions: routed per branch, delivered once."""

from collections import Counter

import pytest

from repro.core.engine import MultiStageEventSystem


class Quote:
    def __init__(self, symbol, price):
        self._symbol = symbol
        self._price = price

    def get_symbol(self):
        return self._symbol

    def get_price(self):
        return self._price


def make_system(**kwargs):
    defaults = dict(stage_sizes=(4, 2, 1), seed=31)
    defaults.update(kwargs)
    system = MultiStageEventSystem(**defaults)
    system.advertise("Quote", schema=("class", "symbol", "price"))
    return system


def test_branches_share_a_group():
    system = make_system()
    subscriber = system.create_subscriber()
    subs = system.subscribe(
        subscriber, 'class = "Quote" and symbol = "A" or class = "Quote" and symbol = "B"'
    )
    assert len(subs) == 2
    assert subs[0].group == subs[1].group is not None


def test_each_event_delivered_at_most_once_per_group():
    system = make_system()
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = Counter()
    system.subscribe(
        subscriber,
        'class = "Quote" and symbol = "A" or class = "Quote" and price < 3',
        handler=lambda e, m, s: got.update([(m["symbol"], m["price"])]),
    )
    system.drain()
    publisher.publish(Quote("A", 10.0), event_class="Quote")  # branch 1
    publisher.publish(Quote("B", 1.0), event_class="Quote")   # branch 2
    publisher.publish(Quote("A", 1.0), event_class="Quote")   # both -> once
    publisher.publish(Quote("B", 9.0), event_class="Quote")   # neither
    system.drain()
    assert got == Counter({("A", 10.0): 1, ("B", 1.0): 1, ("A", 1.0): 1})


def test_disjunction_matches_oracle():
    system = make_system(seed=32)
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = Counter()
    text = (
        'class = "Quote" and symbol = "A" and price < 5 '
        'or class = "Quote" and symbol = "B" and price > 8'
    )
    system.subscribe(
        subscriber, text, handler=lambda e, m, s: got.update([m["price"]])
    )
    system.drain()
    from repro.filters.parser import parse_filter

    oracle_filter = parse_filter(text)
    expected = Counter()
    import random

    rng = random.Random(5)
    for _ in range(60):
        quote = Quote(rng.choice("AB"), round(rng.uniform(0, 10), 1))
        metadata = {
            "class": "Quote",
            "symbol": quote.get_symbol(),
            "price": quote.get_price(),
        }
        if oracle_filter.matches(metadata):
            expected.update([quote.get_price()])
        publisher.publish(quote, event_class="Quote")
    system.drain()
    assert got == expected


def test_same_event_twice_is_delivered_twice():
    """Dedup keys on event identity, not content: republishing the same
    payload is a new event."""
    system = make_system(seed=33)
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = []
    system.subscribe(
        subscriber,
        'class = "Quote" and symbol = "A" or class = "Quote" and price < 99',
        handler=lambda e, m, s: got.append(m["price"]),
    )
    system.drain()
    quote = Quote("A", 5.0)
    publisher.publish(quote, event_class="Quote")
    publisher.publish(quote, event_class="Quote")
    system.drain()
    assert got == [5.0, 5.0]


def test_independent_disjunctions_do_not_share_dedup():
    system = make_system(seed=34)
    publisher = system.create_publisher()
    subscriber = system.create_subscriber()
    got = Counter()
    for label in ("first", "second"):
        system.subscribe(
            subscriber,
            'class = "Quote" and symbol = "A" or class = "Quote" and price < 99',
            handler=lambda e, m, s, _l=label: got.update([_l]),
        )
    system.drain()
    publisher.publish(Quote("A", 5.0), event_class="Quote")
    system.drain()
    assert got == Counter({"first": 1, "second": 1})


def test_bottom_branches_simplify_away():
    system = make_system(seed=35)
    subscriber = system.create_subscriber()
    from repro.filters.disjunction import Disjunction
    from repro.filters.filter import Filter
    from repro.filters.parser import parse_filter

    subs = system.subscribe(
        subscriber,
        Disjunction([Filter.bottom(), parse_filter('class = "Quote" and symbol = "A"')]),
    )
    assert len(subs) == 1
    assert subs[0].group is None  # collapsed to a plain subscription


def test_type_based_disjunction_rejected():
    system = make_system(seed=36)
    system.register_type(Quote)
    subscriber = system.create_subscriber()
    with pytest.raises(ValueError):
        system.subscribe(
            subscriber, 'symbol = "A" or symbol = "B"', event_class=Quote
        )
