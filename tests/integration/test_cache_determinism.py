"""The hot-path optimisations are observationally invisible.

The routing-decision cache and batched dispatch must not change *what*
the system does — only how much work it takes.  This pins the acceptance
criterion: with caching+batching enabled vs disabled, the per-subscriber
delivery traces are byte-identical (timestamps included) and the
LC/RLC/MR inputs agree node for node.  Only the cache/batch counters and
the evaluation-work counters are allowed to differ.
"""

from repro.core.engine import MultiStageEventSystem
from repro.workloads.bibliographic import BIB_EVENT_CLASS, BibliographicWorkload
from repro.sim.rng import RngRegistry

#: Counter fields feeding LC (events x filters), RLC, and MR — these must
#: be invariant.  ``filter_evaluations`` (cache hits skip probes) and the
#: cache/batch bookkeeping are the optimisations' whole point and are
#: excluded; forwarded counts stay equal because batching coalesces
#: *messages*, not per-event forwarding decisions.
INVARIANT_FIELDS = (
    "events_received",
    "events_matched",
    "events_forwarded",
    "events_delivered",
    "filters_held",
    "max_filters_held",
)


def run(seed, cache, batch):
    rngs = RngRegistry(seed)
    workload = BibliographicWorkload(rngs.stream("records"), n_records=150)
    system = MultiStageEventSystem(
        stage_sizes=(6, 3, 1), seed=seed, cache=cache, batch=batch
    )
    system.advertise(
        BIB_EVENT_CLASS, schema=workload.schema,
        association=workload.association(4),
    )
    system.drain()
    traces = {}
    sub_rng = rngs.stream("subs")
    for index in range(40):
        subscriber = system.create_subscriber(f"s{index}")
        trace = traces.setdefault(subscriber.name, [])
        system.subscribe(
            subscriber,
            workload.sample_subscription(sub_rng),
            event_class=BIB_EVENT_CLASS,
            handler=lambda e, m, s, _t=trace: _t.append(
                (system.sim.now, m["title"])
            ),
        )
        system.drain()
    publisher = system.create_publisher()
    event_rng = rngs.stream("events")
    for _ in range(80):
        publisher.publish(workload.sample_record(event_rng))
    system.drain()
    return system, traces


def counters_projection(system):
    return {
        stage: [
            (name, {f: getattr(c, f) for f in INVARIANT_FIELDS})
            for name, c in entries
        ]
        for stage, entries in system.counters_by_stage().items()
    }


def test_cache_and_batch_preserve_delivery_traces_exactly():
    on, traces_on = run(5, cache=True, batch=True)
    off, traces_off = run(5, cache=False, batch=False)

    # Byte-identical ordered (time, event) delivery sequences.
    assert repr(traces_on).encode() == repr(traces_off).encode()
    assert any(traces_on.values())  # non-trivial run

    # The optimisations actually engaged in the "on" run.
    totals_on = [n.counters for n in on.hierarchy.nodes()]
    assert sum(c.cache.hits for c in totals_on) > 0
    assert max(c.max_batch_size for c in totals_on) > 1
    totals_off = [n.counters for n in off.hierarchy.nodes()]
    assert sum(c.cache.lookups for c in totals_off) == 0
    assert max(c.max_batch_size for c in totals_off) <= 1


def test_cache_and_batch_preserve_lc_rlc_mr_inputs():
    on, _ = run(9, cache=True, batch=True)
    off, _ = run(9, cache=False, batch=False)
    assert counters_projection(on) == counters_projection(off)
    assert on.sim.now == off.sim.now


def test_each_optimisation_is_independently_invisible():
    baseline, traces_baseline = run(11, cache=False, batch=False)
    cache_only, traces_cache = run(11, cache=True, batch=False)
    batch_only, traces_batch = run(11, cache=False, batch=True)
    assert traces_cache == traces_baseline
    assert traces_batch == traces_baseline
    assert counters_projection(cache_only) == counters_projection(baseline)
    assert counters_projection(batch_only) == counters_projection(baseline)
