"""Whole-system determinism: identical seeds give identical runs.

The experiments' reproducibility rests on this; these tests pin it at
the level of traces and network statistics, not just summary metrics.
"""

from collections import Counter

from repro.core.engine import MultiStageEventSystem
from repro.workloads.bibliographic import BIB_EVENT_CLASS, BibliographicWorkload
from repro.sim.rng import RngRegistry


def run(seed):
    rngs = RngRegistry(seed)
    workload = BibliographicWorkload(rngs.stream("records"), n_records=150)
    system = MultiStageEventSystem(
        stage_sizes=(6, 3, 1), seed=seed, trace=True, tracing=True
    )
    system.advertise(
        BIB_EVENT_CLASS, schema=workload.schema,
        association=workload.association(4),
    )
    system.drain()
    deliveries = Counter()
    sub_rng = rngs.stream("subs")
    for index in range(40):
        subscriber = system.create_subscriber(f"s{index}")
        system.subscribe(
            subscriber,
            workload.sample_subscription(sub_rng),
            event_class=BIB_EVENT_CLASS,
            handler=lambda e, m, s, _i=index: deliveries.update([(_i, m["title"])]),
        )
        system.drain()
    publisher = system.create_publisher()
    event_rng = rngs.stream("events")
    for _ in range(80):
        publisher.publish(workload.sample_record(event_rng))
    system.drain()
    return system, deliveries


def test_identical_seed_identical_everything():
    system_a, deliveries_a = run(5)
    system_b, deliveries_b = run(5)
    assert deliveries_a == deliveries_b
    assert (
        system_a.network.stats.total_messages
        == system_b.network.stats.total_messages
    )
    # total_bytes is NOT compared: the byte model reprs messages, and
    # subscription ids come from a process-global counter, so their digit
    # lengths differ between two runs in one interpreter.
    trace_a = [(r.time, r.category, r.source) for r in system_a.trace]
    trace_b = [(r.time, r.category, r.source) for r in system_b.trace]
    assert trace_a == trace_b
    homes_a = {s.name: s.home_of(s.subscriptions()[0].subscription_id).name
               for s in system_a.subscribers}
    homes_b = {s.name: s.home_of(s.subscriptions()[0].subscription_id).name
               for s in system_b.subscribers}
    assert homes_a == homes_b
    # The causal trace is part of "everything": same seed, same spans,
    # byte for byte.
    assert len(system_a.tracer) > 0
    assert system_a.tracer.dump() == system_b.tracer.dump()


def test_different_seed_differs_somewhere():
    system_a, deliveries_a = run(5)
    system_b, deliveries_b = run(6)
    assert deliveries_a != deliveries_b


def test_simulated_time_is_deterministic():
    system_a, _ = run(7)
    system_b, _ = run(7)
    assert system_a.sim.now == system_b.sim.now
    assert system_a.sim.processed_events == system_b.sim.processed_events
