"""Unit tests for the exactly-once audit verifier.

The verifier is exercised against hand-built logs and traces so each
verdict (clean, gap, duplicate, excused-by-fault-window) is pinned in
isolation; the integration suites (tests/overlay/test_catchup.py and
test_replay_chaos.py) exercise it against real runs."""

from repro.events.base import PropertyEvent
from repro.events.serialization import Envelope
from repro.filters.filter import Filter
from repro.filters.parser import parse_filter
from repro.log import AuditSubscription, EventLog, verify_exactly_once
from repro.obs.tracing import SUBSCRIBER_STAGE, EventTracer


def build_log(count, symbol="Foo"):
    log = EventLog()
    for seq in range(count):
        log.append(
            Envelope(
                metadata=PropertyEvent(
                    {"class": "Quote", "symbol": symbol, "price": float(seq)}
                ),
                payload=b"",
                published_at=float(seq),
                event_id=("p", seq),
            ),
            time=float(seq),
        )
    return log


def deliver(tracer, subscriber, event_id, time, delivered=1):
    tracer.span(
        time,
        "deliver",
        subscriber,
        SUBSCRIBER_STAGE,
        trace_id=event_id,
        details=(("delivered", delivered),),
    )


def audit(log, tracer, windows=(), **kwargs):
    subscription = AuditSubscription(
        "alice", kwargs.pop("filter", Filter.top()), **kwargs
    )
    return verify_exactly_once(log, tracer, [subscription], fault_windows=windows)


def test_clean_when_every_record_delivered_once():
    log = build_log(5)
    tracer = EventTracer(enabled=True)
    for seq in range(5):
        deliver(tracer, "alice", ("p", seq), float(seq) + 0.1)
    report = audit(log, tracer)
    assert report.clean
    assert report.expected == 5
    assert report.delivered == 5
    assert report.findings == []
    assert "CLEAN" in report.render()


def test_missing_delivery_is_a_gap():
    log = build_log(3)
    tracer = EventTracer(enabled=True)
    deliver(tracer, "alice", ("p", 0), 0.1)
    deliver(tracer, "alice", ("p", 2), 2.1)
    report = audit(log, tracer)
    assert not report.clean
    assert [f.kind for f in report.violations] == ["gap"]
    assert report.gaps[0].event_id == ("p", 1)
    assert "VIOLATED" in report.render()


def test_double_delivery_is_a_duplicate():
    log = build_log(2)
    tracer = EventTracer(enabled=True)
    deliver(tracer, "alice", ("p", 0), 0.1)
    deliver(tracer, "alice", ("p", 1), 1.1)
    deliver(tracer, "alice", ("p", 1), 1.2)
    report = audit(log, tracer)
    assert [f.kind for f in report.violations] == ["duplicate"]
    assert report.duplicates[0].copies == 2


def test_filtered_spans_do_not_count_as_copies():
    log = build_log(1)
    tracer = EventTracer(enabled=True)
    # The envelope arrived but the exact filter rejected it: delivered=0.
    deliver(tracer, "alice", ("p", 0), 0.1, delivered=0)
    report = audit(log, tracer)
    assert report.delivered == 0
    assert [f.kind for f in report.findings] == ["gap"]


def test_fault_window_excuses_but_does_not_hide():
    log = build_log(4)
    tracer = EventTracer(enabled=True)
    deliver(tracer, "alice", ("p", 0), 0.1)
    # (p, 1): published at t=1 inside the window -> excused gap.
    # (p, 2): duplicate whose second copy lands inside the window.
    deliver(tracer, "alice", ("p", 2), 2.1)
    deliver(tracer, "alice", ("p", 2), 2.2)
    # (p, 3): gap entirely outside the window -> real violation.
    report = audit(log, tracer, windows=((0.9, 2.5),))
    assert not report.clean
    assert len(report.findings) == 3
    assert len(report.excused) == 2
    assert [f.event_id for f in report.violations] == [("p", 3)]
    rendered = report.render()
    assert "[fault window]" in rendered


def test_subscription_scope_filters_expectations():
    log = build_log(6)
    tracer = EventTracer(enabled=True)
    for seq in range(3, 6):
        deliver(tracer, "alice", ("p", seq), float(seq) + 0.1)
    # Entitled only from offset 3: earlier records are out of scope.
    report = audit(log, tracer, from_offset=3)
    assert report.clean
    assert report.expected == 3
    # Same via from_time.
    report = audit(log, tracer, from_time=3.0)
    assert report.clean and report.expected == 3


def test_filter_and_event_class_scope():
    log = build_log(4)
    tracer = EventTracer(enabled=True)
    deliver(tracer, "alice", ("p", 3), 3.1)
    report = audit(log, tracer, filter=parse_filter("price >= 3.0"))
    assert report.clean
    assert report.expected == 1
    report = audit(log, tracer, event_class="Trade")
    assert report.expected == 0 and report.clean


def test_deliveries_to_other_subscribers_do_not_count():
    log = build_log(1)
    tracer = EventTracer(enabled=True)
    deliver(tracer, "bob", ("p", 0), 0.1)
    report = audit(log, tracer)
    assert not report.clean
    assert [f.kind for f in report.findings] == ["gap"]
