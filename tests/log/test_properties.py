"""Property-based tests (hypothesis) for log segment/offset arithmetic.

Pin the algebra the replayer and recovery lean on:

- append -> seek -> replay round-trips: reading from any offset yields
  exactly the records at and above it, regardless of segment size;
- ``offset_for_time`` (segment-tail bisection + in-segment bisection)
  agrees with a naive linear scan for arbitrary non-decreasing times;
- ``truncate_before`` lands on segment boundaries, never splits a
  segment, and preserves every surviving record and offset.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.events.base import PropertyEvent
from repro.events.serialization import Envelope
from repro.log import EventLog

#: (segment size, non-decreasing append times) — the shape of any log.
log_shapes = st.tuples(
    st.integers(min_value=1, max_value=7),
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=0,
        max_size=40,
    ).map(sorted),
)


def build(segment_size, times):
    log = EventLog(segment_size=segment_size)
    for seq, time in enumerate(times):
        log.append(
            Envelope(
                metadata=PropertyEvent({"class": "E", "seq": seq}),
                payload=b"",
                published_at=time,
                event_id=("p", seq),
            ),
            time=time,
        )
    return log


@settings(max_examples=150, deadline=None)
@given(log_shapes, st.integers(min_value=-2, max_value=45))
def test_append_seek_replay_round_trip(shape, offset):
    segment_size, times = shape
    log = build(segment_size, times)
    replayed = [r.offset for r in log.read_from(offset)]
    expected = [i for i in range(len(times)) if i >= offset]
    assert replayed == expected
    # Point lookups agree with the sweep.
    for o in range(-1, len(times) + 1):
        record = log.record_at(o)
        if 0 <= o < len(times):
            assert record is not None and record.offset == o
            assert record.publish_seq == o
        else:
            assert record is None


@settings(max_examples=150, deadline=None)
@given(log_shapes, st.floats(min_value=-1.0, max_value=101.0, allow_nan=False))
def test_offset_for_time_matches_linear_scan(shape, point):
    segment_size, times = shape
    log = build(segment_size, times)
    naive = next((i for i, t in enumerate(times) if t >= point), len(times))
    assert log.offset_for_time(point) == naive


@settings(max_examples=150, deadline=None)
@given(log_shapes, st.integers(min_value=0, max_value=45))
def test_truncate_is_segment_granular_and_lossless_above(shape, cut):
    segment_size, times = shape
    log = build(segment_size, times)
    before = {r.offset: r for r in log}
    segments_before = log.segments()
    dropped = log.truncate_before(cut)

    # Survivors start at a segment boundary at or below the cut (an
    # emptied log's start_offset falls back to next_offset)...
    if log.segments():
        assert log.start_offset % segment_size == 0
        assert log.start_offset <= cut
    else:
        assert log.start_offset == log.next_offset == len(times)
    # ...no surviving segment was split...
    assert log.segments() == segments_before[len(segments_before) - len(log.segments()):]
    # ...every record at/above the boundary survives verbatim.
    survivors = list(log)
    assert dropped + len(survivors) == len(times)
    for record in survivors:
        assert record is before[record.offset]
    assert [r.offset for r in survivors] == list(
        range(log.start_offset, len(times))
    )
    # Seeks below the boundary clamp into the retained range.
    if survivors:
        assert log.record_at(log.start_offset - 1) is None


@settings(max_examples=100, deadline=None)
@given(log_shapes)
def test_segments_partition_the_offset_space(shape):
    segment_size, times = shape
    log = build(segment_size, times)
    expected_base = 0
    for base, count in log.segments():
        assert base == expected_base
        assert 1 <= count <= segment_size
        expected_base = base + count
    assert expected_base == log.next_offset
