"""Regression tests for crash-truncated JSONL tails (PR 8 satellite).

A process killed mid-append leaves a partial final line in the tail
segment file.  ``EventLog.load`` used to raise on it, making every
post-crash recovery fail exactly when it was needed; it now discards a
corrupt *final* line (counting it in ``truncated_records_discarded``)
while still rejecting corruption anywhere else in the stream.
"""

import os

import pytest

from repro.events.base import PropertyEvent
from repro.events.serialization import Envelope
from repro.log import EventLog


def envelope(seq, publisher="p"):
    return Envelope(
        metadata=PropertyEvent({"class": "Quote", "seq": seq}),
        payload=f"payload-{seq}".encode(),
        published_at=float(seq),
        event_id=(publisher, seq),
    )


def write_log(directory, count, segment_size=4):
    log = EventLog("node", segment_size=segment_size, directory=directory)
    for seq in range(count):
        log.append(envelope(seq), time=float(seq))
    log.close()


def tail_file(directory):
    return os.path.join(directory, sorted(os.listdir(directory))[-1])


class TestTruncatedTail:
    def test_clean_load_reports_zero_discarded(self, tmp_path):
        directory = str(tmp_path)
        write_log(directory, 6)
        loaded = EventLog.load("node", directory, segment_size=4)
        assert len(loaded) == 6
        assert loaded.truncated_records_discarded == 0

    def test_half_written_final_line_is_discarded(self, tmp_path):
        directory = str(tmp_path)
        write_log(directory, 6)
        path = tail_file(directory)
        with open(path, "r", encoding="utf-8") as file:
            lines = file.readlines()
        # Chop the last record mid-JSON, the shape a crash leaves behind.
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        with open(path, "w", encoding="utf-8") as file:
            file.writelines(lines)

        loaded = EventLog.load("node", directory, segment_size=4)
        assert len(loaded) == 5
        assert loaded.truncated_records_discarded == 1
        assert [r.offset for r in loaded] == list(range(5))

    def test_garbage_final_line_is_discarded(self, tmp_path):
        directory = str(tmp_path)
        write_log(directory, 3, segment_size=8)
        with open(tail_file(directory), "a", encoding="utf-8") as file:
            file.write('{"offset": 99, "nonsense')
        loaded = EventLog.load("node", directory, segment_size=8)
        assert len(loaded) == 3
        assert loaded.truncated_records_discarded == 1

    def test_corruption_before_the_tail_still_raises(self, tmp_path):
        directory = str(tmp_path)
        write_log(directory, 6)  # two segments: 4 + 2 records
        files = sorted(os.listdir(directory))
        assert len(files) == 2
        first = os.path.join(directory, files[0])
        with open(first, "r", encoding="utf-8") as file:
            lines = file.readlines()
        lines[1] = "not json at all\n"
        with open(first, "w", encoding="utf-8") as file:
            file.writelines(lines)
        with pytest.raises(ValueError, match="corrupt record"):
            EventLog.load("node", directory, segment_size=4)

    def test_truncated_nonfinal_line_of_final_file_raises(self, tmp_path):
        directory = str(tmp_path)
        write_log(directory, 3, segment_size=8)
        path = tail_file(directory)
        with open(path, "r", encoding="utf-8") as file:
            lines = file.readlines()
        lines[0] = lines[0][:10] + "\n"
        with open(path, "w", encoding="utf-8") as file:
            file.writelines(lines)
        with pytest.raises(ValueError, match="corrupt record"):
            EventLog.load("node", directory, segment_size=8)


class TestReopenForAppend:
    def test_reopened_log_accepts_appends(self, tmp_path):
        directory = str(tmp_path)
        write_log(directory, 5)
        loaded = EventLog.load("node", directory, segment_size=4, reopen=True)
        loaded.append(envelope(5), time=5.0)
        loaded.close()
        reread = EventLog.load("node", directory, segment_size=4)
        assert len(reread) == 6
        assert [r.offset for r in reread] == list(range(6))

    def test_reopen_after_truncation_rewrites_clean_tail(self, tmp_path):
        directory = str(tmp_path)
        write_log(directory, 6)
        path = tail_file(directory)
        with open(path, "r", encoding="utf-8") as file:
            lines = file.readlines()
        lines[-1] = lines[-1][:20]
        with open(path, "w", encoding="utf-8") as file:
            file.writelines(lines)

        loaded = EventLog.load("node", directory, segment_size=4, reopen=True)
        assert loaded.truncated_records_discarded == 1
        loaded.append(envelope(50), time=50.0)
        loaded.close()
        # The rewritten tail parses cleanly end to end.
        reread = EventLog.load("node", directory, segment_size=4)
        assert reread.truncated_records_discarded == 0
        assert len(reread) == 6
