"""Unit tests for the segmented append-only event log (DESIGN §11).

Covers offset assignment, idempotent appends, time anchoring
(ISO-8601 <-> simulated seconds), offset/timestamp seeks, segment-granular
truncation, watermarks, and the JSONL file round-trip."""

import pytest

from repro.events.base import PropertyEvent
from repro.events.serialization import Envelope
from repro.log import EPOCH_ISO, EventLog, LogRecord, format_point, parse_point


def envelope(seq, publisher="p", **metadata):
    metadata.setdefault("class", "Quote")
    metadata.setdefault("seq", seq)
    return Envelope(
        metadata=PropertyEvent(metadata),
        payload=f"payload-{publisher}-{seq}".encode(),
        published_at=float(seq),
        event_id=(publisher, seq),
    )


def fill(log, count, publisher="p", start=0, dt=1.0):
    for seq in range(start, start + count):
        log.append(envelope(seq, publisher), time=seq * dt)


# ----------------------------------------------------------------------
# Time points
# ----------------------------------------------------------------------


def test_parse_point_passthrough_and_iso():
    assert parse_point(12.5) == 12.5
    assert parse_point(3) == 3.0
    assert parse_point(EPOCH_ISO) == 0.0
    assert parse_point("2002-01-01T00:01:00+00:00") == 60.0
    assert parse_point("2002-01-01T00:01:00Z") == 60.0
    # Naive timestamps are taken as UTC.
    assert parse_point("2002-01-01T01:00:00") == 3600.0


def test_format_point_round_trips():
    for t in (0.0, 1.0, 61.25, 86400.0):
        assert parse_point(format_point(t)) == t


def test_parse_point_rejects_non_points():
    with pytest.raises(TypeError):
        parse_point(None)
    with pytest.raises(TypeError):
        parse_point(True)


# ----------------------------------------------------------------------
# Appending
# ----------------------------------------------------------------------


def test_offsets_are_dense_and_segments_roll():
    log = EventLog(segment_size=4)
    fill(log, 10)
    assert log.next_offset == 10
    assert [r.offset for r in log] == list(range(10))
    assert log.segments() == [(0, 4), (4, 4), (8, 2)]


def test_append_is_idempotent_on_event_id():
    log = EventLog(segment_size=4)
    first = log.append(envelope(0), time=0.0)
    again = log.append(envelope(0), time=5.0)
    assert again is first
    assert log.next_offset == 1
    assert log.duplicates_skipped == 1


def test_append_rejects_time_regression():
    log = EventLog()
    log.append(envelope(0), time=5.0)
    with pytest.raises(ValueError):
        log.append(envelope(1), time=4.0)


def test_max_source_offset_tracks_highest_root_offset():
    log = EventLog()
    assert log.max_source_offset is None
    log.append(envelope(0), time=0.0, source_offset=7)
    log.append(envelope(1), time=1.0, source_offset=3)
    assert log.max_source_offset == 7


def test_watermarks_per_publisher():
    log = EventLog()
    log.append(envelope(0, "a"), time=0.0)
    log.append(envelope(2, "a"), time=1.0)
    log.append(envelope(5, "b"), time=2.0)
    assert log.watermarks() == {"a": 2, "b": 5}


# ----------------------------------------------------------------------
# Seeking
# ----------------------------------------------------------------------


def test_record_at_and_read_from():
    log = EventLog(segment_size=3)
    fill(log, 8)
    assert log.record_at(0).publish_seq == 0
    assert log.record_at(7).publish_seq == 7
    assert log.record_at(8) is None
    assert log.record_at(-1) is None
    assert [r.offset for r in log.read_from(5)] == [5, 6, 7]
    assert [r.offset for r in log.read_from(0)] == list(range(8))
    assert list(log.read_from(99)) == []


def test_offset_for_time_bisects():
    log = EventLog(segment_size=3)
    fill(log, 8, dt=2.0)  # times 0, 2, 4, ..., 14
    assert log.offset_for_time(0.0) == 0
    assert log.offset_for_time(4.0) == 2
    assert log.offset_for_time(5.0) == 3  # between records -> next one
    assert log.offset_for_time(14.0) == 7
    assert log.offset_for_time(15.0) == 8  # past the tail -> next_offset
    assert log.offset_for_time(format_point(6.0)) == 3


def test_seen():
    log = EventLog()
    log.append(envelope(0), time=0.0)
    assert log.seen(("p", 0))
    assert not log.seen(("p", 1))


# ----------------------------------------------------------------------
# Truncation
# ----------------------------------------------------------------------


def test_truncate_before_is_segment_granular():
    log = EventLog(segment_size=4)
    fill(log, 10)
    # Offset 5 is mid-segment: only the first whole segment goes.
    assert log.truncate_before(5) == 4
    assert log.start_offset == 4
    assert log.next_offset == 10
    assert log.record_at(3) is None
    assert log.record_at(4).offset == 4
    # Watermarks never retreat across truncation.
    assert log.watermarks() == {"p": 9}
    # Exactly on a boundary drops everything below it.
    assert log.truncate_before(8) == 4
    assert log.start_offset == 8


def test_truncated_ids_forgotten_but_offsets_stable():
    log = EventLog(segment_size=2)
    fill(log, 4)
    log.truncate_before(2)
    assert not log.seen(("p", 0))
    # Re-presenting a truncated event appends afresh at a *new* offset
    # (the log never reuses offsets).
    record = log.append(envelope(0), time=10.0)
    assert record.offset == 4


# ----------------------------------------------------------------------
# File persistence
# ----------------------------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    directory = str(tmp_path / "segments")
    log = EventLog("root", segment_size=3, directory=directory)
    fill(log, 7)
    log.append(
        Envelope(
            metadata=PropertyEvent({"class": "Quote", "unicode": "süb"}),
            payload=b"\x00\xff binary",
            published_at=None,
            event_id=("q", 0),
        ),
        time=7.0,
        source_offset=42,
    )
    log.close()

    loaded = EventLog.load("root", directory, segment_size=3)
    assert loaded.next_offset == log.next_offset
    assert loaded.segments() == log.segments()
    for original, reread in zip(log, loaded):
        assert reread.offset == original.offset
        assert reread.time == original.time
        assert reread.event_id == original.event_id
        assert reread.source_offset == original.source_offset
        assert reread.envelope.payload == original.envelope.payload
        assert dict(reread.envelope.metadata) == dict(original.envelope.metadata)
    assert loaded.max_source_offset == 42


def test_record_json_is_deterministic():
    record = LogRecord(3, 1.5, envelope(3), source_offset=3)
    assert record.to_json() == record.to_json()
    reread = LogRecord.from_json(record.to_json())
    assert reread.event_id == record.event_id
    assert reread.envelope.payload == record.envelope.payload
