"""Unit tests for per-stage sampling (obs/sampling.py) and the
recurring-timer kernel primitive that drives it."""

import pytest

from repro.obs.sampling import METRICS, StageSampler
from repro.sim.kernel import SimulationError, Simulator


class _Counters:
    def __init__(self):
        self.events_received = 0
        self.control_retransmits = 0


class _FakeBroker:
    """The slice of BrokerNode the sampler reads."""

    def __init__(self, name, stage):
        self.name = name
        self.stage = stage
        self.counters = _Counters()
        self._publish_queue = []
        self.table = {}

    def queue_depth(self):
        return len(self._publish_queue)


class TestSimulatorEvery:
    def test_ticks_land_on_fixed_grid(self):
        sim = Simulator()
        times = []
        sim.every(0.5, lambda: times.append(sim.now))
        sim.run(until=2.2)
        assert times == [0.5, 1.0, 1.5, 2.0]

    def test_cancel_stops_future_ticks(self):
        sim = Simulator()
        times = []
        handle = sim.every(0.5, lambda: times.append(sim.now))
        sim.run(until=1.1)
        handle.cancel()
        sim.run(until=3.0)
        assert times == [0.5, 1.0]

    def test_callback_may_cancel_its_own_handle(self):
        sim = Simulator()
        ticks = []
        handle = sim.every(0.5, lambda: (ticks.append(sim.now), handle.cancel()))
        sim.run(until=5.0)
        assert ticks == [0.5]

    def test_ordering_against_same_tick_one_shots(self):
        """Clock ties break by scheduling order.  The first tick is
        enqueued at arming time, so it beats a one-shot scheduled
        *afterwards* for the same instant; every later tick is enqueued
        during the previous tick's fire, so a one-shot armed before that
        moment wins its tie."""
        sim = Simulator()
        order = []
        sim.every(1.0, lambda: order.append("tick"))
        sim.schedule(1.0, lambda: order.append("late one-shot"))
        sim.schedule(2.0, lambda: order.append("early one-shot"))
        sim.run(until=2.0)
        assert order == ["tick", "late one-shot", "early one-shot", "tick"]

    def test_non_positive_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.every(-1.0, lambda: None)


class TestStageSampler:
    def _sampler(self):
        sim = Simulator()
        sampler = StageSampler(sim, interval=0.5)
        top = _FakeBroker("N2.1", 2)
        left = _FakeBroker("N1.1", 1)
        right = _FakeBroker("N1.2", 1)
        sampler.attach([top, left, right])
        return sim, sampler, top, left, right

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            StageSampler(Simulator(), interval=0.0)

    def test_tick_records_rates_and_gauges(self):
        sim, sampler, top, left, _ = self._sampler()
        sampler.start()
        top.counters.events_received = 10
        top._publish_queue.extend(["a", "b"])
        left.table["f"] = object()
        sim.run(until=0.6)  # one tick at t=0.5
        top.counters.events_received = 12
        top.counters.control_retransmits = 3
        sim.run(until=1.1)  # second tick at t=1.0
        sampler.stop()
        assert sampler.times == [0.5, 1.0]
        assert sampler.samples["N2.1"]["events_per_s"] == [20.0, 4.0]
        assert sampler.samples["N2.1"]["retransmits_per_s"] == [0.0, 6.0]
        assert sampler.samples["N2.1"]["queue_depth"] == [2.0, 2.0]
        assert sampler.samples["N1.1"]["table_size"] == [1.0, 1.0]

    def test_stage_series_sums_nodes_highest_stage_first(self):
        sim, sampler, top, left, right = self._sampler()
        sampler.start()
        left.counters.events_received = 4
        right.counters.events_received = 6
        sim.run(until=0.6)
        sampler.stop()
        series = sampler.stage_series("events_per_s")
        assert [name for name, _ in series] == ["stage 2", "stage 1"]
        assert dict(series)["stage 1"] == [20.0]

    def test_peak_sorts_descending_with_name_tiebreak(self):
        sim, sampler, top, left, right = self._sampler()
        sampler.start()
        left.counters.events_received = 5
        right.counters.events_received = 5
        top.counters.events_received = 1
        sim.run(until=0.6)
        sampler.stop()
        assert sampler.peak("events_per_s") == [
            ("N1.1", 10.0),
            ("N1.2", 10.0),
            ("N2.1", 2.0),
        ]

    def test_unknown_metric_raises(self):
        _, sampler, *_ = self._sampler()
        with pytest.raises(KeyError):
            sampler.node_series("latency")
        assert "latency" not in METRICS

    def test_attach_is_idempotent_per_name(self):
        sim = Simulator()
        sampler = StageSampler(sim)
        node = _FakeBroker("N1.1", 1)
        sampler.attach([node])
        sampler.attach([node])
        assert list(sampler.samples) == ["N1.1"]

    def test_start_stop_running_flag(self):
        sim, sampler, *_ = self._sampler()
        assert not sampler.running
        sampler.start()
        assert sampler.running
        sampler.start()  # second start is a no-op, not a double tick
        sim.run(until=0.6)
        sampler.stop()
        assert not sampler.running
        assert sampler.times == [0.5]
