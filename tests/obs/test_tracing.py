"""Unit tests for the causal tracing core (obs/tracing.py)."""

import pytest

from repro.obs.tracing import (
    EventTracer,
    PUBLISHER_STAGE,
    SUBSCRIBER_STAGE,
    Span,
    reconstruct_paths,
)


def _publish(tracer, t, node, trace_id):
    tracer.span(t, "publish", node, PUBLISHER_STAGE, trace_id,
                (("class", "Quote"),))


def _hop(tracer, t, node, stage, trace_id, src):
    tracer.span(t, "hop", node, stage, trace_id,
                (("src", src), ("cache", "miss"), ("matched", True)))


def _deliver(tracer, t, node, trace_id, src, delivered=1):
    tracer.span(t, "deliver", node, SUBSCRIBER_STAGE, trace_id,
                (("src", src), ("delivered", delivered)))


class TestEventTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = EventTracer(enabled=False)
        _publish(tracer, 0.0, "pub", ("pub", 1))
        assert len(tracer) == 0
        assert tracer.dump() == b""
        assert tracer.event_ids() == []

    def test_spans_get_sequential_seq_numbers(self):
        tracer = EventTracer(enabled=True)
        _publish(tracer, 0.0, "pub", ("pub", 1))
        _hop(tracer, 0.1, "N1.1", 1, ("pub", 1), "pub")
        assert [s.seq for s in tracer] == [0, 1]

    def test_for_event_filters_and_preserves_order(self):
        tracer = EventTracer(enabled=True)
        _publish(tracer, 0.0, "pub", ("pub", 1))
        _publish(tracer, 0.0, "pub", ("pub", 2))
        _hop(tracer, 0.1, "N1.1", 1, ("pub", 1), "pub")
        spans = tracer.for_event(("pub", 1))
        assert [s.kind for s in spans] == ["publish", "hop"]
        assert all(s.trace_id == ("pub", 1) for s in spans)

    def test_event_ids_first_seen_order_skips_control_spans(self):
        tracer = EventTracer(enabled=True)
        tracer.span(0.0, "retransmit", "N1.1", 1, None, (("frames", 2),))
        _publish(tracer, 0.1, "pub", ("pub", 2))
        _publish(tracer, 0.2, "pub", ("pub", 1))
        _hop(tracer, 0.3, "N1.1", 1, ("pub", 2), "pub")
        assert tracer.event_ids() == [("pub", 2), ("pub", 1)]

    def test_kinds_selects_multiple(self):
        tracer = EventTracer(enabled=True)
        _publish(tracer, 0.0, "pub", ("pub", 1))
        tracer.span(0.1, "drop", "a->b", -2, ("pub", 1))
        tracer.span(0.2, "dup", "a->b", -2, ("pub", 1))
        assert [s.kind for s in tracer.kinds("drop", "dup")] == ["drop", "dup"]

    def test_dump_is_deterministic_and_line_per_span(self):
        def build():
            tracer = EventTracer(enabled=True)
            _publish(tracer, 0.0, "pub", ("pub", 1))
            _hop(tracer, 0.125, "N1.1", 1, ("pub", 1), "pub")
            return tracer

        a, b = build(), build()
        assert a.dump() == b.dump()
        assert len(a.dump().splitlines()) == len(a)

    def test_span_render_includes_identity_and_details(self):
        span = Span(7, 1.5, "hop", "N2.1", 2, ("pub", 3),
                    (("src", "N3.1"), ("fanout", 2)))
        text = span.render()
        assert text.startswith("7 t=1.5 hop @N2.1 stage=2 id=pub/3")
        assert "src='N3.1'" in text and "fanout=2" in text

    def test_clear_resets_sequence(self):
        tracer = EventTracer(enabled=True)
        _publish(tracer, 0.0, "pub", ("pub", 1))
        tracer.clear()
        _publish(tracer, 0.0, "pub", ("pub", 1))
        assert [s.seq for s in tracer] == [0]


class TestReconstruction:
    def _traced_delivery(self):
        tracer = EventTracer(enabled=True)
        trace_id = ("pub", 4)
        _publish(tracer, 0.0, "pub", trace_id)
        _hop(tracer, 0.1, "N2.1", 2, trace_id, "pub")
        _hop(tracer, 0.2, "N1.1", 1, trace_id, "N2.1")
        _deliver(tracer, 0.3, "alice", trace_id, "N1.1")
        return tracer, trace_id

    def test_complete_chain_reconstructs_source_first(self):
        tracer, trace_id = self._traced_delivery()
        (path,) = tracer.reconstruct(trace_id)
        assert path.complete and path.delivered
        assert path.subscriber == "alice"
        assert [s.node for s in path.spans] == ["pub", "N2.1", "N1.1", "alice"]
        assert path.hop_latencies == [
            ("N2.1", 2, pytest.approx(0.1)),
            ("N1.1", 1, pytest.approx(0.1)),
            ("alice", 0, pytest.approx(0.1)),
        ]
        assert "complete, delivered" in path.render()

    def test_missing_hop_breaks_the_chain(self):
        tracer = EventTracer(enabled=True)
        trace_id = ("pub", 9)
        _publish(tracer, 0.0, "pub", trace_id)
        # No stage-2 hop recorded: the stage-1 hop points at a node with
        # no span of its own.
        _hop(tracer, 0.2, "N1.1", 1, trace_id, "N2.1")
        _deliver(tracer, 0.3, "alice", trace_id, "N1.1")
        (path,) = tracer.reconstruct(trace_id)
        assert not path.complete
        assert path.delivered
        assert tracer.incomplete_deliveries() == [path]
        assert "BROKEN" in path.render()

    def test_filtered_out_delivery_is_not_incomplete(self):
        tracer = EventTracer(enabled=True)
        trace_id = ("pub", 2)
        _deliver(tracer, 0.3, "alice", trace_id, "ghost", delivered=0)
        (path,) = tracer.reconstruct(trace_id)
        assert not path.complete and not path.delivered
        assert tracer.incomplete_deliveries() == []
        assert "filtered out" in path.render()

    def test_duplicate_hops_keep_first_and_terminate(self):
        tracer, trace_id = self._traced_delivery()
        # A fault-injected duplicate repeats the same edge later.
        _hop(tracer, 0.4, "N1.1", 1, trace_id, "N2.1")
        (path,) = tracer.reconstruct(trace_id)
        assert path.complete
        assert [s.time for s in path.spans] == [0.0, 0.1, 0.2, 0.3]

    def test_cycle_in_src_links_terminates(self):
        spans = [
            Span(0, 0.1, "hop", "A", 2, ("p", 1), (("src", "B"),)),
            Span(1, 0.2, "hop", "B", 1, ("p", 1), (("src", "A"),)),
            Span(2, 0.3, "deliver", "s", 0, ("p", 1),
                 (("src", "A"), ("delivered", 1))),
        ]
        (path,) = reconstruct_paths(spans)
        assert not path.complete  # walk must not loop forever

    def test_two_subscribers_two_paths(self):
        tracer, trace_id = self._traced_delivery()
        _deliver(tracer, 0.35, "bob", trace_id, "N1.1")
        paths = tracer.reconstruct(trace_id)
        assert sorted(p.subscriber for p in paths) == ["alice", "bob"]
        assert all(p.complete for p in paths)
