"""FlowGraph: an ordered, validated collection of flow specs.

The graph is what an application hands to
``MultiStageEventSystem.install_flows``: an insertion-ordered set of
:class:`~repro.streams.spec.FlowSpec` objects, with convenience
constructors for the three operator families.  Flows may *chain* —
a flow whose input filter matches another flow's output class consumes
the derived events at the same broker — but a flow never consumes its
own output (the broker skips events from the flow's own reserved
publisher namespace), and chains are depth-limited at the broker so a
mutually-recursive pair cannot livelock an instant.
"""

from typing import Dict, Iterable, List, Optional, Tuple

from repro.filters.filter import Filter
from repro.streams.spec import (
    Aggregate,
    CollapseSpec,
    DeriveSpec,
    FlowSpec,
    WindowSpec,
)


class FlowGraph:
    """An insertion-ordered collection of uniquely named flows."""

    def __init__(self, flows: Iterable[FlowSpec] = ()) -> None:
        self._flows: Dict[str, FlowSpec] = {}
        for spec in flows:
            self.add(spec)

    def add(self, spec: FlowSpec) -> "FlowGraph":
        if spec.name in self._flows:
            raise ValueError(f"duplicate flow name {spec.name!r}")
        self._flows[spec.name] = spec
        return self

    def window(
        self,
        name: str,
        input_filter: Filter,
        output_class: str,
        *,
        kind: str = "tumbling",
        mode: str = "time",
        size: float,
        slide: Optional[float] = None,
        group_by: Tuple[str, ...] = (),
        aggregates: Iterable[Tuple[str, str, str]] = (),
        broker: Optional[str] = None,
    ) -> "FlowGraph":
        """Add a window flow; aggregates as (attribute, combiner, output)."""
        spec = FlowSpec(
            name=name,
            input_filter=input_filter,
            output_class=output_class,
            operator=WindowSpec(
                kind=kind,
                mode=mode,
                size=size,
                slide=slide,
                group_by=tuple(group_by),
                aggregates=tuple(Aggregate(*a) for a in aggregates),
            ),
            broker=broker,
        )
        return self.add(spec)

    def collapse(
        self,
        name: str,
        input_filter: Filter,
        output_class: str,
        *,
        keys: Tuple[str, ...],
        interval: Optional[float] = None,
        max_batch: Optional[int] = None,
        broker: Optional[str] = None,
    ) -> "FlowGraph":
        spec = FlowSpec(
            name=name,
            input_filter=input_filter,
            output_class=output_class,
            operator=CollapseSpec(
                keys=tuple(keys), interval=interval, max_batch=max_batch
            ),
            broker=broker,
        )
        return self.add(spec)

    def derive(
        self,
        name: str,
        input_filter: Filter,
        output_class: str,
        *,
        select: Tuple[str, ...] = (),
        rename: Tuple[Tuple[str, str], ...] = (),
        broker: Optional[str] = None,
    ) -> "FlowGraph":
        spec = FlowSpec(
            name=name,
            input_filter=input_filter,
            output_class=output_class,
            operator=DeriveSpec(select=tuple(select), rename=tuple(rename)),
            broker=broker,
        )
        return self.add(spec)

    def flows(self) -> Tuple[FlowSpec, ...]:
        return tuple(self._flows.values())

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self):
        return iter(self._flows.values())

    def by_broker(self) -> Dict[Optional[str], List[FlowSpec]]:
        """Group flows by hosting broker name (None = root)."""
        grouped: Dict[Optional[str], List[FlowSpec]] = {}
        for spec in self._flows.values():
            grouped.setdefault(spec.broker, []).append(spec)
        return grouped
