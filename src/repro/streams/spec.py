"""Declarative specifications of in-broker information flows.

A *flow* is a named, stateful operator installed on one broker of the
hierarchy (Gryphon's "information flow graph" idea grafted onto the
paper's filter-and-forward tree).  Specs are **declarative and
picklable** — frozen dataclasses over attribute names, combiner names,
and a plain :class:`~repro.filters.filter.Filter` — never application
closures: brokers keep the event-safety property (they run no user code
and never unmarshal payloads) and the specs travel unchanged over every
runtime backend's wire.

Three operator families:

- :class:`WindowSpec` — tumbling or sliding windows, sized by simulated
  time or by event count, grouped by key attributes, with aggregate
  combiners (``count``/``sum``/``min``/``max``/``avg``/``last``);
- :class:`CollapseSpec` — coalesce bursts of events agreeing on key
  attributes into one event carrying the last value set plus a
  ``collapsed_n`` count;
- :class:`DeriveSpec` — per-event republication with attribute
  select/rename (a stateless transform).

A :class:`FlowSpec` binds one operator to an input filter, an output
event class, and a hosting broker.  Derived events are republished under
the **reserved publisher namespace** ``("<broker>:<flow>", seq)`` so
their ids can never collide with upstream ``(publisher, seq)`` ids —
publisher names containing ``:`` are rejected nowhere else, so the colon
is reserved by convention and documented in DESIGN §15.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.filters.filter import Filter

#: Aggregate combiners a window may apply to an attribute.
COMBINERS = ("count", "sum", "min", "max", "avg", "last")


@dataclass(frozen=True)
class Aggregate:
    """One aggregate column of a window emission.

    ``attribute`` is the input attribute combined (ignored for
    ``count``); ``output`` is the emitted attribute name.
    """

    attribute: str
    combiner: str
    output: str

    def __post_init__(self) -> None:
        if self.combiner not in COMBINERS:
            raise ValueError(
                f"combiner must be one of {COMBINERS}, got {self.combiner!r}"
            )
        if not self.output:
            raise ValueError("aggregate output name must be non-empty")
        if self.combiner != "count" and not self.attribute:
            raise ValueError(f"{self.combiner} aggregate needs a source attribute")


@dataclass(frozen=True)
class WindowSpec:
    """A tumbling or sliding window with aggregate combiners.

    ``mode`` picks the window coordinate: ``"time"`` windows span
    ``size`` simulated seconds (boundaries aligned at multiples of
    ``size`` — or of ``slide`` for sliding windows — so same-seed runs
    fire identically); ``"count"`` windows span ``size`` events per
    group.  Tumbling windows partition the stream; sliding windows of
    span ``size`` advance by ``slide`` (time seconds or event count).
    """

    kind: str  # "tumbling" | "sliding"
    mode: str  # "time" | "count"
    size: float
    slide: Optional[float] = None
    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[Aggregate, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("tumbling", "sliding"):
            raise ValueError(f"kind must be tumbling/sliding, got {self.kind!r}")
        if self.mode not in ("time", "count"):
            raise ValueError(f"mode must be time/count, got {self.mode!r}")
        if self.size <= 0:
            raise ValueError(f"window size must be positive, got {self.size}")
        if self.kind == "tumbling":
            if self.slide is not None:
                raise ValueError("tumbling windows take no slide")
        else:
            if self.slide is None or self.slide <= 0 or self.slide > self.size:
                raise ValueError(
                    f"sliding windows need 0 < slide <= size, got {self.slide}"
                )
        if self.mode == "count" and int(self.size) != self.size:
            raise ValueError("count windows need an integral size")
        if not self.aggregates:
            raise ValueError("a window needs at least one aggregate")

    @property
    def outputs(self) -> Tuple[str, ...]:
        return tuple(a.output for a in self.aggregates)


@dataclass(frozen=True)
class CollapseSpec:
    """Coalesce bursts agreeing on ``keys`` into one last-value event.

    Pending per-key state flushes every ``interval`` simulated seconds
    and/or as soon as a key absorbs ``max_batch`` events.  The emitted
    event carries the *last* event's attributes plus ``collapsed_n``,
    the number of input events it stands for.
    """

    keys: Tuple[str, ...]
    interval: Optional[float] = None
    max_batch: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.keys:
            raise ValueError("collapse needs at least one key attribute")
        if self.interval is None and self.max_batch is None:
            raise ValueError("collapse needs an interval and/or a max_batch")
        if self.interval is not None and self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")


@dataclass(frozen=True)
class DeriveSpec:
    """Stateless per-event republication with attribute select/rename.

    ``select`` keeps only the named input attributes (empty = all but
    the reserved ``class``); ``rename`` maps selected input names to
    output names, applied after selection.
    """

    select: Tuple[str, ...] = ()
    rename: Tuple[Tuple[str, str], ...] = ()


OperatorSpec = Union[WindowSpec, CollapseSpec, DeriveSpec]


@dataclass(frozen=True)
class FlowSpec:
    """One named flow: input filter -> operator -> derived event class.

    ``broker`` names the hosting broker (``None`` = the root, where
    derived events reach the whole tree; a subtree broker scopes the
    flow's output to its own subtree).  Derived events are republished
    under the reserved publisher namespace ``"<broker>:<name>"``, so
    ``name`` must be unique per broker.
    """

    name: str
    input_filter: Filter
    output_class: str
    operator: OperatorSpec
    broker: Optional[str] = None
    #: Opaque payload bytes the emitter charges per derived event are
    #: the pickled property dict; nothing configurable rides here.
    meta: Tuple[Tuple[str, str], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("flow name must be non-empty")
        if ":" in self.name or "/" in self.name:
            raise ValueError(f"flow name may not contain ':' or '/': {self.name!r}")
        if not self.output_class:
            raise ValueError("output_class must be non-empty")

    @property
    def operator_kind(self) -> str:
        if isinstance(self.operator, WindowSpec):
            return "window"
        if isinstance(self.operator, CollapseSpec):
            return "collapse"
        return "derive"

    def output_schema(self) -> Tuple[str, ...]:
        """A generality-ordered schema for the derived event class.

        Used by the engine to auto-advertise the output class when the
        application has not advertised it explicitly (most-general
        attributes first, matching the conventions of §4.1).
        """
        if isinstance(self.operator, WindowSpec):
            return (
                ("class",)
                + self.operator.group_by
                + self.operator.outputs
                + ("window_start", "window_end", "n")
            )
        if isinstance(self.operator, CollapseSpec):
            return ("class",) + self.operator.keys + ("collapsed_n",)
        renamed = dict(self.operator.rename)
        selected = tuple(renamed.get(a, a) for a in self.operator.select)
        return ("class",) + selected
