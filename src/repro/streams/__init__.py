"""In-broker information flows (DESIGN §15).

Gryphon-style stateful operators hosted on brokers of the weakening
tree: windowed aggregation, burst collapsing, and derived-event
republication under the reserved ``(broker:flow, seq)`` publisher
namespace.  Specs are declarative and picklable; operator state is
§4.3 soft state kept alive by :class:`FlowRegistrar` renewals.
"""

from repro.streams.flowgraph import FlowGraph
from repro.streams.operators import (
    CollapseState,
    DeriveState,
    Emission,
    FlowRuntime,
    WindowState,
    build_state,
)
from repro.streams.registrar import FlowRegistrar
from repro.streams.spec import (
    COMBINERS,
    Aggregate,
    CollapseSpec,
    DeriveSpec,
    FlowSpec,
    WindowSpec,
)

__all__ = [
    "COMBINERS",
    "Aggregate",
    "CollapseSpec",
    "CollapseState",
    "DeriveSpec",
    "DeriveState",
    "Emission",
    "FlowGraph",
    "FlowRegistrar",
    "FlowRuntime",
    "FlowSpec",
    "WindowSpec",
    "WindowState",
    "build_state",
]
