"""Pure operator state machines behind in-broker information flows.

Each state machine consumes event *metadata* (never payloads — brokers
stay event-safe) through two entry points the hosting broker drives:

- ``on_event(metadata, now, event_id)`` — one matched input event;
- ``on_timer(now)`` — the flow's aligned boundary timer fired.

Both return a list of :class:`Emission` objects: the property dicts of
derived events plus the (capped) list of contributing input event ids
that the broker turns into ``derive`` spans.  The machines are pure and
broker-independent — all iteration is over insertion-ordered dicts so
same-seed runs emit byte-identically — which is what lets the Hypothesis
property suite drive them directly against brute-force recomputations.

Operator state is **soft state** in the §4.3 sense: a broker crash
discards it (after announcing each open window with a ``window-dropped``
span) and the registrar's renewals re-install a fresh machine.
"""

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.streams.spec import (
    Aggregate,
    CollapseSpec,
    DeriveSpec,
    FlowSpec,
    WindowSpec,
)

#: How many contributing input ids an emission records verbatim; the
#: full count always rides in ``n_inputs`` so derive spans stay bounded.
MAX_LINKED_INPUTS = 8


@dataclass
class Emission:
    """One derived event: its properties and provenance."""

    properties: Dict[str, Any]
    inputs: Tuple[Tuple[str, int], ...] = ()
    n_inputs: int = 0


class _InputSet:
    """Capped, ordered collection of contributing input event ids."""

    __slots__ = ("ids", "n")

    def __init__(self) -> None:
        self.ids: List[Tuple[str, int]] = []
        self.n = 0

    def add(self, event_id: Optional[Tuple[str, int]]) -> None:
        self.n += 1
        if event_id is not None and len(self.ids) < MAX_LINKED_INPUTS:
            self.ids.append(event_id)


def _init_accumulator(aggregate: Aggregate) -> Any:
    if aggregate.combiner == "count":
        return 0
    if aggregate.combiner == "sum":
        return 0
    if aggregate.combiner == "avg":
        return [0, 0]  # running [sum, count]
    return None  # min / max / last start undefined


def _update_accumulator(aggregate: Aggregate, state: Any, metadata: Any) -> Any:
    if aggregate.combiner == "count":
        return state + 1
    value = metadata.get(aggregate.attribute)
    if value is None:
        return state
    if aggregate.combiner == "sum":
        return state + value
    if aggregate.combiner == "avg":
        state[0] += value
        state[1] += 1
        return state
    if aggregate.combiner == "min":
        return value if state is None or value < state else state
    if aggregate.combiner == "max":
        return value if state is None or value > state else state
    return value  # last


def _finish_accumulator(aggregate: Aggregate, state: Any) -> Any:
    if aggregate.combiner == "avg":
        return state[0] / state[1] if state[1] else None
    return state


@dataclass
class _WindowAccum:
    """One open window for one group key."""

    start: float
    states: List[Any]
    inputs: _InputSet = field(default_factory=_InputSet)
    n: int = 0
    first_time: float = 0.0
    last_time: float = 0.0


class WindowState:
    """Tumbling/sliding window machine for one :class:`WindowSpec`.

    Time-mode windows align boundaries at multiples of the period
    (``size`` for tumbling, ``slide`` for sliding) anchored at t=0, so
    firing times are a pure function of the clock, never of arrival
    order.  The broker arms the boundary timer, but ``on_event`` also
    flushes a stale tumbling window defensively, so the machine is
    correct even driven without timers (as the property tests do).
    """

    def __init__(self, spec: WindowSpec) -> None:
        self.spec = spec
        # Tumbling (both modes): group key -> open accumulator.
        self._accums: Dict[Tuple[Any, ...], _WindowAccum] = {}
        # Sliding (both modes): group key -> ordered (time, metadata, id)
        # retained events; count-sliding also counts arrivals per group.
        self._retained: Dict[Tuple[Any, ...], List[Tuple[float, Any, Any]]] = {}
        self._since_slide: Dict[Tuple[Any, ...], int] = {}

    # -- helpers -----------------------------------------------------

    def _key(self, metadata: Any) -> Tuple[Any, ...]:
        return tuple(metadata.get(attr) for attr in self.spec.group_by)

    def timer_period(self) -> Optional[float]:
        if self.spec.mode != "time":
            return None
        if self.spec.kind == "tumbling":
            return self.spec.size
        return self.spec.slide

    def _fresh_accum(self, start: float, now: float) -> _WindowAccum:
        states = [_init_accumulator(a) for a in self.spec.aggregates]
        return _WindowAccum(start=start, states=states, first_time=now, last_time=now)

    def _emit_accum(
        self, key: Tuple[Any, ...], accum: _WindowAccum, end: float
    ) -> Emission:
        props: Dict[str, Any] = {}
        for attr, value in zip(self.spec.group_by, key):
            props[attr] = value
        for aggregate, state in zip(self.spec.aggregates, accum.states):
            props[aggregate.output] = _finish_accumulator(aggregate, state)
        props["window_start"] = accum.start
        props["window_end"] = end
        props["n"] = accum.n
        return Emission(props, tuple(accum.inputs.ids), accum.inputs.n)

    def _emit_retained(
        self,
        key: Tuple[Any, ...],
        events: List[Tuple[float, Any, Any]],
        start: float,
        end: float,
    ) -> Emission:
        props: Dict[str, Any] = {}
        for attr, value in zip(self.spec.group_by, key):
            props[attr] = value
        inputs = _InputSet()
        states = [_init_accumulator(a) for a in self.spec.aggregates]
        for _, metadata, event_id in events:
            inputs.add(event_id)
            for i, aggregate in enumerate(self.spec.aggregates):
                states[i] = _update_accumulator(aggregate, states[i], metadata)
        for aggregate, state in zip(self.spec.aggregates, states):
            props[aggregate.output] = _finish_accumulator(aggregate, state)
        props["window_start"] = start
        props["window_end"] = end
        props["n"] = len(events)
        return Emission(props, tuple(inputs.ids), inputs.n)

    # -- event/timer entry points ------------------------------------

    def on_event(
        self, metadata: Any, now: float, event_id: Optional[Tuple[str, int]] = None
    ) -> List[Emission]:
        key = self._key(metadata)
        spec = self.spec
        emissions: List[Emission] = []
        if spec.kind == "tumbling" and spec.mode == "time":
            boundary = math.floor(now / spec.size) * spec.size
            accum = self._accums.get(key)
            if accum is not None and accum.start < boundary:
                # Timer has not fired yet for this instant (or was never
                # armed): close the stale window before admitting the
                # event so nothing is double-counted across boundaries.
                emissions.append(self._emit_accum(key, accum, accum.start + spec.size))
                accum = None
            if accum is None:
                accum = self._accums[key] = self._fresh_accum(boundary, now)
        elif spec.kind == "tumbling":  # count
            accum = self._accums.get(key)
            if accum is None:
                accum = self._accums[key] = self._fresh_accum(now, now)
        elif spec.mode == "time":  # sliding/time: retain, timer emits
            self._retained.setdefault(key, []).append((now, metadata, event_id))
            return emissions
        else:  # sliding/count: retain last `size`, emit every `slide`
            events = self._retained.setdefault(key, [])
            events.append((now, metadata, event_id))
            if len(events) > int(spec.size):
                del events[0]
            seen = self._since_slide.get(key, 0) + 1
            if seen >= int(spec.slide):
                self._since_slide[key] = 0
                emissions.append(
                    self._emit_retained(key, events, events[0][0], events[-1][0])
                )
            else:
                self._since_slide[key] = seen
            return emissions

        accum.n += 1
        accum.last_time = now
        accum.inputs.add(event_id)
        for i, aggregate in enumerate(spec.aggregates):
            accum.states[i] = _update_accumulator(aggregate, accum.states[i], metadata)
        if spec.mode == "count" and accum.n >= int(spec.size):
            emissions.append(self._emit_accum(key, accum, now))
            del self._accums[key]
        return emissions

    def on_timer(self, now: float) -> List[Emission]:
        spec = self.spec
        emissions: List[Emission] = []
        if spec.mode != "time":
            return emissions
        if spec.kind == "tumbling":
            boundary = math.floor(now / spec.size) * spec.size
            for key in [k for k, a in self._accums.items() if a.start < boundary]:
                accum = self._accums.pop(key)
                emissions.append(self._emit_accum(key, accum, accum.start + spec.size))
            return emissions
        # Sliding/time: the window at fire time t covers (t - size, t].
        horizon = now - spec.size
        for key in list(self._retained):
            events = self._retained[key]
            while events and events[0][0] <= horizon:
                del events[0]
            if not events:
                del self._retained[key]
                continue
            emissions.append(self._emit_retained(key, events, horizon, now))
        return emissions

    def flush(self, now: float) -> List[Emission]:
        """Force-emit everything pending (test/teardown helper)."""
        emissions: List[Emission] = []
        for key in list(self._accums):
            accum = self._accums.pop(key)
            end = accum.start + self.spec.size if self.spec.mode == "time" else now
            emissions.append(self._emit_accum(key, accum, end))
        for key in list(self._retained):
            events = self._retained.pop(key)
            if events:
                emissions.append(
                    self._emit_retained(key, events, events[0][0], events[-1][0])
                )
        self._since_slide.clear()
        return emissions

    def pending(self) -> List[Tuple[str, float, int]]:
        """Open windows as (group, window_start, events) — crash spans."""
        out: List[Tuple[str, float, int]] = []
        for key, accum in self._accums.items():
            out.append(("/".join(map(str, key)) or "*", accum.start, accum.n))
        for key, events in self._retained.items():
            if events:
                out.append(("/".join(map(str, key)) or "*", events[0][0], len(events)))
        return out


@dataclass
class _CollapseAccum:
    """Pending last-value state for one collapse key."""

    metadata: Any
    inputs: _InputSet = field(default_factory=_InputSet)
    n: int = 0
    first_time: float = 0.0


class CollapseState:
    """Burst coalescing machine for one :class:`CollapseSpec`."""

    def __init__(self, spec: CollapseSpec) -> None:
        self.spec = spec
        self._pending: Dict[Tuple[Any, ...], _CollapseAccum] = {}

    def timer_period(self) -> Optional[float]:
        return self.spec.interval

    def _key(self, metadata: Any) -> Tuple[Any, ...]:
        return tuple(metadata.get(attr) for attr in self.spec.keys)

    def _emit(self, accum: _CollapseAccum) -> Emission:
        props = {k: v for k, v in accum.metadata.items() if k != "class"}
        props["collapsed_n"] = accum.n
        return Emission(props, tuple(accum.inputs.ids), accum.inputs.n)

    def on_event(
        self, metadata: Any, now: float, event_id: Optional[Tuple[str, int]] = None
    ) -> List[Emission]:
        key = self._key(metadata)
        accum = self._pending.get(key)
        if accum is None:
            accum = self._pending[key] = _CollapseAccum(metadata, first_time=now)
        else:
            accum.metadata = metadata  # last value wins
        accum.n += 1
        accum.inputs.add(event_id)
        if self.spec.max_batch is not None and accum.n >= self.spec.max_batch:
            del self._pending[key]
            return [self._emit(accum)]
        return []

    def on_timer(self, now: float) -> List[Emission]:
        emissions = [self._emit(accum) for accum in self._pending.values()]
        self._pending.clear()
        return emissions

    def flush(self, now: float) -> List[Emission]:
        return self.on_timer(now)

    def pending(self) -> List[Tuple[str, float, int]]:
        return [
            ("/".join(map(str, key)) or "*", accum.first_time, accum.n)
            for key, accum in self._pending.items()
        ]


class DeriveState:
    """Stateless select/rename republication for one :class:`DeriveSpec`."""

    def __init__(self, spec: DeriveSpec) -> None:
        self.spec = spec
        self._rename = dict(spec.rename)

    def timer_period(self) -> Optional[float]:
        return None

    def on_event(
        self, metadata: Any, now: float, event_id: Optional[Tuple[str, int]] = None
    ) -> List[Emission]:
        if self.spec.select:
            items = [(a, metadata.get(a)) for a in self.spec.select]
        else:
            items = [(k, v) for k, v in metadata.items() if k != "class"]
        props = {self._rename.get(k, k): v for k, v in items}
        inputs = (event_id,) if event_id is not None else ()
        return [Emission(props, inputs, 1)]

    def on_timer(self, now: float) -> List[Emission]:
        return []

    def flush(self, now: float) -> List[Emission]:
        return []

    def pending(self) -> List[Tuple[str, float, int]]:
        return []


def build_state(spec: FlowSpec) -> Any:
    if isinstance(spec.operator, WindowSpec):
        return WindowState(spec.operator)
    if isinstance(spec.operator, CollapseSpec):
        return CollapseState(spec.operator)
    if isinstance(spec.operator, DeriveSpec):
        return DeriveState(spec.operator)
    raise TypeError(f"unknown operator spec: {spec.operator!r}")


class FlowRuntime:
    """One installed flow at one broker: spec + machine + lease clock."""

    __slots__ = ("spec", "state", "installed_at", "renewed_at")

    def __init__(self, spec: FlowSpec, now: float) -> None:
        self.spec = spec
        self.state = build_state(spec)
        self.installed_at = now
        self.renewed_at = now

    def matches(self, metadata: Any) -> bool:
        return self.spec.input_filter.matches(metadata)

    def on_event(self, metadata, now, event_id=None) -> List[Emission]:
        return self.state.on_event(metadata, now, event_id)

    def on_timer(self, now: float) -> List[Emission]:
        return self.state.on_timer(now)

    def timer_period(self) -> Optional[float]:
        return self.state.timer_period()

    def pending_windows(self) -> List[Tuple[str, float, int]]:
        return self.state.pending()
