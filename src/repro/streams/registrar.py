"""Client-side flow registration channel.

Flows are broker *soft state* in the §4.3 sense: a crash wipes them and
nothing at the broker remembers they existed.  What survives is this
process — a stage-0 client, exactly like a subscriber runtime — which
holds the authoritative flow graph and periodically re-sends
``FlowInstall`` for every flow over the PR 3 reliable control channel
(one go-back-N sender per hosting broker).  The broker treats an
install of an already-identical spec as a pure lease renewal
(refresh-or-restore, Figure 6): a healthy broker just refreshes the
lease clock, a restarted one re-creates the machine from scratch.  The
channel itself needs no epoch gymnastics — a freshly restarted broker's
:class:`~repro.overlay.channel.ReliableReceiver` adopts the first frame
it sees — so renewals alone heal any crash.
"""

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.tracing import SUBSCRIBER_STAGE, EventTracer
from repro.overlay.channel import ReliableSender
from repro.overlay.messages import Ack, ChannelReset, FlowInstall, FlowRemove
from repro.runtime.base import Executor, Transport
from repro.sim.kernel import Process
from repro.streams.spec import FlowSpec

#: Renew each flow lease when this fraction of the TTL has elapsed
#: (matches the subscriber-side renewal cadence).
RENEW_FRACTION = 0.5


class FlowRegistrar(Process):
    """A stage-0 client that installs flows and keeps their leases alive."""

    def __init__(
        self,
        sim: Executor,
        network: Transport,
        name: str,
        ttl: float = 60.0,
        reliable: bool = True,
        control_window: Optional[int] = None,
        tracer: Optional[EventTracer] = None,
    ):
        super().__init__(sim, name)
        self.network = network
        self.ttl = ttl
        self.reliable_enabled = reliable
        self.control_window = control_window
        self.tracer = tracer if tracer is not None else EventTracer(enabled=False)
        self.control_retransmits = 0
        # Authoritative flow graph: broker name -> (broker, {flow: spec}).
        self._installed: Dict[str, Tuple[Process, Dict[str, FlowSpec]]] = {}
        self._control_out: Dict[str, ReliableSender] = {}
        self._renew_handle = None
        self._maintenance_interval: Optional[float] = None

    # ------------------------------------------------------------------
    # Install / remove
    # ------------------------------------------------------------------

    def install(self, broker: Process, spec: FlowSpec) -> None:
        """Install (or replace) one flow at a broker and start renewing it."""
        _, specs = self._installed.setdefault(broker.name, (broker, {}))
        specs[spec.name] = spec
        self._send_control(broker, FlowInstall(spec))

    def remove(self, broker: Process, flow_name: str) -> None:
        """Tear one flow down and stop renewing it."""
        entry = self._installed.get(broker.name)
        if entry is not None:
            entry[1].pop(flow_name, None)
            if not entry[1]:
                del self._installed[broker.name]
        self._send_control(broker, FlowRemove(flow_name))

    def flows(self) -> List[FlowSpec]:
        return [
            spec
            for _, specs in self._installed.values()
            for spec in specs.values()
        ]

    # ------------------------------------------------------------------
    # Reliable control channel (one sender per hosting broker)
    # ------------------------------------------------------------------

    def _send_control(self, broker: Process, payload: Any) -> None:
        if not self.reliable_enabled:
            self.network.send(self, broker, payload)
            return
        channel = self._control_out.get(broker.name)
        if channel is None:
            channel = self._control_out[broker.name] = ReliableSender(
                self.sim,
                lambda frame, broker=broker: self.network.send(self, broker, frame),
                self._count_retransmits,
                window=self.control_window,
            )
        channel.send(payload)

    def _count_retransmits(self, frames: int) -> None:
        self.control_retransmits += frames

    def receive(self, message: Any, sender: Process) -> None:
        if isinstance(message, Ack):
            channel = self._control_out.get(sender.name)
            if channel is not None:
                channel.on_ack(message)
        elif isinstance(message, ChannelReset):
            # A broker announcing a fresh incarnation: abandon in-flight
            # frames and push the full flow set immediately rather than
            # waiting out the renewal interval.
            channel = self._control_out.get(sender.name)
            if channel is not None:
                channel.reset()
            entry = self._installed.get(sender.name)
            if entry is not None:
                broker, specs = entry
                for spec in specs.values():
                    self._send_control(broker, FlowInstall(spec))
        else:
            raise TypeError(f"{self.name}: unexpected message {message!r}")

    # ------------------------------------------------------------------
    # Lease renewal (refresh-or-restore)
    # ------------------------------------------------------------------

    def start_maintenance(self) -> None:
        self.stop_maintenance()
        interval = self.ttl * RENEW_FRACTION
        self._maintenance_interval = interval
        self._renew_handle = self.call_later(interval, self._renew_task, interval)

    def stop_maintenance(self) -> None:
        if self._renew_handle is not None:
            self._renew_handle.cancel()
            self._renew_handle = None
        self._maintenance_interval = None

    def _renew_task(self, interval: float) -> None:
        for broker, specs in self._installed.values():
            for spec in specs.values():
                self._send_control(broker, FlowInstall(spec))
        if self.tracer.enabled and self._installed:
            self.tracer.span(
                self.sim.now,
                "flow-renew",
                self.name,
                SUBSCRIBER_STAGE,
                details=(("flows", sum(len(s) for _, s in self._installed.values())),),
            )
        self._renew_handle = self.call_later(interval, self._renew_task, interval)

    # ------------------------------------------------------------------
    # Crash lifecycle (the registrar itself is a process too)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        super().crash()
        self._renew_handle = None

    def restart(self) -> None:
        super().restart()
        if self._maintenance_interval is not None:
            self._renew_handle = self.call_later(
                self._maintenance_interval, self._renew_task,
                self._maintenance_interval,
            )
