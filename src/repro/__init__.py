"""repro — a reproduction of Eugster, Felber, Guerraoui & Handurukande,
"Event Systems: How to Have Your Cake and Eat It Too" (DEBS/ICDCS 2002).

A content-based publish/subscribe library with:

- **event safety** — events are encapsulated application objects;
  brokers see only reflected meta-data (:mod:`repro.events`);
- **expressiveness** — conjunctive filters over any public accessor,
  plus residual closures at the edge (:mod:`repro.filters`);
- **filtering scalability** — the paper's multi-stage filtering overlay:
  covering/weakening relations, the ``Gc`` attribute-stage association,
  the Figure-5 placement algorithm and TTL soft state
  (:mod:`repro.core`, :mod:`repro.overlay`).

Quickstart::

    from repro import MultiStageEventSystem

    system = MultiStageEventSystem(stage_sizes=(10, 1))
    system.advertise("Stock", schema=("class", "symbol", "price"))
    pub = system.create_publisher()
    sub = system.create_subscriber()
    system.subscribe(sub, 'class = "Stock" and price < 10.0',
                     handler=lambda event, meta, s: print(meta))
    system.drain()

See ``examples/`` and DESIGN.md for the full tour.
"""

from repro.core.advertisement import Advertisement, AdvertisementRegistry
from repro.core.engine import MultiStageEventSystem
from repro.core.stages import AttributeStageAssociation, rank_by_generality
from repro.core.subscription import Subscription
from repro.core.weakening import merge_covering, weaken_filter, weakening_chain
from repro.events.base import CLASS_ATTRIBUTE, PropertyEvent
from repro.events.closures import FilterClosure
from repro.events.hierarchy import TypeRegistry
from repro.events.serialization import Envelope, marshal, unmarshal
from repro.events.typed import TypedEvent, reflect_attributes, to_property_event
from repro.filters.constraints import AttributeConstraint
from repro.filters.disjunction import Disjunction
from repro.filters.engine import CachedMatchEngine, MatchEngine
from repro.filters.filter import Filter, event_covers
from repro.filters.index import CountingIndex
from repro.filters.parser import parse_filter, render_filter
from repro.filters.standard import standardize
from repro.filters.table import FilterTable

__version__ = "1.0.0"

__all__ = [
    "Advertisement",
    "AdvertisementRegistry",
    "AttributeConstraint",
    "AttributeStageAssociation",
    "CLASS_ATTRIBUTE",
    "CachedMatchEngine",
    "CountingIndex",
    "Disjunction",
    "Envelope",
    "Filter",
    "FilterClosure",
    "FilterTable",
    "MatchEngine",
    "MultiStageEventSystem",
    "PropertyEvent",
    "Subscription",
    "TypeRegistry",
    "TypedEvent",
    "event_covers",
    "marshal",
    "merge_covering",
    "parse_filter",
    "rank_by_generality",
    "reflect_attributes",
    "render_filter",
    "standardize",
    "to_property_event",
    "unmarshal",
    "weaken_filter",
    "weakening_chain",
]
