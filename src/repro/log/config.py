"""Configuration bundle for the durable event log and replay."""

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class LogConfig:
    """Knobs for per-broker event logs, replay, and crash recovery.

    Passing a ``LogConfig`` to :class:`~repro.core.engine.
    MultiStageEventSystem` (or directly to brokers) gives every broker an
    append-only :class:`~repro.log.eventlog.EventLog` and enables the
    root's :class:`~repro.log.replay.Replayer`; ``None`` keeps the
    pre-log behaviour bit-for-bit.
    """

    #: Records per log segment (seek granularity and truncation unit).
    segment_size: int = 256
    #: Directory for real-file (JSONL) segment persistence; ``None`` =
    #: in-sim only.  All brokers share the directory (file names embed
    #: the broker name).
    directory: Optional[str] = None
    #: History replay rate in events per simulated second (bounds how
    #: fast a catch-up subscriber or recovering broker is driven).
    replay_rate: float = 500.0
    #: Events replayed per pump tick (the rate is enforced as
    #: ``replay_batch`` events every ``replay_batch / replay_rate``).
    replay_batch: int = 16
    #: Delay between a broker's restart and its replay request — long
    #: enough for the children's ChannelReset-triggered renewals to
    #: rebuild the routing table the replay is matched against.
    recovery_delay: float = 0.5
    #: Replay starts this many offsets before the last acked (logged)
    #: root offset, covering events that were in flight around the
    #: crash; the recovering broker's own log deduplicates the overlap.
    recovery_rewind: int = 64
    #: Whether a restarted broker automatically requests recovery replay.
    auto_recover: bool = True

    def __post_init__(self) -> None:
        if self.segment_size < 1:
            raise ValueError(f"segment_size must be >= 1, got {self.segment_size}")
        if self.replay_rate <= 0:
            raise ValueError(f"replay_rate must be positive, got {self.replay_rate}")
        if self.replay_batch < 1:
            raise ValueError(f"replay_batch must be >= 1, got {self.replay_batch}")
        if self.recovery_delay < 0:
            raise ValueError(
                f"recovery_delay must be >= 0, got {self.recovery_delay}"
            )
        if self.recovery_rewind < 0:
            raise ValueError(
                f"recovery_rewind must be >= 0, got {self.recovery_rewind}"
            )
