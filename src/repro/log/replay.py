"""Root-side replay: catch-up subscribers and broker crash recovery.

The :class:`Replayer` lives at the root broker (the only node whose log
is the complete publish history) and re-injects logged events into the
overlay for two consumers:

**Catch-up subscribers** (:class:`~repro.overlay.messages.CatchUpRequest`).
A subscriber that joined late asks for history from a log offset or
timestamp.  The session snapshots a *fence* (the log's next offset at
request time) and then runs two streams over one reliable channel:

- *history*: records in ``[origin, fence)`` matching the subscription,
  pumped at the configured replay rate and, with flow control on,
  spending per-event credits the subscriber grants back as it consumes —
  PR 5's credit windows bound the replay exactly like live traffic;
- *live taps*: every matching event the root processes while the session
  is open is forwarded immediately (``history=False``).

Events at offsets ``< fence`` arrive via history, ``>= fence`` via taps:
no gap.  The overlap a wire duplicate can cause — and the handover
overlap below — is closed by the subscriber's per-session dedup.  Once
history is drained (``CatchUpDone``) the replayer polls the overlay's
routing tables along the subscriber's home path; when the normal path
covers the subscription end-to-end it announces ``CatchUpLive`` and
stops tapping.  Between the path going live and the announcement an
event can arrive twice (tap + home); the dedup makes the switchover
seamless — no gap, no duplicate delivered.

**Recovering brokers** (:class:`~repro.overlay.messages.ReplayRequest`).
A restarted broker replays from just before its last acked root offset.
The replayer re-drives the records the broker's subtree would have been
routed (matched against the live table entries toward that subtree) as
``ReplayBatch`` frames; the recovering broker deduplicates against its
own surviving log and feeds the remainder through normal processing.
"""

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.weakening import weaken_filter
from repro.log.eventlog import parse_point
from repro.overlay.messages import (
    CatchUpBatch,
    CatchUpDone,
    CatchUpLive,
    CatchUpRequest,
    Publish,
    ReplayBatch,
    ReplayRequest,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay.node import BrokerNode


class _CatchUpSession:
    """One subscriber catching up: cursor walks ``[origin, fence)``."""

    __slots__ = (
        "subscription_id",
        "subscriber",
        "home",
        "filter",
        "event_class",
        "cursor",
        "fence",
        "replayed",
        "taps",
        "done_sent",
    )

    def __init__(
        self, request: CatchUpRequest, cursor: int, fence: int
    ) -> None:
        self.subscription_id = request.subscription_id
        self.subscriber = request.subscriber
        self.home = request.home
        self.filter = request.filter
        self.event_class = request.event_class
        self.cursor = cursor
        self.fence = fence
        self.replayed = 0
        self.taps = 0
        self.done_sent = False


class _RecoverySession:
    """One restarted broker being re-driven: cursor walks ``[origin, fence)``."""

    __slots__ = ("requester", "gate", "cursor", "fence", "replayed")

    def __init__(self, requester, gate, cursor: int, fence: int) -> None:
        self.requester = requester
        #: The root child whose subtree contains the requester — records
        #: are replayed iff the live table routes them toward this gate.
        self.gate = gate
        self.cursor = cursor
        self.fence = fence
        self.replayed = 0


class Replayer:
    """Pumps log history into the overlay at a bounded rate (see module
    docstring).  Owned lazily by the root broker; all session state is
    soft (a root crash drops it — requesters re-request)."""

    def __init__(self, node: "BrokerNode") -> None:
        if node.log is None or node.log_config is None:
            raise ValueError(f"{node.name} has no event log to replay from")
        self.node = node
        self.config = node.log_config
        #: Catch-up sessions keyed by (subscriber name, subscription id).
        self._catchup: Dict[Tuple[str, int], _CatchUpSession] = {}
        #: Recovery sessions keyed by requester name.
        self._recovery: Dict[str, _RecoverySession] = {}
        self._tick_handle = None

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        return bool(self._catchup) or bool(self._recovery)

    @property
    def has_catch_up(self) -> bool:
        return bool(self._catchup)

    def start_catch_up(self, request: CatchUpRequest) -> None:
        log = self.node.log
        if request.from_offset is not None:
            origin = request.from_offset
        elif request.from_time is not None:
            origin = log.offset_for_time(parse_point(request.from_time))
        else:
            origin = log.start_offset
        cursor = max(origin, log.start_offset)
        session = _CatchUpSession(request, cursor, log.next_offset)
        self._catchup[(request.subscriber.name, request.subscription_id)] = session
        if self.node.flow is not None:
            # Materialize the subscriber's credit window now so its
            # grants are never "stale" at the root.
            self.node._downlink_for(request.subscriber)
        self._session_span(
            "catch-up-start",
            peer=request.subscriber.name,
            sid=request.subscription_id,
            cursor=cursor,
            fence=session.fence,
        )
        self._ensure_tick()

    def start_recovery(self, request: ReplayRequest) -> None:
        log = self.node.log
        gate = self._gate_for(request.child)
        if gate is None:
            return  # requester is not in this root's tree
        cursor = max(request.from_offset + 1, log.start_offset)
        session = _RecoverySession(request.child, gate, cursor, log.next_offset)
        self._recovery[request.child.name] = session
        self._session_span(
            "recovery-start",
            peer=request.child.name,
            cursor=cursor,
            fence=session.fence,
        )
        self._ensure_tick()

    def _gate_for(self, requester) -> Optional[object]:
        node = requester
        while node is not None and node.parent is not self.node:
            node = node.parent
        return node

    def on_peer_reset(self, peer_name: str) -> None:
        """A neighbour announced a new incarnation: its in-flight replay
        died with the old one (it will re-request if it still cares)."""
        self._recovery.pop(peer_name, None)
        for key in [k for k in self._catchup if k[0] == peer_name]:
            del self._catchup[key]

    def reset(self) -> None:
        """Root crash: all session state is soft and vanishes."""
        self._catchup.clear()
        self._recovery.clear()
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    # ------------------------------------------------------------------
    # Live taps
    # ------------------------------------------------------------------

    def tap_batch(self, batch) -> None:
        """Forward matching just-processed events into every open
        catch-up session (called by the root per processed batch)."""
        for session in list(self._catchup.values()):
            run: List[Publish] = []
            for message in batch:
                if self._session_matches(session, message.envelope):
                    run.append(message)
            if not run:
                continue
            session.taps += len(run)
            self.node.counters.catchup_taps += len(run)
            if self.node.tracer.enabled:
                for message in run:
                    self._replay_span(message, "tap", session.subscriber.name)
            self.node._send_peer(
                session.subscriber,
                CatchUpBatch(session.subscription_id, tuple(run), history=False),
            )

    def _session_matches(self, session: _CatchUpSession, envelope) -> bool:
        if (
            session.event_class is not None
            and envelope.event_class is not None
            and envelope.event_class != session.event_class
        ):
            return False
        return session.filter.matches(envelope.metadata)

    # ------------------------------------------------------------------
    # The pump
    # ------------------------------------------------------------------

    def kick(self) -> None:
        """Credits arrived (or state changed): pump again promptly."""
        if self._tick_handle is None and self.active:
            self._tick_handle = self.node.call_soon(self._tick)

    def _ensure_tick(self) -> None:
        if self._tick_handle is None and self.active:
            self._tick_handle = self.node.call_later(
                self._interval(), self._tick
            )

    def _interval(self) -> float:
        return self.config.replay_batch / self.config.replay_rate

    def _tick(self) -> None:
        self._tick_handle = None
        for session in list(self._recovery.values()):
            self._pump_recovery(session)
        for session in list(self._catchup.values()):
            self._pump_catch_up(session)
        self._check_switchovers()
        self._ensure_tick()

    def _pump_catch_up(self, session: _CatchUpSession) -> None:
        if session.cursor >= session.fence:
            self._finish_history(session)
            return
        log = self.node.log
        window = None
        if self.node.flow is not None:
            window = self.node._downlink_for(session.subscriber)[0]
        budget = self.config.replay_batch
        run: List[Publish] = []
        while budget > 0 and session.cursor < session.fence:
            if session.cursor < log.start_offset:
                session.cursor = log.start_offset
                continue
            record = log.record_at(session.cursor)
            if record is None or not self._session_matches(
                session, record.envelope
            ):
                session.cursor += 1
                continue
            if window is not None and not window.take(1):
                self.node.counters.credit_stalls += 1
                break
            session.cursor += 1
            budget -= 1
            run.append(Publish(record.envelope, record.offset))
        if run:
            session.replayed += len(run)
            self.node.counters.replay_events_sent += len(run)
            if self.node.tracer.enabled:
                for message in run:
                    self._replay_span(message, "history", session.subscriber.name)
            self.node._send_peer(
                session.subscriber,
                CatchUpBatch(session.subscription_id, tuple(run), history=True),
            )
        if session.cursor >= session.fence:
            self._finish_history(session)

    def _finish_history(self, session: _CatchUpSession) -> None:
        if session.done_sent:
            return
        session.done_sent = True
        self._session_span(
            "catch-up-done",
            peer=session.subscriber.name,
            sid=session.subscription_id,
            replayed=session.replayed,
        )
        self.node._send_peer(
            session.subscriber,
            CatchUpDone(session.subscription_id, session.replayed),
        )

    def _check_switchovers(self) -> None:
        for key, session in list(self._catchup.items()):
            if not session.done_sent or not self._path_live(session):
                continue
            del self._catchup[key]
            self._session_span(
                "catch-up-live",
                peer=session.subscriber.name,
                sid=session.subscription_id,
                replayed=session.replayed,
                taps=session.taps,
            )
            self.node._send_peer(
                session.subscriber, CatchUpLive(session.subscription_id)
            )

    def _path_live(self, session: _CatchUpSession) -> bool:
        """True when the normal overlay path covers the subscription at
        every hop from the root down to the subscriber — at that point
        live delivery needs no tap and the session can hand over."""
        root = self.node
        home = session.home
        advertisement = root.advertisements.get(session.event_class)
        if advertisement is None or home is None:
            return False
        association = advertisement.association
        node = home
        if getattr(node, "crashed", False):
            return False
        # The home must route the subscription to the subscriber itself.
        form = weaken_filter(session.filter, association, node.stage)
        if not self._routes(node, form, session.subscriber):
            return False
        # Every broker above must route its stage's weakening downward.
        while node is not root:
            parent = node.parent
            if parent is None or parent.crashed:
                return False
            form = weaken_filter(session.filter, association, parent.stage)
            if not self._routes(parent, form, node):
                return False
            node = parent
        return True

    @staticmethod
    def _routes(node, form, destination) -> bool:
        for stored, ids in node.table.entries():
            if any(d is destination for d in ids) and stored.covers(form):
                return True
        return False

    def _pump_recovery(self, session: _RecoverySession) -> None:
        log = self.node.log
        routed = [
            stored
            for stored, ids in self.node.table.entries()
            if any(d is session.gate for d in ids)
        ]
        window = None
        if self.node.flow is not None:
            window = self.node._downlink_for(session.requester)[0]
        budget = self.config.replay_batch
        run: List[Publish] = []
        while budget > 0 and session.cursor < session.fence:
            if session.cursor < log.start_offset:
                session.cursor = log.start_offset
                continue
            record = log.record_at(session.cursor)
            if record is None or not any(
                stored.matches(record.envelope.metadata) for stored in routed
            ):
                session.cursor += 1
                continue
            if window is not None and not window.take(1):
                self.node.counters.credit_stalls += 1
                break
            session.cursor += 1
            budget -= 1
            run.append(Publish(record.envelope, record.offset))
        if run:
            session.replayed += len(run)
            self.node.counters.replay_events_sent += len(run)
            if self.node.tracer.enabled:
                for message in run:
                    self._replay_span(message, "recovery", session.requester.name)
            self.node._send_peer(session.requester, ReplayBatch(tuple(run)))
        if session.cursor >= session.fence:
            del self._recovery[session.requester.name]
            self._session_span(
                "recovery-done",
                peer=session.requester.name,
                replayed=session.replayed,
            )

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def _replay_span(self, message: Publish, mode: str, peer: str) -> None:
        # Replay spans share the original (publisher, seq) trace id, so
        # reconstruct_paths stitches a replayed delivery onto the
        # event's original publish/hop history.
        self.node.tracer.span(
            self.node.sim.now,
            "replay",
            self.node.name,
            self.node.stage,
            trace_id=message.envelope.event_id,
            details=(("peer", peer), ("mode", mode), ("offset", message.offset)),
        )

    def _session_span(self, kind: str, **details) -> None:
        if not self.node.tracer.enabled:
            return
        self.node.tracer.span(
            self.node.sim.now,
            kind,
            self.node.name,
            self.node.stage,
            details=tuple(details.items()),
        )

    def __repr__(self) -> str:
        return (
            f"Replayer({self.node.name}, catchup={len(self._catchup)}, "
            f"recovery={len(self._recovery)})"
        )
