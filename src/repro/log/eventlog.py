"""Append-only per-broker publish log with offset and timestamp seeks.

Every broker built with a :class:`LogConfig` appends each event it
processes to an :class:`EventLog`: a sequence of fixed-size *segments*,
each holding ``segment_size`` consecutive records.  Offsets are dense
integers assigned at append time; the root's log — publishers attach to
the root, so the root processes every admitted event — is the system's
complete publish history and the ground truth the audit verifier
(:mod:`repro.log.audit`) checks delivery traces against.

Two persistence modes coexist:

- **in-sim** (default): records live in memory only, fsync-free — the
  simulator's processes all share one address space and "durability"
  means surviving :meth:`~repro.overlay.node.BrokerNode.crash`, which
  wipes soft state but never the log;
- **real files** (``directory`` set): each segment is additionally
  written as a JSON-lines file (``<name>-<base offset>.jsonl``), the
  format a future real-runtime backend would replay from;
  :meth:`EventLog.load` reads a directory back into memory.

Timestamps: the simulator clock is seconds since an arbitrary zero, so
ISO-8601 replay points are anchored at a fixed epoch
(:data:`EPOCH_ISO` = simulated time ``0.0``) rather than any wall
clock — :func:`parse_point` maps either representation to simulated
seconds deterministically.
"""

import base64
import json
import os
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from typing import Dict, Iterator, List, Optional, TextIO, Tuple, Union

from repro.events.base import PropertyEvent
from repro.events.serialization import Envelope

#: The ISO-8601 instant simulated time ``0.0`` maps to (UTC).  Chosen
#: fixed — never "now" — so same-seed runs serialize identical logs.
EPOCH_ISO = "2002-01-01T00:00:00+00:00"

_EPOCH = datetime(2002, 1, 1, tzinfo=timezone.utc)

TimePoint = Union[int, float, str]


def parse_point(value: TimePoint) -> float:
    """A replay point — simulated seconds, or an ISO-8601 timestamp
    anchored at :data:`EPOCH_ISO` — as simulated seconds."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if isinstance(value, str):
        text = value.strip()
        if text.endswith(("Z", "z")):
            text = text[:-1] + "+00:00"
        moment = datetime.fromisoformat(text)
        if moment.tzinfo is None:
            moment = moment.replace(tzinfo=timezone.utc)
        return (moment - _EPOCH).total_seconds()
    raise TypeError(f"cannot interpret {value!r} as a time point")


def format_point(sim_time: float) -> str:
    """Simulated seconds rendered as the ISO-8601 instant they map to."""
    return (_EPOCH + timedelta(seconds=sim_time)).isoformat()


@dataclass(frozen=True)
class LogRecord:
    """One appended event: its log position, append time, and envelope.

    ``source_offset`` is the offset the *root* assigned the event (the
    root stamps it into the forwarded :class:`~repro.overlay.messages.
    Publish`); at the root itself ``source_offset == offset``.  A
    downstream broker's recovery replay is phrased in root offsets, so
    the log tracks the highest one seen (:attr:`EventLog.
    max_source_offset`) as its "last acked offset".
    """

    offset: int
    time: float
    envelope: Envelope
    source_offset: Optional[int] = None

    @property
    def event_id(self) -> Optional[tuple]:
        return self.envelope.event_id

    @property
    def publisher(self) -> Optional[str]:
        eid = self.envelope.event_id
        return eid[0] if eid else None

    @property
    def publish_seq(self) -> Optional[int]:
        eid = self.envelope.event_id
        return eid[1] if eid else None

    @property
    def event_class(self) -> Optional[str]:
        return self.envelope.event_class

    def to_json(self) -> str:
        """One deterministic JSON line (the on-disk segment format)."""
        eid = self.envelope.event_id
        return json.dumps(
            {
                "offset": self.offset,
                "time": self.time,
                "iso": format_point(self.time),
                "publisher": eid[0] if eid else None,
                "seq": eid[1] if eid else None,
                "published_at": self.envelope.published_at,
                "metadata": dict(self.envelope.metadata),
                "payload": base64.b64encode(self.envelope.payload).decode("ascii"),
                "source_offset": self.source_offset,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        raw = json.loads(line)
        eid = None
        if raw.get("publisher") is not None:
            eid = (raw["publisher"], raw["seq"])
        envelope = Envelope(
            metadata=PropertyEvent(raw["metadata"]),
            payload=base64.b64decode(raw["payload"]),
            published_at=raw.get("published_at"),
            event_id=eid,
        )
        return cls(
            offset=raw["offset"],
            time=raw["time"],
            envelope=envelope,
            source_offset=raw.get("source_offset"),
        )


class _Segment:
    """``segment_size`` consecutive records starting at ``base_offset``."""

    __slots__ = ("base_offset", "records", "_file")

    def __init__(self, base_offset: int, file: Optional[TextIO] = None):
        self.base_offset = base_offset
        self.records: List[LogRecord] = []
        self._file = file

    @property
    def next_offset(self) -> int:
        return self.base_offset + len(self.records)

    @property
    def last_offset(self) -> int:
        """Offset of the last held record (base - 1 when empty)."""
        return self.base_offset + len(self.records) - 1

    @property
    def first_time(self) -> float:
        return self.records[0].time if self.records else float("inf")

    @property
    def last_time(self) -> float:
        return self.records[-1].time if self.records else float("-inf")

    def append(self, record: LogRecord) -> None:
        self.records.append(record)
        if self._file is not None:
            self._file.write(record.to_json() + "\n")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class EventLog:
    """A segmented, append-only, idempotent publish log.

    Appends are idempotent on ``event_id``: a wire-duplicated frame
    re-presents an already-logged event, and the log returns the original
    record instead of growing — the root's log stays an exactly-once
    ground truth even under duplication faults.  Append times must be
    non-decreasing (the simulator clock is), which is what makes
    :meth:`offset_for_time` a bisection instead of a scan.
    """

    def __init__(
        self,
        name: str = "log",
        segment_size: int = 256,
        directory: Optional[str] = None,
    ):
        if segment_size < 1:
            raise ValueError(f"segment_size must be >= 1, got {segment_size}")
        self.name = name
        self.segment_size = segment_size
        self.directory = directory
        self._segments: List[_Segment] = []
        self._by_id: Dict[tuple, LogRecord] = {}
        self._next_offset = 0
        self._watermarks: Dict[str, int] = {}
        self._max_source_offset: Optional[int] = None
        #: Idempotent re-appends skipped (wire duplicates re-presented).
        self.duplicates_skipped = 0
        #: Partial trailing JSONL records discarded by :meth:`load` (a
        #: crash mid-append leaves at most one).
        self.truncated_records_discarded = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(
        self,
        envelope: Envelope,
        time: float,
        source_offset: Optional[int] = None,
    ) -> LogRecord:
        """Append one event; idempotent on ``envelope.event_id``.

        Returns the (new or previously appended) record.  Compare
        :attr:`next_offset` around the call to tell the cases apart.
        """
        eid = envelope.event_id
        if eid is not None:
            existing = self._by_id.get(eid)
            if existing is not None:
                self.duplicates_skipped += 1
                return existing
        if self._segments and time < self._segments[-1].last_time:
            raise ValueError(
                f"append time {time} precedes log tail "
                f"{self._segments[-1].last_time} (times must be monotone)"
            )
        record = LogRecord(self._next_offset, time, envelope, source_offset)
        segment = self._segments[-1] if self._segments else None
        if segment is None or len(segment.records) >= self.segment_size:
            if segment is not None:
                segment.close()
            segment = self._open_segment(self._next_offset)
            self._segments.append(segment)
        segment.append(record)
        self._next_offset += 1
        if eid is not None:
            self._by_id[eid] = record
            publisher, seq = eid
            known = self._watermarks.get(publisher)
            if known is None or seq > known:
                self._watermarks[publisher] = seq
        if source_offset is not None and (
            self._max_source_offset is None
            or source_offset > self._max_source_offset
        ):
            self._max_source_offset = source_offset
        return record

    def _open_segment(self, base_offset: int) -> _Segment:
        file = None
        if self.directory is not None:
            path = os.path.join(
                self.directory, f"{self.name}-{base_offset:08d}.jsonl"
            )
            # Line-buffered: a fail-stop (SIGKILL) loses at most the
            # partially written last line, which load() heals as a clean
            # crash tail.  Block buffering would silently drop every
            # record still sitting in the stdio buffer.
            file = open(path, "w", encoding="utf-8", buffering=1)
        return _Segment(base_offset, file)

    # ------------------------------------------------------------------
    # Reading / seeking
    # ------------------------------------------------------------------

    @property
    def next_offset(self) -> int:
        """The offset the next append will receive (== total ever appended)."""
        return self._next_offset

    @property
    def start_offset(self) -> int:
        """First retained offset (> 0 after :meth:`truncate_before`)."""
        return self._segments[0].base_offset if self._segments else self._next_offset

    @property
    def max_source_offset(self) -> Optional[int]:
        """Highest root-assigned offset seen — the "last acked offset" a
        restarted broker replays from."""
        return self._max_source_offset

    def __len__(self) -> int:
        return sum(len(segment.records) for segment in self._segments)

    def __iter__(self) -> Iterator[LogRecord]:
        for segment in self._segments:
            yield from segment.records

    def records(self) -> List[LogRecord]:
        return list(self)

    def segments(self) -> List[Tuple[int, int]]:
        """``(base offset, record count)`` per retained segment."""
        return [(s.base_offset, len(s.records)) for s in self._segments]

    def record_at(self, offset: int) -> Optional[LogRecord]:
        """The record at ``offset`` (None when truncated or unwritten)."""
        segment = self._segment_holding(offset)
        if segment is None:
            return None
        return segment.records[offset - segment.base_offset]

    def _segment_holding(self, offset: int) -> Optional[_Segment]:
        if not self._segments or offset < 0:
            return None
        bases = [s.base_offset for s in self._segments]
        index = bisect_right(bases, offset) - 1
        if index < 0:
            return None
        segment = self._segments[index]
        if offset >= segment.next_offset:
            return None
        return segment

    def read_from(self, offset: int) -> Iterator[LogRecord]:
        """Records with ``record.offset >= offset``, in offset order."""
        for segment in self._segments:
            if segment.last_offset < offset:
                continue
            start = max(0, offset - segment.base_offset)
            yield from segment.records[start:]

    def offset_for_time(self, point: TimePoint) -> int:
        """First retained offset whose record time is ``>= point``
        (``next_offset`` when the whole log is older).  ``point`` may be
        simulated seconds or an ISO-8601 timestamp."""
        t = parse_point(point)
        tails = [s.last_time for s in self._segments]
        index = bisect_left(tails, t)
        if index >= len(self._segments):
            return self._next_offset
        segment = self._segments[index]
        times = [r.time for r in segment.records]
        return segment.base_offset + bisect_left(times, t)

    def seen(self, event_id: tuple) -> bool:
        """Whether an event with this id is in the retained log."""
        return event_id in self._by_id

    def watermarks(self) -> Dict[str, int]:
        """Highest publish sequence ever logged, per publisher (monotone
        across truncation: a watermark never retreats)."""
        return dict(self._watermarks)

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------

    def truncate_before(self, offset: int) -> int:
        """Drop whole segments entirely below ``offset``; returns the
        number of records dropped.  Truncation is segment-granular —
        :attr:`start_offset` stays ``<= offset`` and lands on a segment
        boundary — and never splits a segment or touches its file."""
        dropped = 0
        while self._segments and self._segments[0].last_offset < offset:
            segment = self._segments.pop(0)
            segment.close()
            for record in segment.records:
                dropped += 1
                eid = record.event_id
                if eid is not None and self._by_id.get(eid) is record:
                    del self._by_id[eid]
        return dropped

    # ------------------------------------------------------------------
    # File persistence
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close any open segment file (append after close reopens none —
        call only when done writing)."""
        for segment in self._segments:
            segment.close()

    @classmethod
    def load(
        cls,
        name: str,
        directory: str,
        segment_size: int = 256,
        reopen: bool = False,
    ) -> "EventLog":
        """Rebuild a log from a directory of segment files.

        A crash mid-append can leave the *final* line of the *final*
        segment file truncated; such a partial record is discarded (and
        counted in :attr:`truncated_records_discarded`) rather than
        raised — losing the one un-fsynced record is exactly fail-stop
        semantics.  Corruption anywhere else is not a clean crash tail
        and still raises :class:`ValueError`.

        With ``reopen=True`` the loaded log resumes file persistence in
        ``directory``: the tail segment file is rewritten from the parsed
        records (healing any discarded partial line) and kept open for
        append, so a restarted broker continues the same on-disk log.
        """
        log = cls(name, segment_size=segment_size, directory=None)
        prefix = f"{name}-"
        files = sorted(
            f
            for f in os.listdir(directory)
            if f.startswith(prefix) and f.endswith(".jsonl")
        )
        for file_index, filename in enumerate(files):
            with open(os.path.join(directory, filename), encoding="utf-8") as fh:
                lines = [line.strip() for line in fh]
            while lines and not lines[-1]:
                lines.pop()
            for line_index, line in enumerate(lines):
                if not line:
                    continue
                try:
                    record = LogRecord.from_json(line)
                except (ValueError, KeyError, TypeError) as exc:
                    is_final_line = (
                        file_index == len(files) - 1
                        and line_index == len(lines) - 1
                    )
                    if is_final_line:
                        log.truncated_records_discarded += 1
                        break
                    raise ValueError(
                        f"corrupt record in {filename} line {line_index + 1}: "
                        f"{exc}"
                    ) from exc
                log.append(record.envelope, record.time, record.source_offset)
        if reopen:
            log.directory = directory
            os.makedirs(directory, exist_ok=True)
            if log._segments:
                tail = log._segments[-1]
                path = os.path.join(
                    directory, f"{name}-{tail.base_offset:08d}.jsonl"
                )
                file = open(path, "w", encoding="utf-8", buffering=1)
                for record in tail.records:
                    file.write(record.to_json() + "\n")
                file.flush()
                tail._file = file
        return log

    def __repr__(self) -> str:
        return (
            f"EventLog({self.name!r}, records={len(self)}, "
            f"segments={len(self._segments)}, next={self._next_offset})"
        )
