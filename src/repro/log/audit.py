"""Audit-grade exactly-once verification: delivery traces vs. the log.

The verifier cross-checks two independent artifacts:

- the **root's event log** — the ground truth of what entered the
  system (every publisher attaches to the root, so every admitted event
  is a record with an offset and a time);
- the **delivery trace** — the causal tracer's ``deliver`` spans, each
  carrying the original ``(publisher, seq)`` trace id and a
  ``delivered`` count emitted at the subscriber edge.

For each audited subscription it derives the *expected* delivery set
(log records matching the subscription's filter from its start point)
and diffs it against the *observed* copies: zero copies is a **gap**,
more than one is a **duplicate**.  Findings are classified against the
run's fault windows — an event published (or delivered) while faults
were injected may legitimately be lost or duplicated; the system's
guarantee, and what :attr:`AuditReport.clean` asserts, is exactly-once
*outside* fault windows.

Restriction: copies are counted per ``deliver`` span with ``delivered
>= 1``, i.e. per envelope arrival that delivered something — so each
audited subscriber must hold exactly one subscription matching the
audited filter (the harness's subscribers do).
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.filters.filter import Filter
from repro.log.eventlog import EventLog, format_point
from repro.obs.tracing import EventTracer


@dataclass(frozen=True)
class AuditSubscription:
    """One subscription to verify: ``subscriber`` is the runtime's
    process name (what ``deliver`` spans carry as their node)."""

    subscriber: str
    filter: Filter
    event_class: Optional[str] = None
    #: First log offset the subscription is entitled to (a catch-up
    #: subscriber from offset N expects nothing before N).
    from_offset: int = 0
    #: ...and/or the earliest publish time it is entitled to.
    from_time: float = 0.0


@dataclass(frozen=True)
class AuditFinding:
    """One exactly-once violation candidate."""

    kind: str  # "gap" | "duplicate"
    subscriber: str
    event_id: Optional[tuple]
    offset: int
    publish_time: float
    copies: int
    in_fault_window: bool

    def __str__(self) -> str:
        shelter = " [fault window]" if self.in_fault_window else ""
        eid = f"{self.event_id[0]}/{self.event_id[1]}" if self.event_id else "?"
        return (
            f"{self.kind}: {eid} (offset {self.offset}, "
            f"t={self.publish_time:.4f}) at {self.subscriber} "
            f"copies={self.copies}{shelter}"
        )


@dataclass
class AuditReport:
    """The verifier's verdict plus enough detail to render an artifact."""

    subscriptions: int
    records: int
    expected: int
    delivered: int
    findings: List[AuditFinding] = field(default_factory=list)
    fault_windows: Tuple[Tuple[float, float], ...] = ()

    @property
    def gaps(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.kind == "gap"]

    @property
    def duplicates(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.kind == "duplicate"]

    @property
    def violations(self) -> List[AuditFinding]:
        """Findings outside every fault window — real violations."""
        return [f for f in self.findings if not f.in_fault_window]

    @property
    def excused(self) -> List[AuditFinding]:
        """Findings inside a fault window — permitted by the guarantee."""
        return [f for f in self.findings if f.in_fault_window]

    @property
    def clean(self) -> bool:
        """True when exactly-once holds outside fault windows."""
        return not self.violations

    def render(self) -> str:
        """Human-readable report (the CI artifact)."""
        lines = [
            "exactly-once audit",
            "==================",
            f"subscriptions audited : {self.subscriptions}",
            f"log records           : {self.records}",
            f"expected deliveries   : {self.expected}",
            f"observed deliveries   : {self.delivered}",
            f"fault windows         : "
            + (
                ", ".join(
                    f"[{format_point(a)} .. {format_point(b)}]"
                    for a, b in self.fault_windows
                )
                or "none"
            ),
            f"gaps                  : {len(self.gaps)}"
            f" ({sum(1 for f in self.gaps if not f.in_fault_window)} outside windows)",
            f"duplicates            : {len(self.duplicates)}"
            f" ({sum(1 for f in self.duplicates if not f.in_fault_window)}"
            " outside windows)",
            f"verdict               : {'CLEAN' if self.clean else 'VIOLATED'}",
        ]
        if self.findings:
            lines.append("")
            lines.append("findings")
            lines.append("--------")
            for finding in self.findings:
                lines.append(f"  {finding}")
        return "\n".join(lines)


def verify_exactly_once(
    log: EventLog,
    tracer: EventTracer,
    subscriptions: Sequence[AuditSubscription],
    fault_windows: Iterable[Tuple[float, float]] = (),
) -> AuditReport:
    """Diff delivery traces against the log (see module docstring).

    ``fault_windows`` is an iterable of ``(start, end)`` simulated-time
    intervals during which faults (loss/duplication/crashes) were
    injected; a finding is *excused* when the event's publish time or
    any of its observed delivery times falls inside one.
    """
    windows = tuple(fault_windows)

    def in_windows(t: Optional[float]) -> bool:
        return t is not None and any(a <= t <= b for a, b in windows)

    # (subscriber name, trace id) -> times of spans that delivered.
    copies: Dict[Tuple[str, tuple], List[float]] = {}
    for span in tracer.kinds("deliver"):
        if span.trace_id is None or not span.detail("delivered", 0):
            continue
        copies.setdefault((span.node, span.trace_id), []).append(span.time)

    report = AuditReport(
        subscriptions=len(subscriptions),
        records=len(log),
        expected=0,
        delivered=0,
        fault_windows=windows,
    )
    for record in log:
        publish_time = (
            record.envelope.published_at
            if record.envelope.published_at is not None
            else record.time
        )
        for subscription in subscriptions:
            if record.offset < subscription.from_offset:
                continue
            if publish_time < subscription.from_time:
                continue
            if (
                subscription.event_class is not None
                and record.event_class is not None
                and record.event_class != subscription.event_class
            ):
                continue
            if not subscription.filter.matches(record.envelope.metadata):
                continue
            report.expected += 1
            key = (subscription.subscriber, record.event_id)
            observed = copies.get(key, []) if record.event_id else []
            report.delivered += min(len(observed), 1)
            if len(observed) == 1:
                continue
            excused = in_windows(publish_time) or any(
                in_windows(t) for t in observed
            )
            report.findings.append(
                AuditFinding(
                    kind="gap" if not observed else "duplicate",
                    subscriber=subscription.subscriber,
                    event_id=record.event_id,
                    offset=record.offset,
                    publish_time=publish_time,
                    copies=len(observed),
                    in_fault_window=excused,
                )
            )
    return report


def dropped_window_excusals(
    tracer: EventTracer, slack: float = 0.0
) -> Tuple[Tuple[float, float], ...]:
    """Fault windows for operator state lost to crashes (DESIGN §15).

    In-broker information flows are soft state: a crash discards every
    open window, and the derived events those windows would have emitted
    are *legitimately* absent from downstream deliveries.  Each such
    loss is announced by a ``window-dropped`` span carrying the window's
    start and the drop time; this helper turns those spans into
    ``(window_start, drop_time + slack)`` intervals to pass as extra
    ``fault_windows`` to :func:`verify_exactly_once` — the recorded
    audit-excusal rule: **a derived-event gap is excused iff its input
    window was explicitly dropped by a crash**.  Raw (non-derived)
    events are unaffected: their publish times predate the window spans
    only when they actually fed the dropped window.
    """
    intervals: List[Tuple[float, float]] = []
    for span in tracer.kinds("window-dropped"):
        start = span.detail("window_start")
        if start is None:
            start = span.time
        intervals.append((float(start), span.time + slack))
    return tuple(intervals)
