"""Durable per-broker event logs, replay, and exactly-once auditing.

- :mod:`repro.log.eventlog` — segmented append-only logs with offset and
  ISO-timestamp seeks, in-sim or JSONL-file persisted;
- :mod:`repro.log.replay` — the root's replayer: catch-up subscribers
  and broker crash recovery;
- :mod:`repro.log.audit` — the exactly-once verifier diffing delivery
  traces against the log.
"""

from repro.log.audit import (
    AuditFinding,
    AuditReport,
    AuditSubscription,
    dropped_window_excusals,
    verify_exactly_once,
)
from repro.log.config import LogConfig
from repro.log.eventlog import (
    EPOCH_ISO,
    EventLog,
    LogRecord,
    format_point,
    parse_point,
)
from repro.log.replay import Replayer

__all__ = [
    "AuditFinding",
    "AuditReport",
    "AuditSubscription",
    "EPOCH_ISO",
    "EventLog",
    "LogConfig",
    "LogRecord",
    "Replayer",
    "dropped_window_excusals",
    "format_point",
    "parse_point",
    "verify_exactly_once",
]
