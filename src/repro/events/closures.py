"""Filter closures: arbitrary subscription code, split for routing.

Section 3.4's ``BuyFilter`` shows a subscription that no conjunctive
filter can express (it compares each price with the *previous* matching
price — it is stateful).  The paper's resolution: derive a weaker
conjunctive filter (``f1 = (class,Stock,=)(symbol,Foo,=)(price,10,<)``)
for use in the overlay and run the full closure only at the subscriber.

:class:`FilterClosure` packages exactly that split:

- ``indexable`` — a :class:`~repro.filters.filter.Filter` that *covers*
  the closure (every event the closure can accept matches it); this is
  what gets weakened and installed in broker tables;
- ``residual`` — the arbitrary (possibly stateful) predicate, evaluated
  on the unmarshaled typed event at delivery time only.
"""

from typing import Any, Callable, Optional

from repro.filters.filter import Filter


class FilterClosure:
    """A subscriber-side filter: conjunctive cover + residual predicate.

    >>> from repro.filters import parse_filter
    >>> last = {"price": None}
    >>> def dropping(stock):
    ...     previous, last["price"] = last["price"], stock.get_price()
    ...     return previous is None or stock.get_price() <= previous * 0.95
    >>> closure = FilterClosure(
    ...     parse_filter('class = "Stock" and symbol = "Foo" and price < 10'),
    ...     residual=dropping,
    ... )

    The overlay sees only ``closure.indexable``; ``closure.matches(event)``
    (meta-data check plus residual) runs at the subscriber runtime.
    """

    def __init__(
        self,
        indexable: Filter,
        residual: Optional[Callable[[Any], bool]] = None,
        name: Optional[str] = None,
    ):
        if indexable.matches_nothing and residual is not None:
            raise ValueError("a residual under fF can never run")
        self.indexable = indexable
        self.residual = residual
        self.name = name

    @property
    def is_pure(self) -> bool:
        """True when the closure is fully captured by its conjunctive part."""
        return self.residual is None

    def matches_metadata(self, metadata: Any) -> bool:
        """The indexable (routing) part only — what brokers evaluate."""
        return self.indexable.matches(metadata)

    def matches(self, event: Any, metadata: Any = None) -> bool:
        """Full end-to-end check: indexable part, then residual.

        ``metadata`` defaults to the event itself (property events are
        their own meta-data); pass the envelope meta-data when matching a
        typed object.  The residual is only invoked when the indexable
        part matched, preserving any statefulness semantics of the
        closure ("previous *matching* event").
        """
        if not self.indexable.matches(metadata if metadata is not None else event):
            return False
        if self.residual is None:
            return True
        return bool(self.residual(event))

    def __repr__(self) -> str:
        label = self.name or ("pure" if self.is_pure else "residual")
        return f"FilterClosure({label}: {self.indexable})"
