"""Event model ``LE`` — the event-safety side of the paper.

Events exist at two levels, mirroring Section 3.4:

- **high level**: application-defined Python classes following the paper's
  access-method convention (``get_*`` accessors / properties).  These are
  what publishers publish and subscribers receive — encapsulated objects,
  never inspected by brokers (:mod:`~repro.events.typed`).
- **low level**: :class:`~repro.events.base.PropertyEvent`, the name-value
  meta-data representation automatically *reflected* from an event object.
  This covering representation is the only thing the overlay ever matches
  against (Proposition 2: the weakened event covers the original for every
  weakened filter).

:mod:`~repro.events.hierarchy` provides the runtime type registry used for
type-based (polymorphic) subscriptions; :mod:`~repro.events.serialization`
the opaque envelope that carries the original object end-to-end; and
:mod:`~repro.events.closures` the filter-closure pattern (indexable
conjunctive part + residual stateful predicate, the ``BuyFilter`` example).
"""

from repro.events.base import CLASS_ATTRIBUTE, PropertyEvent
from repro.events.closures import FilterClosure
from repro.events.hierarchy import TypeRegistry
from repro.events.serialization import Envelope, marshal, unmarshal
from repro.events.typed import TypedEvent, reflect_attributes, to_property_event

__all__ = [
    "CLASS_ATTRIBUTE",
    "Envelope",
    "FilterClosure",
    "PropertyEvent",
    "TypeRegistry",
    "TypedEvent",
    "marshal",
    "reflect_attributes",
    "to_property_event",
    "unmarshal",
]
