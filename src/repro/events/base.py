"""Low-level event representation: immutable name-value property sets.

This is the paper's original formal model ("events are represented by
name-value tuples", Example 1) and, in the full system, the *weakened*
covering representation of typed event objects that intermediate nodes
filter on.  The reserved attribute ``class`` carries the event's type name
(cf. Example 4's ``(class, "Stock")``).
"""

from collections.abc import Mapping as AbcMapping
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple, Union

#: Reserved attribute holding the event's type name.
CLASS_ATTRIBUTE = "class"


class PropertyEvent(AbcMapping):
    """An immutable mapping of attribute names to values.

    Supports the full ``Mapping`` protocol, so filters can evaluate it
    directly.  Construction accepts a mapping or an iterable of pairs:

    >>> e1 = PropertyEvent({"symbol": "Foo", "price": 10.0, "volume": 32300})
    >>> e1["price"]
    10.0
    >>> e1.restricted_to(["symbol", "price"])
    PropertyEvent(symbol='Foo', price=10.0)
    """

    __slots__ = ("_properties", "_hash")

    def __init__(
        self,
        properties: Union[Mapping[str, Any], Iterable[Tuple[str, Any]]] = (),
        **extra: Any,
    ):
        merged: Dict[str, Any] = dict(properties)
        merged.update(extra)
        for name in merged:
            if not isinstance(name, str):
                raise TypeError(f"attribute names must be strings, got {name!r}")
        object.__setattr__(self, "_properties", merged)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("PropertyEvent is immutable")

    @property
    def properties(self) -> Mapping[str, Any]:
        """The underlying read-only view (self, since PropertyEvent is a Mapping)."""
        return self

    @property
    def event_class(self) -> Optional[str]:
        """The value of the reserved ``class`` attribute, if any."""
        return self._properties.get(CLASS_ATTRIBUTE)

    def __getitem__(self, name: str) -> Any:
        return self._properties[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._properties)

    def __len__(self) -> int:
        return len(self._properties)

    def __contains__(self, name: object) -> bool:
        return name in self._properties

    def restricted_to(self, attributes: Iterable[str]) -> "PropertyEvent":
        """Event weakening: keep only the named attributes.

        Dropping attributes yields a covering event for every filter that
        does not test the dropped attributes for existence — the
        coordinated-weakening condition of Proposition 2.
        """
        keep = set(attributes)
        return PropertyEvent(
            {name: value for name, value in self._properties.items() if name in keep}
        )

    def with_properties(self, **updates: Any) -> "PropertyEvent":
        """Functional update: a new event with the given properties set."""
        merged = dict(self._properties)
        merged.update(updates)
        return PropertyEvent(merged)

    def __reduce__(self):
        # Immutability (__setattr__ raises) breaks pickle's default slot
        # restoration; rebuild through the constructor instead.
        return (PropertyEvent, (dict(self._properties),))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PropertyEvent):
            return self._properties == other._properties
        if isinstance(other, Mapping):
            return dict(self._properties) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(frozenset(self._properties.items()))
            )
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._properties.items())
        return f"PropertyEvent({inner})"
