"""Encapsulation-preserving event envelopes.

The broker overlay must never deserialize or execute event objects (that
is the scalability half of the event-safety tradeoff, Section 2.2).  An
:class:`Envelope` therefore pairs

- an **opaque payload**: the pickled original event object, which only
  the subscriber runtime ever opens, with
- the **meta-data**: the reflected :class:`PropertyEvent` used for all
  intermediate filtering.

Brokers route the envelope by its meta-data and forward the payload
untouched; :func:`unmarshal` runs only at the edge, delivering the
original typed object to matching subscribers ("end-to-end" event
safety, Section 3.4).
"""

import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.events.base import PropertyEvent
from repro.events.typed import to_property_event


@dataclass(frozen=True)
class Envelope:
    """A routable event: filtering meta-data plus opaque payload.

    ``published_at`` (simulated time at the publishing boundary, when
    known) rides along so the delivery-latency metrics can be computed
    at the subscriber without any extra protocol machinery, and
    ``event_id`` (publisher name, sequence number) gives every published
    event a stable identity — the subscriber runtime uses it to
    de-duplicate deliveries of disjunctive subscriptions whose branches
    arrive over different paths.
    """

    metadata: PropertyEvent
    payload: bytes = field(repr=False)
    published_at: Optional[float] = None
    event_id: Optional[tuple] = None

    @property
    def event_class(self) -> Optional[str]:
        return self.metadata.event_class

    def weakened(self, attributes) -> "Envelope":
        """Envelope with meta-data restricted to ``attributes``.

        The payload travels unchanged: weakening only ever touches the
        covering representation, never the encapsulated object.
        """
        return Envelope(
            self.metadata.restricted_to(attributes),
            self.payload,
            self.published_at,
            self.event_id,
        )

    def __len__(self) -> int:
        """Approximate wire size in bytes (payload + crude metadata cost)."""
        return len(self.payload) + 16 * len(self.metadata)


def marshal(
    event: Any,
    class_name: Optional[str] = None,
    published_at: Optional[float] = None,
    event_id: Optional[tuple] = None,
) -> Envelope:
    """Publisher-side transformation: object -> envelope.

    Reflection extracts the meta-data (Proposition 2's covering event);
    pickling captures the full object for end-to-end delivery.
    """
    return Envelope(
        metadata=to_property_event(event, class_name=class_name),
        payload=pickle.dumps(event),
        published_at=published_at,
        event_id=event_id,
    )


def unmarshal(envelope: Envelope) -> Any:
    """Subscriber-side: recover the original typed event object.

    Must only be called by the subscriber runtime; broker code has no
    business importing this function.
    """
    return pickle.loads(envelope.payload)
