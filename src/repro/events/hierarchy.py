"""Runtime type registry: the polymorphic half of event safety.

The paper lets subscribers *"register their interest to some event type
(including all its subtypes)"* and lets publishers *"extend the hierarchy
and create new event (sub)types without requiring subscribers to update
their subscriptions"*.  In the flat property representation, type
membership is the single attribute ``(class, <name>, =)``; polymorphism
is realised by the registry, which knows which registered names conform
to which, so the engine can expand a type subscription over all current
conformers and extend it automatically when a new subtype is advertised.
"""

from typing import Dict, Iterable, List, Optional, Type


class TypeRegistry:
    """Bidirectional map between event classes and their registered names.

    Subtype relations come from the Python MRO restricted to registered
    classes, so the application hierarchy *is* the event-type hierarchy.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, Type] = {}
        self._by_class: Dict[Type, str] = {}

    def register(self, cls: Type, name: Optional[str] = None) -> str:
        """Register an event class; returns its name.

        The default name is the class's ``__name__``.  Re-registering the
        same class under the same name is a no-op; conflicting
        registrations raise ``ValueError``.
        """
        name = name or cls.__name__
        existing = self._by_name.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"type name {name!r} already bound to {existing!r}")
        existing_name = self._by_class.get(cls)
        if existing_name is not None and existing_name != name:
            raise ValueError(
                f"class {cls!r} already registered as {existing_name!r}"
            )
        self._by_name[name] = cls
        self._by_class[cls] = name
        return name

    def name_of(self, cls: Type) -> str:
        """Registered name of ``cls``; raises ``KeyError`` if unregistered."""
        try:
            return self._by_class[cls]
        except KeyError:
            raise KeyError(f"event class {cls!r} is not registered") from None

    def class_of(self, name: str) -> Type:
        """Registered class for ``name``; raises ``KeyError`` if unknown."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"event type {name!r} is not registered") from None

    def is_registered(self, cls: Type) -> bool:
        return cls in self._by_class

    def names(self) -> List[str]:
        """All registered type names, in registration order."""
        return list(self._by_name)

    def conforms(self, name: str, ancestor: str) -> bool:
        """True when type ``name`` is ``ancestor`` or a subtype of it."""
        return issubclass(self.class_of(name), self.class_of(ancestor))

    def conformers(self, ancestor: str) -> List[str]:
        """Registered names conforming to ``ancestor`` (itself included)."""
        ancestor_cls = self.class_of(ancestor)
        return [
            name for name, cls in self._by_name.items() if issubclass(cls, ancestor_cls)
        ]

    def ancestors(self, name: str) -> List[str]:
        """Registered names that ``name`` conforms to (itself included)."""
        cls = self.class_of(name)
        return [
            other for other, other_cls in self._by_name.items()
            if issubclass(cls, other_cls)
        ]

    def lineage(self, cls: Type) -> List[str]:
        """Registered names along the MRO of ``cls`` (nearest first)."""
        return [self._by_class[c] for c in cls.__mro__ if c in self._by_class]

    def register_all(self, classes: Iterable[Type]) -> List[str]:
        """Register several classes; returns their names."""
        return [self.register(cls) for cls in classes]

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        return f"TypeRegistry({sorted(self._by_name)})"
