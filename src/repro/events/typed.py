"""Typed events and reflection-based meta-data extraction (Section 3.4).

The paper's convention: *"for each attribute (used for filtering), the
type offers an access method (used for expressing filters), whose name
corresponds to the attribute's name prefixed with ``get``"*.  The event
system uses reflection to extract these attributes into the low-level
:class:`~repro.events.base.PropertyEvent` representation that brokers
filter on — without ever executing application code on broker nodes.

Both Java-style (``getSymbol``) and Python-style (``get_symbol``)
accessor names are recognised, as are read-only ``property`` members.
Methods taking parameters are deliberately ignored: per the paper, such
behaviour is "only applied locally" (residual predicates, see
:mod:`repro.events.closures`), never used for routing.
"""

import inspect
from typing import Any, Dict, Optional, Type

from repro.events.base import CLASS_ATTRIBUTE, PropertyEvent


class TypedEvent:
    """Optional convenience base class for application event types.

    Subclassing is *not* required for reflection — any object following
    the accessor convention works — but the base class gives events a
    uniform ``repr`` and a direct ``to_property_event`` shortcut.
    """

    def attributes(self) -> Dict[str, Any]:
        """The reflected attribute dictionary of this event."""
        return reflect_attributes(self)

    def to_property_event(self, class_name: Optional[str] = None) -> PropertyEvent:
        """The covering low-level representation of this event."""
        return to_property_event(self, class_name=class_name)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.attributes().items()))
        return f"{type(self).__name__}({inner})"


def _accessor_attribute_name(method_name: str) -> Optional[str]:
    """Map an accessor method name to its attribute name, or None.

    ``get_symbol`` -> ``symbol``; ``getSymbol`` -> ``symbol``; anything
    else (including plain ``get``) -> None.
    """
    if method_name.startswith("get_") and len(method_name) > 4:
        return method_name[4:]
    if (
        method_name.startswith("get")
        and len(method_name) > 3
        and method_name[3].isupper()
    ):
        return method_name[3].lower() + method_name[4:]
    return None


def _takes_no_arguments(method: Any) -> bool:
    """True for bound methods callable without arguments."""
    try:
        signature = inspect.signature(method)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.default is inspect.Parameter.empty and parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return False
    return True


def reflect_attributes(event: Any) -> Dict[str, Any]:
    """Extract the filterable attributes of an event object.

    Discovery order (later sources do not override earlier ones):

    1. zero-argument accessor methods named ``get_<attr>`` / ``get<Attr>``;
    2. read-only ``property`` members of the class.

    Private state (underscore-prefixed) is never read directly — only
    through accessors, preserving encapsulation exactly as the paper's
    reflection scheme does.
    """
    attributes: Dict[str, Any] = {}
    cls = type(event)
    for name in dir(cls):
        if name.startswith("_"):
            continue
        attribute = _accessor_attribute_name(name)
        if attribute is None or attribute in attributes:
            continue
        member = getattr(event, name, None)
        if callable(member) and _takes_no_arguments(member):
            attributes[attribute] = member()
    for name in dir(cls):
        if name.startswith("_") or name in attributes:
            continue
        class_member = getattr(cls, name, None)
        if isinstance(class_member, property):
            attributes[name] = getattr(event, name)
    return attributes


def to_property_event(
    event: Any, class_name: Optional[str] = None
) -> PropertyEvent:
    """Transform an event object into its covering property representation.

    The result carries the reserved ``class`` attribute (the event's type
    name, or ``class_name`` when given — the registry passes the
    registered name) plus every reflected attribute.  This is the event
    transformation of Section 3.3 applied at the publisher boundary.
    """
    if isinstance(event, PropertyEvent):
        return event
    properties = reflect_attributes(event)
    properties[CLASS_ATTRIBUTE] = class_name or type(event).__name__
    return PropertyEvent(properties)


def event_type_of(event: Any) -> Type:
    """The Python class of a typed event (helper for the registry)."""
    return type(event)
