"""Structured trace recording.

Experiments record significant occurrences (event published, event matched
at a node, filter inserted, lease expired, ...) as :class:`TraceRecord`
rows.  The metrics layer computes LC/RLC/MR from node counters directly,
but traces support debugging, assertions in integration tests, and
ad-hoc analysis of simulation runs.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace row: when, where, what, and free-form details."""

    time: float
    category: str
    source: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"[{self.time:.4f}] {self.category} @ {self.source} {self.details}"


class TraceRecorder:
    """Append-only trace sink with simple query helpers.

    Recording can be disabled wholesale (``enabled=False``) for large
    benchmark runs where the per-record overhead matters; the ``record``
    call then becomes a no-op.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._records: List[TraceRecord] = []

    def record(self, time: float, category: str, source: str, **details: Any) -> None:
        """Append a record (no-op when disabled)."""
        if self.enabled:
            self._records.append(TraceRecord(time, category, source, details))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def clear(self) -> None:
        self._records.clear()

    def query(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching all the given criteria."""
        result = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if source is not None and record.source != source:
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def count(self, category: Optional[str] = None, source: Optional[str] = None) -> int:
        """Count records matching the given criteria."""
        return len(self.query(category=category, source=source))
