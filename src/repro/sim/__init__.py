"""Discrete-event simulation substrate.

The paper's evaluation (Section 5) is a simulation of a broker hierarchy.
This package provides the deterministic discrete-event kernel that hosts
broker processes, the latency/bandwidth network model connecting them, the
seeded random-number streams that make every experiment reproducible, and a
structured trace recorder used by the metrics layer.

The kernel is intentionally small and dependency-free: a time-ordered event
queue (:class:`~repro.sim.kernel.Simulator`), processes that exchange
messages through a :class:`~repro.sim.network.Network`, and nothing else.
"""

from repro.sim.kernel import EventHandle, Process, SimulationError, Simulator
from repro.sim.network import (
    CrashWindow,
    FaultPlan,
    FaultWindow,
    Link,
    Network,
    NetworkStats,
)
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "CrashWindow",
    "EventHandle",
    "FaultPlan",
    "FaultWindow",
    "Link",
    "Network",
    "NetworkStats",
    "Process",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "TraceRecord",
    "TraceRecorder",
]
