"""Named, seeded random-number streams.

Every source of randomness in an experiment (event generation, subscription
generation, placement tie-breaking, ...) draws from its own named stream so
that changing how one component consumes randomness does not perturb the
others.  Streams are derived deterministically from a single experiment
seed, which makes whole runs reproducible bit-for-bit.
"""

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory of independent, reproducible ``random.Random`` streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("events")
    >>> b = rngs.stream("subscriptions")
    >>> a is rngs.stream("events")
    True
    >>> a is b
    False
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is a stable hash of (registry seed, name), so two
        registries with the same seed produce identical streams regardless
        of creation order.
        """
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per simulated trial)."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode("utf-8")).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
