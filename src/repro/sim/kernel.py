"""Deterministic discrete-event simulation kernel.

The kernel maintains a priority queue of scheduled callbacks ordered by
(simulated time, sequence number).  The sequence number makes execution
order deterministic when several events share a timestamp: events fire in
the order they were scheduled, which is the property the reproducibility
guarantees of the experiment harness rely on.

Typical use::

    sim = Simulator()
    sim.schedule(1.5, callback, arg1, arg2)
    sim.run(until=100.0)
"""

import heapq
import itertools
from typing import Any, Callable, List, Optional


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. scheduling in the past)."""


class EventHandle:
    """Handle for a scheduled event, usable to cancel it.

    A handle is returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at`.  Cancelling is O(1): the queue entry is
    tombstoned and skipped when it surfaces.  The owning simulator counts
    live tombstones and compacts the heap when they pile up, so churny
    workloads (renewal timers, retransmit timers, flow-control grants)
    cannot grow the queue without bound.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Mark the event so it will be skipped when dequeued."""
        if not self.cancelled:
            self.cancelled = True
            if self.sim is not None:
                self.sim._note_cancelled()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time!r}, seq={self.seq}, {state})"


class Simulator:
    """Time-ordered event queue with deterministic tie-breaking.

    The simulator clock starts at ``0.0`` and only advances when events are
    processed; there is no wall-clock coupling.  All times are plain floats
    in arbitrary "simulated time units" (the experiments use seconds).
    """

    #: Compaction fires once at least this many tombstones accumulate and
    #: they make up at least half the queue (amortized O(1) per cancel).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._running = False
        self._cancelled_pending = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of queue entries not yet executed (includes cancelled)."""
        return len(self._queue)

    @property
    def cancelled_pending(self) -> int:
        """Number of tombstoned entries still sitting in the queue."""
        return self._cancelled_pending

    @property
    def compactions(self) -> int:
        """Number of tombstone-triggered heap rebuilds performed so far."""
        return self._compactions

    def _note_cancelled(self) -> None:
        """Record a cancellation; compact once tombstones dominate the heap.

        Compacting rebuilds the heap from the live entries only.  The heap
        order on (time, seq) is a strict total order (seq is unique), so a
        rebuild pops in exactly the same sequence as the original heap —
        compaction is invisible to deterministic replay.
        """
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_pending * 2 >= len(self._queue)
        ):
            self._queue = [h for h in self._queue if not h.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0
            self._compactions += 1

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        Returns an :class:`EventHandle` that can be cancelled.  A zero delay
        is allowed and runs after all events already scheduled for the
        current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def defer(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the *current* instant, after
        every event already queued for it.

        This is the batched-dispatch primitive: a node receiving a run of
        same-instant messages defers one drain callback and processes the
        whole run in a single wakeup instead of one per scheduling round.
        """
        return self.schedule_at(self._now, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        handle = EventHandle(time, next(self._seq), callback, args, sim=self)
        heapq.heappush(self._queue, handle)
        return handle

    def every(
        self, interval: float, callback: Callable[..., None], *args: Any
    ) -> "RecurringHandle":
        """Run ``callback(*args)`` every ``interval`` time units until the
        returned handle is cancelled.

        The tick grid is fixed at arming time (first fire at ``now +
        interval``), so periodic samplers observe the same instants in
        every same-seed run.  Note that, like the TTL maintenance tasks,
        a recurring event keeps the queue non-empty forever: drive a
        sampled simulation with ``run(until=...)``, not a bare ``run()``.
        """
        if interval <= 0:
            raise SimulationError(f"recurring interval must be positive, got {interval}")
        return RecurringHandle(self, interval, callback, args)

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty (cancelled entries are drained silently).
        """
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                if self._cancelled_pending > 0:
                    self._cancelled_pending -= 1
                continue
            self._now = handle.time
            self._processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        Events scheduled exactly at ``until`` still run (the bound is
        inclusive).  Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    if self._cancelled_pending > 0:
                        self._cancelled_pending -= 1
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                if self.step():
                    executed += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return executed


class RecurringHandle:
    """A self-rescheduling periodic event (see :meth:`Simulator.every`).

    Cancelling tombstones the pending occurrence and stops the chain; a
    cancelled handle never fires again.
    """

    __slots__ = ("sim", "interval", "callback", "args", "cancelled", "_pending")

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., None],
        args: tuple,
    ):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._pending = sim.schedule(interval, self._fire)

    def _fire(self) -> None:
        if self.cancelled:
            return
        # Reschedule first: the callback sees the next tick already armed
        # and may cancel this handle to stop the chain.
        self._pending = self.sim.schedule(self.interval, self._fire)
        self.callback(*self.args)

    def cancel(self) -> None:
        self.cancelled = True
        self._pending.cancel()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "armed"
        return f"RecurringHandle(every={self.interval!r}, {state})"


class Process:
    """Base class for simulated entities (brokers, publishers, subscribers).

    A process owns a reference to the :class:`Simulator` (any object
    satisfying the :class:`repro.runtime.base.Executor` protocol) and
    exposes :meth:`receive`, the network's delivery entry point.
    Subclasses override :meth:`receive` to implement their protocol.

    Timers whose work belongs to the *current incarnation* of the process
    should be armed through :meth:`call_later` / :meth:`call_at` /
    :meth:`call_soon` / :meth:`call_every` rather than raw executor
    scheduling: owned timers are cancelled by :meth:`crash` and
    additionally guarded by the incarnation counter, so a stale pre-crash
    timer can never fire into the restarted incarnation's fresh state
    (the same bug class as the epoch-guarded retransmit timers in
    overlay/channel.py).
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        #: Fail-stop gate: while True the network drops every message to
        #: or from this process (fault injection; see sim.network).
        self.crashed = False
        #: Bumped by :meth:`restart`; owned-timer callbacks armed under an
        #: older incarnation refuse to run.
        self.incarnation = 0
        self._owned_timers: set = set()

    def call_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule owned work at an absolute time (see class docstring)."""
        incarnation = self.incarnation
        handle_box: list = []

        def _fire() -> None:
            self._owned_timers.discard(handle_box[0])
            if self.crashed or self.incarnation != incarnation:
                return
            callback(*args)

        handle = self.sim.schedule_at(time, _fire)
        handle_box.append(handle)
        self._owned_timers.add(handle)
        return handle

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule owned work ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.call_at(self.sim.now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Defer owned work to the current instant (after queued events)."""
        return self.call_at(self.sim.now, callback, *args)

    def call_every(
        self, interval: float, callback: Callable[..., None], *args: Any
    ) -> "RecurringHandle":
        """Arm an owned recurring timer; cancelled on :meth:`crash`."""
        incarnation = self.incarnation

        def _tick() -> None:
            if self.crashed or self.incarnation != incarnation:
                return
            callback(*args)

        handle = self.sim.every(interval, _tick)
        self._owned_timers.add(handle)
        return handle

    def crash(self) -> None:
        """Take the process down (fail-stop).

        The base implementation flips the network gate and cancels every
        owned timer; stateful subclasses (brokers) override to also lose
        their soft state, which is what the paper's §4.3
        refresh-or-restore renewals rebuild.
        """
        self.crashed = True
        for handle in self._owned_timers:
            handle.cancel()
        self._owned_timers.clear()

    def restart(self) -> None:
        """Bring the process back up after :meth:`crash`.

        Bumps the incarnation counter so any owned timer that escaped
        cancellation (or any raw timer guarded by incarnation) fires into
        a closed door rather than the fresh state.
        """
        self.crashed = False
        self.incarnation += 1

    def receive(self, message: Any, sender: "Process") -> None:
        """Handle a message delivered by the network."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
