"""Simulated network connecting processes.

The network delivers messages between :class:`~repro.sim.kernel.Process`
instances with a per-link latency and accounts traffic (message and byte
counts) per link and per process.  Byte sizes come from a pluggable sizer
so experiments can model the paper's observation that weakened events are
smaller than full event objects.

Only point-to-point links exist: the paper's overlay is a tree of brokers,
and publishers/subscribers each attach to a single broker.
"""

from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.kernel import Process, SimulationError, Simulator


def _default_sizer(message: Any) -> int:
    """Crude default message size model: repr length in bytes."""
    return max(16, len(repr(message)))


class Link:
    """A directed link between two processes with fixed latency."""

    __slots__ = ("src", "dst", "latency", "messages", "bytes")

    def __init__(self, src: Process, dst: Process, latency: float):
        self.src = src
        self.dst = dst
        self.latency = latency
        self.messages = 0
        self.bytes = 0

    def __repr__(self) -> str:
        return (
            f"Link({self.src.name} -> {self.dst.name}, latency={self.latency}, "
            f"messages={self.messages})"
        )


class NetworkStats:
    """Aggregate traffic counters for a whole network."""

    def __init__(self) -> None:
        self.total_messages = 0
        self.total_bytes = 0
        self.dropped_messages = 0
        self.messages_by_process: Dict[str, int] = {}

    def record(self, link: Link, size: int) -> None:
        self.total_messages += 1
        self.total_bytes += size
        self.messages_by_process[link.dst.name] = (
            self.messages_by_process.get(link.dst.name, 0) + 1
        )

    def __repr__(self) -> str:
        return f"NetworkStats(messages={self.total_messages}, bytes={self.total_bytes})"


class Network:
    """Message fabric between simulated processes.

    Links must be registered with :meth:`connect` before :meth:`send` is
    used between a pair of processes; this mirrors the paper's overlay
    where every process talks only to its hierarchy neighbours.  A default
    latency can be supplied for convenience, in which case unknown pairs
    are connected lazily.
    """

    def __init__(
        self,
        sim: Simulator,
        default_latency: Optional[float] = None,
        sizer: Callable[[Any], int] = _default_sizer,
    ):
        self.sim = sim
        self.default_latency = default_latency
        self.sizer = sizer
        self.stats = NetworkStats()
        self._links: Dict[Tuple[int, int], Link] = {}
        self._partitioned: set = set()

    def partition(self, a: Process, b: Process) -> None:
        """Cut communication between ``a`` and ``b`` (both directions).

        Unlike :meth:`disconnect`, sends over a partitioned pair are
        *silently dropped* (counted in ``stats.dropped_messages``) — the
        behaviour of a real network partition, and what the TTL soft
        state of §4.3 is designed to survive.
        """
        self._partitioned.add(frozenset((id(a), id(b))))

    def heal(self, a: Process, b: Process) -> None:
        """Restore communication after :meth:`partition`."""
        self._partitioned.discard(frozenset((id(a), id(b))))

    def is_partitioned(self, a: Process, b: Process) -> bool:
        return frozenset((id(a), id(b))) in self._partitioned

    def connect(self, a: Process, b: Process, latency: float = 0.001) -> None:
        """Create a bidirectional link between ``a`` and ``b``."""
        if latency < 0:
            raise SimulationError(f"negative latency {latency}")
        self._links[(id(a), id(b))] = Link(a, b, latency)
        self._links[(id(b), id(a))] = Link(b, a, latency)

    def disconnect(self, a: Process, b: Process) -> None:
        """Remove the link between ``a`` and ``b`` (both directions).

        Used by the failure-injection tests to simulate partitions; sends
        over a missing link raise unless a default latency allows lazy
        reconnection, so partitioned experiments must also disable that.
        """
        self._links.pop((id(a), id(b)), None)
        self._links.pop((id(b), id(a)), None)

    def link(self, src: Process, dst: Process) -> Optional[Link]:
        """Return the directed link from ``src`` to ``dst`` if present."""
        return self._links.get((id(src), id(dst)))

    def send(self, src: Process, dst: Process, message: Any) -> None:
        """Deliver ``message`` from ``src`` to ``dst`` after link latency.

        Delivery invokes ``dst.receive(message, src)`` as a scheduled
        simulator event.  Per-link FIFO order follows from the kernel's
        deterministic tie-breaking and the fixed per-link latency.
        """
        if frozenset((id(src), id(dst))) in self._partitioned:
            self.stats.dropped_messages += 1
            return
        link = self._links.get((id(src), id(dst)))
        if link is None:
            if self.default_latency is None:
                raise SimulationError(
                    f"no link from {src.name} to {dst.name} and no default latency"
                )
            self.connect(src, dst, self.default_latency)
            link = self._links[(id(src), id(dst))]
        size = self.sizer(message)
        link.messages += 1
        link.bytes += size
        self.stats.record(link, size)
        self.sim.schedule(link.latency, dst.receive, message, src)
