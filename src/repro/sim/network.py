"""Simulated network connecting processes.

The network delivers messages between :class:`~repro.sim.kernel.Process`
instances with a per-link latency and accounts traffic (message and byte
counts) per link and per process.  Byte sizes come from a pluggable sizer
so experiments can model the paper's observation that weakened events are
smaller than full event objects.

Only point-to-point links exist: the paper's overlay is a tree of brokers,
and publishers/subscribers each attach to a single broker.

Fault injection: a seeded :class:`FaultPlan` describes per-link loss,
duplication, and latency jitter inside scheduled fault windows, plus
broker crash/restart schedules gated by ``Process.crashed``.  Everything
the plan does is driven by one seeded RNG, so a chaos run is exactly as
reproducible as a clean one.
"""

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.obs.tracing import NETWORK_STAGE, EventTracer
from repro.sim.kernel import Process, SimulationError, Simulator


def _default_sizer(message: Any) -> int:
    """Crude default message size model: repr length in bytes."""
    return max(16, len(repr(message)))


class Link:
    """A directed link between two processes with fixed latency."""

    __slots__ = (
        "src",
        "dst",
        "latency",
        "messages",
        "bytes",
        "dropped_messages",
        "dropped_bytes",
        "duplicated_messages",
    )

    def __init__(self, src: Process, dst: Process, latency: float):
        self.src = src
        self.dst = dst
        self.latency = latency
        self.messages = 0
        self.bytes = 0
        self.dropped_messages = 0
        self.dropped_bytes = 0
        self.duplicated_messages = 0

    def __repr__(self) -> str:
        return (
            f"Link({self.src.name} -> {self.dst.name}, latency={self.latency}, "
            f"messages={self.messages})"
        )


class NetworkStats:
    """Aggregate traffic counters for a whole network."""

    def __init__(self) -> None:
        self.total_messages = 0
        self.total_bytes = 0
        self.dropped_messages = 0
        self.dropped_bytes = 0
        self.duplicated_messages = 0
        self.duplicated_bytes = 0
        self.messages_by_process: Dict[str, int] = {}
        #: Message copies currently scheduled but not yet delivered — the
        #: wire-occupancy gauge the flow-control experiments bound.
        self.in_flight = 0
        #: Peak of ``in_flight`` over the run.
        self.peak_in_flight = 0

    def record_scheduled(self) -> None:
        """One wire copy entered flight."""
        self.in_flight += 1
        if self.in_flight > self.peak_in_flight:
            self.peak_in_flight = self.in_flight

    def record_arrival(self) -> None:
        """One wire copy left flight (delivered or lost with a crash)."""
        self.in_flight -= 1

    def record(self, link: Link, size: int) -> None:
        self.total_messages += 1
        self.total_bytes += size
        self.messages_by_process[link.dst.name] = (
            self.messages_by_process.get(link.dst.name, 0) + 1
        )

    def record_drop(self, link: Optional[Link], size: int) -> None:
        """One message lost (partition, fault-window loss, crashed peer)."""
        self.dropped_messages += 1
        self.dropped_bytes += size
        if link is not None:
            link.dropped_messages += 1
            link.dropped_bytes += size

    def record_duplicate(self, link: Optional[Link], size: int) -> None:
        """One extra wire copy injected by a duplication fault."""
        self.duplicated_messages += 1
        self.duplicated_bytes += size
        if link is not None:
            link.duplicated_messages += 1

    def __repr__(self) -> str:
        return f"NetworkStats(messages={self.total_messages}, bytes={self.total_bytes})"


#: Safety cap on the geometric duplication roll (a 100% duplication rate
#: must not loop forever).
MAX_DUPLICATES = 3


@dataclass(frozen=True)
class FaultWindow:
    """Link-level faults active during ``[start, end)``.

    ``loss``/``duplicate`` are per-send probabilities; ``jitter`` adds a
    uniform ``[0, jitter]`` extra latency to each delivered copy (which
    deliberately breaks per-link FIFO — the reorderings the sequence-
    numbered control channel exists to absorb).  ``links`` restricts the
    window to specific unordered process pairs; ``None`` hits every link.
    """

    start: float
    end: float
    loss: float = 0.0
    duplicate: float = 0.0
    jitter: float = 0.0
    links: Optional[FrozenSet[FrozenSet[int]]] = None

    def applies(self, now: float, src: Process, dst: Process) -> bool:
        if not (self.start <= now < self.end):
            return False
        if self.links is None:
            return True
        return frozenset((id(src), id(dst))) in self.links


@dataclass(frozen=True)
class CrashWindow:
    """A scheduled fail-stop: ``process`` is down during ``[at, until)``.

    ``until is None`` means the process never restarts.
    """

    process: Process
    at: float
    until: Optional[float]

    def active(self, now: float) -> bool:
        return self.at <= now and (self.until is None or now < self.until)


class FaultPlan:
    """A seeded schedule of link faults and process crashes.

    Build the plan, then hand it to :meth:`Network.install_faults` —
    crashes are scheduled on the simulator, link faults are rolled at
    send time from the plan's private RNG.  Two runs with the same seed
    and the same send sequence inject byte-identical faults.
    """

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)
        self.windows: List[FaultWindow] = []
        self.crashes: List[CrashWindow] = []

    def add_window(
        self,
        start: float,
        end: float,
        loss: float = 0.0,
        duplicate: float = 0.0,
        jitter: float = 0.0,
        links: Optional[Iterable[Tuple[Process, Process]]] = None,
    ) -> FaultWindow:
        """Register a fault window; returns it for introspection."""
        if end <= start:
            raise SimulationError(f"empty fault window [{start}, {end})")
        for name, value in (("loss", loss), ("duplicate", duplicate)):
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name} must be a probability, got {value}")
        if jitter < 0:
            raise SimulationError(f"negative jitter {jitter}")
        link_set = None
        if links is not None:
            link_set = frozenset(frozenset((id(a), id(b))) for a, b in links)
        window = FaultWindow(start, end, loss, duplicate, jitter, link_set)
        self.windows.append(window)
        return window

    def add_crash(
        self, process: Process, at: float, duration: Optional[float] = None
    ) -> CrashWindow:
        """Schedule a fail-stop at ``at``; restart after ``duration``
        (``None`` = the process stays down forever)."""
        if duration is not None and duration <= 0:
            raise SimulationError(f"crash duration must be positive, got {duration}")
        until = None if duration is None else at + duration
        crash = CrashWindow(process, at, until)
        self.crashes.append(crash)
        return crash

    def in_fault_window(self, now: float) -> bool:
        """True while any link fault or crash is active — the boundary of
        the chaos gate's "published outside a fault window"."""
        return any(w.start <= now < w.end for w in self.windows) or any(
            c.active(now) for c in self.crashes
        )

    def roll(
        self, now: float, src: Process, dst: Process
    ) -> Optional[Tuple[bool, Tuple[float, ...]]]:
        """Roll the fate of one send: ``None`` when no window applies,
        else ``(dropped, per-copy extra latencies)`` (first copy is the
        original; additional entries are duplicates)."""
        active = [w for w in self.windows if w.applies(now, src, dst)]
        if not active:
            return None
        survive = 1.0
        duplicate = 0.0
        jitter = 0.0
        for window in active:
            survive *= 1.0 - window.loss
            duplicate = max(duplicate, window.duplicate)
            jitter = max(jitter, window.jitter)
        if survive < 1.0 and self.rng.random() >= survive:
            return (True, ())
        delays = [self.rng.uniform(0.0, jitter) if jitter else 0.0]
        while (
            duplicate
            and len(delays) <= MAX_DUPLICATES
            and self.rng.random() < duplicate
        ):
            delays.append(self.rng.uniform(0.0, jitter) if jitter else 0.0)
        return (False, tuple(delays))


class Network:
    """Message fabric between simulated processes.

    Links must be registered with :meth:`connect` before :meth:`send` is
    used between a pair of processes; this mirrors the paper's overlay
    where every process talks only to its hierarchy neighbours.  A default
    latency can be supplied for convenience, in which case unknown pairs
    are connected lazily.

    Process names must be unique per network: the per-process traffic
    counters are keyed by name, and two processes sharing one would merge
    their rows silently.  :meth:`connect` (and the lazy path) enforce it.
    """

    def __init__(
        self,
        sim: Simulator,
        default_latency: Optional[float] = None,
        sizer: Callable[[Any], int] = _default_sizer,
        faults: Optional[FaultPlan] = None,
        tracer: Optional[EventTracer] = None,
    ):
        self.sim = sim
        self.default_latency = default_latency
        self.sizer = sizer
        self.stats = NetworkStats()
        self.faults = faults
        #: Causal span tracer: wire-level drop/dup spans when enabled.
        self.tracer = tracer if tracer is not None else EventTracer(enabled=False)
        self._links: Dict[Tuple[int, int], Link] = {}
        self._partitioned: set = set()
        self._disconnected: set = set()
        self._names: Dict[str, int] = {}

    def install_faults(self, plan: FaultPlan) -> None:
        """Activate a fault plan: link faults apply from now on, crashes
        and restarts are scheduled on the simulator."""
        self.faults = plan
        for crash in plan.crashes:
            self.sim.schedule_at(crash.at, crash.process.crash)
            if crash.until is not None:
                self.sim.schedule_at(crash.until, crash.process.restart)

    def partition(self, a: Process, b: Process) -> None:
        """Cut communication between ``a`` and ``b`` (both directions).

        Unlike :meth:`disconnect`, sends over a partitioned pair are
        *silently dropped* (counted in ``stats.dropped_messages`` /
        ``dropped_bytes`` and on the link) — the behaviour of a real
        network partition, and what the TTL soft state of §4.3 is
        designed to survive.
        """
        self._partitioned.add(frozenset((id(a), id(b))))

    def heal(self, a: Process, b: Process) -> None:
        """Restore communication after :meth:`partition`."""
        self._partitioned.discard(frozenset((id(a), id(b))))

    def is_partitioned(self, a: Process, b: Process) -> bool:
        return frozenset((id(a), id(b))) in self._partitioned

    def _register_name(self, process: Process) -> None:
        known = self._names.get(process.name)
        if known is None:
            self._names[process.name] = id(process)
        elif known != id(process):
            raise SimulationError(
                f"duplicate process name {process.name!r} on this network; "
                f"per-process traffic accounting is keyed by name"
            )

    def forget(self, process: Process) -> None:
        """Retire a process object that is gone for good.

        Releases its name registration and removes its links, so a new
        incarnation of the same logical participant — a fresh object
        carrying the same stable name — can attach.  Durable broker
        state (offline flags, buffered events) is keyed by name, not by
        object, so it survives the swap and replays to the newcomer.
        """
        if self._names.get(process.name) == id(process):
            del self._names[process.name]
        dead = id(process)
        for key in [k for k in self._links if dead in k]:
            del self._links[key]
        self._partitioned = {p for p in self._partitioned if dead not in p}
        self._disconnected = {p for p in self._disconnected if dead not in p}

    def connect(self, a: Process, b: Process, latency: float = 0.001) -> None:
        """Create a bidirectional link between ``a`` and ``b``."""
        if latency < 0:
            raise SimulationError(f"negative latency {latency}")
        self._register_name(a)
        self._register_name(b)
        self._disconnected.discard(frozenset((id(a), id(b))))
        self._links[(id(a), id(b))] = Link(a, b, latency)
        self._links[(id(b), id(a))] = Link(b, a, latency)

    def disconnect(self, a: Process, b: Process) -> None:
        """Remove the link between ``a`` and ``b`` (both directions).

        The pair is tombstoned: a later :meth:`send` between the two
        raises even when a default latency is configured (lazy
        reconnection used to silently undo the disconnect — a documented
        footgun, now fixed).  An explicit :meth:`connect` re-links.
        """
        self._links.pop((id(a), id(b)), None)
        self._links.pop((id(b), id(a)), None)
        self._disconnected.add(frozenset((id(a), id(b))))

    def link(self, src: Process, dst: Process) -> Optional[Link]:
        """Return the directed link from ``src`` to ``dst`` if present."""
        return self._links.get((id(src), id(dst)))

    def send(self, src: Process, dst: Process, message: Any) -> None:
        """Deliver ``message`` from ``src`` to ``dst`` after link latency.

        Delivery invokes ``dst.receive(message, src)`` as a scheduled
        simulator event.  Per-link FIFO order follows from the kernel's
        deterministic tie-breaking and the fixed per-link latency —
        unless an active fault window adds jitter, in which case copies
        may reorder (that is the point).
        """
        pair = frozenset((id(src), id(dst)))
        if pair in self._disconnected:
            raise SimulationError(
                f"link between {src.name} and {dst.name} was disconnected"
            )
        link = self._links.get((id(src), id(dst)))
        size = self.sizer(message)
        if pair in self._partitioned or src.crashed or dst.crashed:
            self.stats.record_drop(link, size)
            if self.tracer.enabled:
                if pair in self._partitioned:
                    reason = "partition"
                elif src.crashed:
                    reason = "src-crashed"
                else:
                    reason = "dst-crashed"
                self._trace_wire("drop", src, dst, message, reason)
            return
        if link is None:
            if self.default_latency is None:
                raise SimulationError(
                    f"no link from {src.name} to {dst.name} and no default latency"
                )
            self.connect(src, dst, self.default_latency)
            link = self._links[(id(src), id(dst))]
        outcome = (
            self.faults.roll(self.sim.now, src, dst)
            if self.faults is not None
            else None
        )
        if outcome is not None and outcome[0]:
            self.stats.record_drop(link, size)
            if self.tracer.enabled:
                self._trace_wire("drop", src, dst, message, "fault-loss")
            return
        delays = outcome[1] if outcome is not None else (0.0,)
        link.messages += 1
        link.bytes += size
        self.stats.record(link, size)
        for extra in delays[1:]:
            self.stats.record_duplicate(link, size)
            if self.tracer.enabled:
                self._trace_wire("dup", src, dst, message, "fault-duplicate")
        for extra in delays:
            self.stats.record_scheduled()
            self.sim.schedule(link.latency + extra, self._deliver, link, message)

    def _deliver(self, link: Link, message: Any) -> None:
        """Delivery-time crash gate: a copy in flight when the receiver
        fails is lost with it (and accounted as dropped)."""
        self.stats.record_arrival()
        if link.dst.crashed:
            self.stats.record_drop(link, self.sizer(message))
            if self.tracer.enabled:
                self._trace_wire(
                    "drop", link.src, link.dst, message, "crashed-in-flight"
                )
            return
        link.dst.receive(message, link.src)

    def _trace_wire(
        self, kind: str, src: Process, dst: Process, message: Any, reason: str
    ) -> None:
        """Record a wire-level span (drop or duplicate) for one send.

        Event payloads (anything carrying an envelope, or a batch of
        them) get one span per event id so traces can explain a missing
        or repeated delivery; control payloads get a single anonymous
        span.  Duck-typed so the sim layer stays free of overlay imports.
        """
        node = f"{src.name}->{dst.name}"
        details = (("reason", reason), ("payload", type(message).__name__))
        envelope = getattr(message, "envelope", None)
        if envelope is not None:
            ids = (envelope.event_id,)
        else:
            publishes = getattr(message, "publishes", None)
            if publishes is not None:
                ids = tuple(p.envelope.event_id for p in publishes)
            else:
                ids = ()
        if ids:
            for event_id in ids:
                self.tracer.span(
                    self.sim.now, kind, node, NETWORK_STAGE,
                    trace_id=event_id, details=details,
                )
        else:
            self.tracer.span(self.sim.now, kind, node, NETWORK_STAGE, details=details)
