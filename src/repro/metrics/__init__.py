"""Evaluation metrics of Section 5.1: LC, RLC, and MR.

- :mod:`~repro.metrics.counters` — per-process counters maintained by
  broker nodes and subscriber runtimes during a run;
- :mod:`~repro.metrics.load` — Load Complexity and Relative Load
  Complexity;
- :mod:`~repro.metrics.matching` — Matching Rate;
- :mod:`~repro.metrics.latency` — publish-to-delivery latency summaries;
- :mod:`~repro.metrics.report` — plain-text table/series renderers used
  by the experiment harness to print the paper's rows.
"""

from repro.metrics.counters import NodeCounters
from repro.metrics.latency import LatencySummary, combined, percentile, summarize
from repro.metrics.load import load_complexity, relative_load_complexity
from repro.metrics.matching import matching_rate
from repro.metrics.report import render_series, render_table

__all__ = [
    "LatencySummary",
    "NodeCounters",
    "combined",
    "load_complexity",
    "matching_rate",
    "percentile",
    "relative_load_complexity",
    "render_series",
    "render_table",
    "summarize",
]
