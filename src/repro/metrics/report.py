"""Plain-text renderers for experiment output.

The benchmark harness prints the same rows/series the paper reports; a
couple of small formatters keep that output consistent everywhere.
:func:`render_cache_summary` surfaces the routing-decision cache and
batched-dispatch counters the hot-path optimisations add.
"""

from typing import Any, Iterable, List, Sequence, Tuple

from repro.metrics.counters import NodeCounters


def format_number(value: Any) -> str:
    """Compact scientific-ish formatting matching the paper's table style."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 0.01 or magnitude == 0:
        return f"{value:.4g}"
    return f"{value:.2e}"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned plain-text table."""
    formatted_rows: List[List[str]] = [
        [format_number(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in formatted_rows)
    return "\n".join(out)


def aggregate_cache_counters(
    counters: Iterable[NodeCounters],
) -> dict:
    """Fold per-node cache/batch counters into system-wide totals."""
    totals = {
        "hits": 0,
        "misses": 0,
        "invalidations": 0,
        "batches": 0,
        "batched_events": 0,
        "max_batch_size": 0,
    }
    for counter in counters:
        totals["hits"] += counter.cache.hits
        totals["misses"] += counter.cache.misses
        totals["invalidations"] += counter.cache.invalidations
        totals["batches"] += counter.batches
        totals["batched_events"] += counter.batched_events
        totals["max_batch_size"] = max(
            totals["max_batch_size"], counter.max_batch_size
        )
    lookups = totals["hits"] + totals["misses"]
    totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
    totals["avg_batch_size"] = (
        totals["batched_events"] / totals["batches"] if totals["batches"] else 0.0
    )
    return totals


def render_cache_summary(
    named_counters: Iterable[Tuple[str, NodeCounters]],
    title: str = "Routing cache / batched dispatch",
) -> str:
    """Per-location cache and batch counters, plus a totals row."""
    rows: List[List[Any]] = []
    all_counters: List[NodeCounters] = []
    for name, counter in named_counters:
        all_counters.append(counter)
        rows.append(
            [
                name,
                counter.cache.hits,
                counter.cache.misses,
                counter.cache.hit_rate(),
                counter.cache.invalidations,
                counter.batches,
                counter.average_batch_size(),
                counter.max_batch_size,
            ]
        )
    totals = aggregate_cache_counters(all_counters)
    rows.append(
        [
            "TOTAL",
            totals["hits"],
            totals["misses"],
            totals["hit_rate"],
            totals["invalidations"],
            totals["batches"],
            totals["avg_batch_size"],
            totals["max_batch_size"],
        ]
    )
    table = render_table(
        [
            "Location",
            "Hits",
            "Misses",
            "Hit rate",
            "Invalidations",
            "Batches",
            "Avg batch",
            "Max batch",
        ],
        rows,
    )
    return f"{title}\n{table}"


def aggregate_matching_counters(
    counters: Iterable[NodeCounters],
) -> dict:
    """Fold per-node compiled-engine counters into system-wide totals."""
    totals = {
        "events_received": 0,
        "events_matched_batch": 0,
        "compile_rebuilds": 0,
        "residual_evaluations": 0,
        "filter_evaluations": 0,
    }
    for counter in counters:
        totals["events_received"] += counter.events_received
        totals["events_matched_batch"] += counter.events_matched_batch
        totals["compile_rebuilds"] += counter.compile_rebuilds
        totals["residual_evaluations"] += counter.residual_evaluations
        totals["filter_evaluations"] += counter.filter_evaluations
    totals["batch_match_rate"] = (
        totals["events_matched_batch"] / totals["events_received"]
        if totals["events_received"]
        else 0.0
    )
    return totals


def render_matching_summary(
    named_counters: Iterable[Tuple[str, NodeCounters]],
    title: str = "Compiled matching engine",
) -> str:
    """Per-location compiled-engine counters, plus a totals row.

    ``Batched`` is how many events went through a single whole-batch
    engine pass, ``Rebuilds`` the dirty-attribute recompiles the
    control-plane churn forced, and ``Residual`` the non-indexable
    predicates that had to run interpretively on surviving candidates.
    """
    rows: List[List[Any]] = []
    all_counters: List[NodeCounters] = []
    for name, counter in named_counters:
        all_counters.append(counter)
        rows.append(
            [
                name,
                counter.events_received,
                counter.events_matched_batch,
                counter.compile_rebuilds,
                counter.residual_evaluations,
                counter.filter_evaluations,
            ]
        )
    totals = aggregate_matching_counters(all_counters)
    rows.append(
        [
            "TOTAL",
            totals["events_received"],
            totals["events_matched_batch"],
            totals["compile_rebuilds"],
            totals["residual_evaluations"],
            totals["filter_evaluations"],
        ]
    )
    table = render_table(
        ["Location", "Received", "Batched", "Rebuilds", "Residual", "Probes"],
        rows,
    )
    return f"{title}\n{table}"


def aggregate_aggregation_counters(
    counters: Iterable[NodeCounters],
) -> dict:
    """Fold per-node covering-aggregation counters into totals."""
    totals = {
        "req_inserts_sent": 0,
        "withdrawals_sent": 0,
        "propagations_suppressed": 0,
        "uncover_repropagations": 0,
        "propagated_filters": 0,
    }
    for counter in counters:
        totals["req_inserts_sent"] += counter.req_inserts_sent
        totals["withdrawals_sent"] += counter.withdrawals_sent
        totals["propagations_suppressed"] += counter.propagations_suppressed
        totals["uncover_repropagations"] += counter.uncover_repropagations
        totals["propagated_filters"] += counter.propagated_filters
    attempts = totals["req_inserts_sent"] + totals["propagations_suppressed"]
    totals["suppression_rate"] = (
        totals["propagations_suppressed"] / attempts if attempts else 0.0
    )
    return totals


def render_aggregation_summary(
    named_counters: Iterable[Tuple[str, NodeCounters]],
    title: str = "Covering aggregation (control plane)",
) -> str:
    """Per-location covering-aggregation counters, plus a totals row."""
    rows: List[List[Any]] = []
    all_counters: List[NodeCounters] = []
    for name, counter in named_counters:
        all_counters.append(counter)
        rows.append(
            [
                name,
                counter.filters_held,
                counter.propagated_filters,
                counter.req_inserts_sent,
                counter.propagations_suppressed,
                counter.withdrawals_sent,
                counter.uncover_repropagations,
            ]
        )
    totals = aggregate_aggregation_counters(all_counters)
    rows.append(
        [
            "TOTAL",
            sum(c.filters_held for c in all_counters),
            totals["propagated_filters"],
            totals["req_inserts_sent"],
            totals["propagations_suppressed"],
            totals["withdrawals_sent"],
            totals["uncover_repropagations"],
        ]
    )
    table = render_table(
        [
            "Location",
            "Held",
            "Propagated",
            "ReqInsert",
            "Suppressed",
            "Withdrawn",
            "Uncovered",
        ],
        rows,
    )
    return f"{title}\n{table}"


def aggregate_reliability_counters(
    counters: Iterable[NodeCounters],
) -> dict:
    """Fold per-node reliable-channel counters into totals."""
    totals = {"control_retransmits": 0, "control_dups_discarded": 0}
    for counter in counters:
        totals["control_retransmits"] += counter.control_retransmits
        totals["control_dups_discarded"] += counter.control_dups_discarded
    return totals


def render_reliability_summary(
    named_counters: Iterable[Tuple[str, NodeCounters]],
    title: str = "Reliable control channel",
) -> str:
    """Per-location retransmit / duplicate-discard counters + totals."""
    rows: List[List[Any]] = []
    all_counters: List[NodeCounters] = []
    for name, counter in named_counters:
        all_counters.append(counter)
        rows.append(
            [name, counter.control_retransmits, counter.control_dups_discarded]
        )
    totals = aggregate_reliability_counters(all_counters)
    rows.append(
        ["TOTAL", totals["control_retransmits"], totals["control_dups_discarded"]]
    )
    table = render_table(["Location", "Retransmits", "Dup frames dropped"], rows)
    return f"{title}\n{table}"


def aggregate_flow_counters(
    counters: Iterable[NodeCounters],
) -> dict:
    """Fold per-node flow-control counters into system-wide totals."""
    totals = {
        "events_shed": 0,
        "sheds_by_reason": {},
        "credits_granted": 0,
        "credit_stalls": 0,
        "rate_limited": 0,
        "overload_transitions": 0,
    }
    for counter in counters:
        totals["events_shed"] += counter.events_shed
        for reason, count in counter.sheds_by_reason.items():
            totals["sheds_by_reason"][reason] = (
                totals["sheds_by_reason"].get(reason, 0) + count
            )
        totals["credits_granted"] += counter.credits_granted
        totals["credit_stalls"] += counter.credit_stalls
        totals["rate_limited"] += counter.rate_limited
        totals["overload_transitions"] += counter.overload_transitions
    return totals


def render_flow_summary(
    named_counters: Iterable[Tuple[str, NodeCounters]],
    title: str = "Flow control / overload protection",
) -> str:
    """Per-location shed/credit/overload counters, plus a totals row.

    The per-reason shed breakdown is appended below the table (reasons
    sorted by name so the output is deterministic)."""
    rows: List[List[Any]] = []
    all_counters: List[NodeCounters] = []
    for name, counter in named_counters:
        all_counters.append(counter)
        rows.append(
            [
                name,
                counter.events_shed,
                counter.credits_granted,
                counter.credit_stalls,
                counter.rate_limited,
                counter.overload_transitions,
            ]
        )
    totals = aggregate_flow_counters(all_counters)
    rows.append(
        [
            "TOTAL",
            totals["events_shed"],
            totals["credits_granted"],
            totals["credit_stalls"],
            totals["rate_limited"],
            totals["overload_transitions"],
        ]
    )
    table = render_table(
        ["Location", "Shed", "Credits", "Stalls", "Rate-limited", "Overloads"],
        rows,
    )
    out = [title, table]
    if totals["sheds_by_reason"]:
        out.append("Sheds by reason:")
        for reason in sorted(totals["sheds_by_reason"]):
            out.append(f"  {reason}: {totals['sheds_by_reason'][reason]}")
    return "\n".join(out)


def render_offline_drop_summary(
    named_counters: Iterable[Tuple[str, NodeCounters]],
    title: str = "Durable offline-buffer drops",
) -> str:
    """Per-subscriber durable-buffer drops, grouped by the home broker
    that shed them.  A durable subscriber that was offline longer than
    its buffer capacity allows shows up here — the explicit, observable
    form of what used to be a silent ``popleft``."""
    rows: List[List[Any]] = []
    total = 0
    for name, counter in named_counters:
        for subscriber in sorted(counter.offline_drops):
            dropped = counter.offline_drops[subscriber]
            rows.append([name, subscriber, dropped])
            total += dropped
    if not rows:
        rows = [["(none)", "-", 0]]
    rows.append(["TOTAL", "", total])
    table = render_table(["Home broker", "Subscriber", "Dropped"], rows)
    return f"{title}\n{table}"


def render_network_summary(stats: Any, title: str = "Network traffic") -> str:
    """Totals from a :class:`~repro.sim.network.NetworkStats`, including
    the loss/duplication columns the fault injector feeds."""
    rows = [
        ["delivered messages", stats.total_messages],
        ["delivered bytes", stats.total_bytes],
        ["dropped messages", stats.dropped_messages],
        ["dropped bytes", stats.dropped_bytes],
        ["duplicated messages", stats.duplicated_messages],
        ["duplicated bytes", stats.duplicated_bytes],
        ["peak in-flight messages", stats.peak_in_flight],
    ]
    table = render_table(["Counter", "Value"], rows)
    return f"{title}\n{table}"


def render_trace_path(tracer: Any, event_id: Tuple[Any, ...]) -> str:
    """Reconstruct and render every delivery path of one event.

    ``tracer`` is an :class:`~repro.obs.tracing.EventTracer`; the output
    is one multi-line listing per subscriber that received (or filtered
    out) the event, publisher-first.
    """
    paths = tracer.reconstruct(event_id)
    if not paths:
        return f"event {event_id[0]}/{event_id[1]}: no delivery spans recorded"
    return "\n".join(path.render() for path in paths)


def render_stage_latency_histograms(
    tracer: Any, title: str = "Per-stage hop latency", buckets: int = 8
) -> str:
    """Histogram of per-hop latencies, grouped by the receiving stage.

    Hop latencies come from reconstructed delivery paths (time between
    consecutive spans of a complete publisher-to-subscriber chain), so
    the histogram reflects what delivered events actually experienced —
    queue/defer time, link latency, and fault-window jitter included.
    """
    by_stage: dict = {}
    for event_id in tracer.event_ids():
        for path in tracer.reconstruct(event_id):
            if not path.complete:
                continue
            for _, stage, latency in path.hop_latencies:
                by_stage.setdefault(stage, []).append(latency)
    out = [title]
    if not by_stage:
        out.append("  (no complete paths recorded)")
        return "\n".join(out)
    for stage in sorted(by_stage, reverse=True):
        values = sorted(by_stage[stage])
        lo, hi = values[0], values[-1]
        mean = sum(values) / len(values)
        out.append(
            f"  stage {stage}: n={len(values)} min={format_number(lo)} "
            f"mean={format_number(mean)} max={format_number(hi)}"
        )
        span = (hi - lo) or 1.0
        counts = [0] * buckets
        for value in values:
            index = min(buckets - 1, int((value - lo) / span * buckets))
            counts[index] += 1
        top = max(counts)
        for bucket, count in enumerate(counts):
            left = lo + span * bucket / buckets
            right = lo + span * (bucket + 1) / buckets
            bar = "#" * (round(count / top * 40) if top else 0)
            out.append(
                f"    [{format_number(left)}, {format_number(right)}) "
                f"{count:>6} {bar}"
            )
    return "\n".join(out)


def render_hottest_brokers(
    tracer: Any, top: int = 10, title: str = "Hottest brokers"
) -> str:
    """Top-N brokers by hop-span count (events actually processed),
    with their cache hit counts and total fan-out alongside."""
    per_node: dict = {}
    for span in tracer.kinds("hop"):
        entry = per_node.get(span.node)
        if entry is None:
            entry = per_node[span.node] = {
                "stage": span.stage, "hops": 0, "hits": 0, "fanout": 0,
            }
        entry["hops"] += 1
        if span.detail("cache") == "hit":
            entry["hits"] += 1
        entry["fanout"] += span.detail("fanout", 0)
    ranked = sorted(
        per_node.items(), key=lambda item: (-item[1]["hops"], item[0])
    )[:top]
    rows = [
        [name, entry["stage"], entry["hops"], entry["hits"], entry["fanout"]]
        for name, entry in ranked
    ]
    if not rows:
        rows = [["(none)", "-", 0, 0, 0]]
    table = render_table(["Broker", "Stage", "Events", "Cache hits", "Fan-out"], rows)
    return f"{title}\n{table}"


def render_fault_alignment(
    tracer: Any,
    windows: Sequence[Tuple[float, float, str]],
    title: str = "Fault windows vs. loss/retransmit spans",
) -> str:
    """Align fault windows against the drop/dup/retransmit spans they
    caused: for each window, the control- and wire-level span counts
    inside it, plus the counts outside any window (which should stay
    near zero on a healthy run).

    ``windows`` is ``(start, end, label)`` triples in simulated time.
    """
    disturbance = tracer.kinds("drop", "dup", "retransmit", "channel-reset")
    rows: List[List[Any]] = []
    claimed = [False] * len(disturbance)
    for start, end, label in windows:
        counts = {"drop": 0, "dup": 0, "retransmit": 0, "channel-reset": 0}
        for index, span in enumerate(disturbance):
            if start <= span.time < end:
                counts[span.kind] += 1
                claimed[index] = True
        rows.append(
            [
                f"[{format_number(start)}, {format_number(end)}) {label}",
                counts["drop"],
                counts["dup"],
                counts["retransmit"],
                counts["channel-reset"],
            ]
        )
    outside = {"drop": 0, "dup": 0, "retransmit": 0, "channel-reset": 0}
    for index, span in enumerate(disturbance):
        if not claimed[index]:
            outside[span.kind] += 1
    rows.append(
        [
            "outside all windows",
            outside["drop"],
            outside["dup"],
            outside["retransmit"],
            outside["channel-reset"],
        ]
    )
    table = render_table(
        ["Window", "Drops", "Dups", "Retransmits", "Channel resets"], rows
    )
    return f"{title}\n{table}"


def render_series(
    title: str, series: Sequence[Tuple[str, Sequence[float]]], width: int = 60
) -> str:
    """Render named series as compact ASCII sparklines plus summary stats.

    A stand-in for the paper's scatter plots (e.g. Figure 7) on a text
    terminal: each series shows min/mean/max and a downsampled bar strip.
    """
    blocks = " .:-=+*#%@"
    out = [title]
    for name, values in series:
        values = list(values)
        if not values:
            out.append(f"  {name}: (empty)")
            continue
        lo, hi = min(values), max(values)
        mean = sum(values) / len(values)
        if len(values) > width:
            stride = len(values) / width
            sampled = [values[int(i * stride)] for i in range(width)]
        else:
            sampled = values
        span = (hi - lo) or 1.0
        strip = "".join(
            blocks[min(len(blocks) - 1, int((v - lo) / span * (len(blocks) - 1)))]
            for v in sampled
        )
        out.append(
            f"  {name}: n={len(values)} min={format_number(lo)} "
            f"mean={format_number(mean)} max={format_number(hi)}"
        )
        out.append(f"    [{strip}]")
    return "\n".join(out)


def _stream_value(counter: Any, name: str) -> int:
    """Read one flow counter from a NodeCounters *or* a snapshot dict.

    Tolerant by construction: brokers that predate the streams subsystem
    (older multiprocess worker snapshots) or never installed a flow
    simply report 0 — no KeyError on absent flow counters.
    """
    if isinstance(counter, dict):
        return counter.get(name, 0)
    return getattr(counter, name, 0)


def aggregate_stream_counters(counters: Iterable[Any]) -> dict:
    """Fold per-node information-flow counters into system-wide totals."""
    totals = {
        "flows_installed": 0,
        "flow_events_in": 0,
        "flow_events_out": 0,
        "flow_windows_dropped": 0,
        "flow_collapsed_events": 0,
        "events_published": 0,
    }
    for counter in counters:
        for name in totals:
            totals[name] += _stream_value(counter, name)
    return totals


def render_stream_summary(
    named_counters: Iterable[Tuple[str, Any]],
    title: str = "Information flows",
) -> str:
    """Per-broker flow counters plus a totals row.

    Rows for brokers with zero flow activity are elided (most brokers
    host no flows); the totals row always renders, so a system with no
    flows at all still produces a well-formed (all-zero) table.
    """
    headers = [
        title,
        "flows",
        "events in",
        "derived out",
        "windows dropped",
        "collapsed",
        "published",
    ]
    names = (
        "flows_installed",
        "flow_events_in",
        "flow_events_out",
        "flow_windows_dropped",
        "flow_collapsed_events",
        "events_published",
    )
    rows: List[List[Any]] = []
    all_counters: List[Any] = []
    for name, counter in named_counters:
        all_counters.append(counter)
        values = [_stream_value(counter, field) for field in names]
        if any(values):
            rows.append([name] + values)
    totals = aggregate_stream_counters(all_counters)
    rows.append(["TOTAL"] + [totals[field] for field in names])
    return render_table(headers, rows)
