"""Plain-text renderers for experiment output.

The benchmark harness prints the same rows/series the paper reports; a
couple of small formatters keep that output consistent everywhere.
:func:`render_cache_summary` surfaces the routing-decision cache and
batched-dispatch counters the hot-path optimisations add.
"""

from typing import Any, Iterable, List, Sequence, Tuple

from repro.metrics.counters import NodeCounters


def format_number(value: Any) -> str:
    """Compact scientific-ish formatting matching the paper's table style."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 0.01 or magnitude == 0:
        return f"{value:.4g}"
    return f"{value:.2e}"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned plain-text table."""
    formatted_rows: List[List[str]] = [
        [format_number(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in formatted_rows)
    return "\n".join(out)


def aggregate_cache_counters(
    counters: Iterable[NodeCounters],
) -> dict:
    """Fold per-node cache/batch counters into system-wide totals."""
    totals = {
        "hits": 0,
        "misses": 0,
        "invalidations": 0,
        "batches": 0,
        "batched_events": 0,
        "max_batch_size": 0,
    }
    for counter in counters:
        totals["hits"] += counter.cache.hits
        totals["misses"] += counter.cache.misses
        totals["invalidations"] += counter.cache.invalidations
        totals["batches"] += counter.batches
        totals["batched_events"] += counter.batched_events
        totals["max_batch_size"] = max(
            totals["max_batch_size"], counter.max_batch_size
        )
    lookups = totals["hits"] + totals["misses"]
    totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
    totals["avg_batch_size"] = (
        totals["batched_events"] / totals["batches"] if totals["batches"] else 0.0
    )
    return totals


def render_cache_summary(
    named_counters: Iterable[Tuple[str, NodeCounters]],
    title: str = "Routing cache / batched dispatch",
) -> str:
    """Per-location cache and batch counters, plus a totals row."""
    rows: List[List[Any]] = []
    all_counters: List[NodeCounters] = []
    for name, counter in named_counters:
        all_counters.append(counter)
        rows.append(
            [
                name,
                counter.cache.hits,
                counter.cache.misses,
                counter.cache.hit_rate(),
                counter.cache.invalidations,
                counter.batches,
                counter.average_batch_size(),
                counter.max_batch_size,
            ]
        )
    totals = aggregate_cache_counters(all_counters)
    rows.append(
        [
            "TOTAL",
            totals["hits"],
            totals["misses"],
            totals["hit_rate"],
            totals["invalidations"],
            totals["batches"],
            totals["avg_batch_size"],
            totals["max_batch_size"],
        ]
    )
    table = render_table(
        [
            "Location",
            "Hits",
            "Misses",
            "Hit rate",
            "Invalidations",
            "Batches",
            "Avg batch",
            "Max batch",
        ],
        rows,
    )
    return f"{title}\n{table}"


def aggregate_aggregation_counters(
    counters: Iterable[NodeCounters],
) -> dict:
    """Fold per-node covering-aggregation counters into totals."""
    totals = {
        "req_inserts_sent": 0,
        "withdrawals_sent": 0,
        "propagations_suppressed": 0,
        "uncover_repropagations": 0,
        "propagated_filters": 0,
    }
    for counter in counters:
        totals["req_inserts_sent"] += counter.req_inserts_sent
        totals["withdrawals_sent"] += counter.withdrawals_sent
        totals["propagations_suppressed"] += counter.propagations_suppressed
        totals["uncover_repropagations"] += counter.uncover_repropagations
        totals["propagated_filters"] += counter.propagated_filters
    attempts = totals["req_inserts_sent"] + totals["propagations_suppressed"]
    totals["suppression_rate"] = (
        totals["propagations_suppressed"] / attempts if attempts else 0.0
    )
    return totals


def render_aggregation_summary(
    named_counters: Iterable[Tuple[str, NodeCounters]],
    title: str = "Covering aggregation (control plane)",
) -> str:
    """Per-location covering-aggregation counters, plus a totals row."""
    rows: List[List[Any]] = []
    all_counters: List[NodeCounters] = []
    for name, counter in named_counters:
        all_counters.append(counter)
        rows.append(
            [
                name,
                counter.filters_held,
                counter.propagated_filters,
                counter.req_inserts_sent,
                counter.propagations_suppressed,
                counter.withdrawals_sent,
                counter.uncover_repropagations,
            ]
        )
    totals = aggregate_aggregation_counters(all_counters)
    rows.append(
        [
            "TOTAL",
            sum(c.filters_held for c in all_counters),
            totals["propagated_filters"],
            totals["req_inserts_sent"],
            totals["propagations_suppressed"],
            totals["withdrawals_sent"],
            totals["uncover_repropagations"],
        ]
    )
    table = render_table(
        [
            "Location",
            "Held",
            "Propagated",
            "ReqInsert",
            "Suppressed",
            "Withdrawn",
            "Uncovered",
        ],
        rows,
    )
    return f"{title}\n{table}"


def aggregate_reliability_counters(
    counters: Iterable[NodeCounters],
) -> dict:
    """Fold per-node reliable-channel counters into totals."""
    totals = {"control_retransmits": 0, "control_dups_discarded": 0}
    for counter in counters:
        totals["control_retransmits"] += counter.control_retransmits
        totals["control_dups_discarded"] += counter.control_dups_discarded
    return totals


def render_reliability_summary(
    named_counters: Iterable[Tuple[str, NodeCounters]],
    title: str = "Reliable control channel",
) -> str:
    """Per-location retransmit / duplicate-discard counters + totals."""
    rows: List[List[Any]] = []
    all_counters: List[NodeCounters] = []
    for name, counter in named_counters:
        all_counters.append(counter)
        rows.append(
            [name, counter.control_retransmits, counter.control_dups_discarded]
        )
    totals = aggregate_reliability_counters(all_counters)
    rows.append(
        ["TOTAL", totals["control_retransmits"], totals["control_dups_discarded"]]
    )
    table = render_table(["Location", "Retransmits", "Dup frames dropped"], rows)
    return f"{title}\n{table}"


def render_network_summary(stats: Any, title: str = "Network traffic") -> str:
    """Totals from a :class:`~repro.sim.network.NetworkStats`, including
    the loss/duplication columns the fault injector feeds."""
    rows = [
        ["delivered messages", stats.total_messages],
        ["delivered bytes", stats.total_bytes],
        ["dropped messages", stats.dropped_messages],
        ["dropped bytes", stats.dropped_bytes],
        ["duplicated messages", stats.duplicated_messages],
        ["duplicated bytes", stats.duplicated_bytes],
    ]
    table = render_table(["Counter", "Value"], rows)
    return f"{title}\n{table}"


def render_series(
    title: str, series: Sequence[Tuple[str, Sequence[float]]], width: int = 60
) -> str:
    """Render named series as compact ASCII sparklines plus summary stats.

    A stand-in for the paper's scatter plots (e.g. Figure 7) on a text
    terminal: each series shows min/mean/max and a downsampled bar strip.
    """
    blocks = " .:-=+*#%@"
    out = [title]
    for name, values in series:
        values = list(values)
        if not values:
            out.append(f"  {name}: (empty)")
            continue
        lo, hi = min(values), max(values)
        mean = sum(values) / len(values)
        if len(values) > width:
            stride = len(values) / width
            sampled = [values[int(i * stride)] for i in range(width)]
        else:
            sampled = values
        span = (hi - lo) or 1.0
        strip = "".join(
            blocks[min(len(blocks) - 1, int((v - lo) / span * (len(blocks) - 1)))]
            for v in sampled
        )
        out.append(
            f"  {name}: n={len(values)} min={format_number(lo)} "
            f"mean={format_number(mean)} max={format_number(hi)}"
        )
        out.append(f"    [{strip}]")
    return "\n".join(out)
