"""Load Complexity and Relative Load Complexity (Section 5.1).

For a filtering node over some time unit::

    LC  = (# of events received) x (# of filters)
    RLC = LC / ((total # of events) x (total # of subscriptions))

A centralized server — which receives every event and holds every
subscription — has ``RLC = 1`` by construction; multi-stage filtering
aims at per-node RLC orders of magnitude below 1 while the *global sum*
of RLCs stays around 1 (work is delegated, not multiplied).
"""

from typing import Iterable

from repro.metrics.counters import NodeCounters


def load_complexity(counters: NodeCounters, filters_held: int = None) -> float:
    """LC of one node: events received times filters held.

    ``filters_held`` overrides the counter gauge when the caller samples
    the table size itself (e.g. at end of run).
    """
    held = counters.filters_held if filters_held is None else filters_held
    return float(counters.events_received) * float(held)


def relative_load_complexity(
    counters: NodeCounters,
    total_events: int,
    total_subscriptions: int,
    filters_held: int = None,
) -> float:
    """RLC of one node w.r.t. system totals.

    Raises ``ValueError`` on zero totals — an experiment that published
    no events or registered no subscriptions has no meaningful RLC.
    """
    if total_events <= 0 or total_subscriptions <= 0:
        raise ValueError(
            f"totals must be positive (events={total_events}, "
            f"subscriptions={total_subscriptions})"
        )
    return load_complexity(counters, filters_held) / (
        float(total_events) * float(total_subscriptions)
    )


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (per-stage averages)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
