"""Per-process counters feeding the LC/RLC/MR metrics.

Every filtering location (broker node or subscriber runtime) owns a
:class:`NodeCounters` and updates it as events flow: the paper's
simulation likewise counts, "at each node, the number of filters, the
number of received events and the number of matched events" (§5.3).
"""

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CacheStats:
    """Routing-decision cache counters for one filtering location.

    Shared by reference between a :class:`NodeCounters` and the node's
    :class:`~repro.filters.engine.CachedMatchEngine` instances, so the
    stats survive compaction rebuilds of the underlying engine.
    """

    #: Match calls answered from the memo (≈ zero constraint probes).
    hits: int = 0
    #: Match calls that ran the full engine probe.
    misses: int = 0
    #: Cache flushes caused by a table mutation (insert/remove/expiry).
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of match calls served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }


@dataclass
class NodeCounters:
    """Counters for one filtering location."""

    #: Events received for filtering ("# of event received" in LC).
    events_received: int = 0
    #: Events that matched at least one local filter.
    events_matched: int = 0
    #: Copies forwarded downstream (fan-out; one event may count many times).
    events_forwarded: int = 0
    #: Events delivered to the application (subscriber runtimes only).
    events_delivered: int = 0
    #: Individual filter evaluations performed.
    filter_evaluations: int = 0
    #: Current number of filters held ("# of filter" in LC); a gauge the
    #: owner refreshes whenever its table changes.
    filters_held: int = 0
    #: Peak of ``filters_held`` over the run.
    max_filters_held: int = 0
    #: Control-plane messages processed (subscriptions, renewals, ...).
    control_messages: int = 0
    #: Routing-decision cache stats (shared with the node's match engines).
    cache: CacheStats = field(default_factory=CacheStats)
    #: Dispatch wakeups that processed at least one event.
    batches: int = 0
    #: Events processed across all batches (= events_received for brokers).
    batched_events: int = 0
    #: Largest run of events processed in a single wakeup.
    max_batch_size: int = 0
    #: ``req-Insert`` control messages sent to the parent.
    req_inserts_sent: int = 0
    #: ``Withdraw`` control messages sent to the parent.
    withdrawals_sent: int = 0
    #: Upward propagations suppressed because a propagated filter
    #: already covered the new weakened filter (covering aggregation).
    propagations_suppressed: int = 0
    #: Covered filters re-propagated when their cover died (uncover).
    uncover_repropagations: int = 0
    #: Current number of filters propagated to the parent (the maximal
    #: set under covering); a gauge like ``filters_held``.
    propagated_filters: int = 0
    #: Reliable-channel frames retransmitted after an ack timeout.
    control_retransmits: int = 0
    #: Duplicate reliable-channel frames discarded on receipt.
    control_dups_discarded: int = 0
    #: Events shed by any bounded queue this node owns (total).
    events_shed: int = 0
    #: ``events_shed`` broken down by reason ("queue-overflow",
    #: "outbound-overflow", "offline-buffer", "peer-reset", ...).
    sheds_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Flow-control credits granted to upstream senders.
    credits_granted: int = 0
    #: Sends that found the link credit window exhausted.
    credit_stalls: int = 0
    #: Publishes refused by the publisher's token-bucket rate limiter.
    rate_limited: int = 0
    #: Overload-detector state transitions (either direction).
    overload_transitions: int = 0
    #: Durable offline-buffer drops per subscriber name.
    offline_drops: Dict[str, int] = field(default_factory=dict)
    #: Events appended to this node's durable event log (new records
    #: only; idempotent re-appends of wire duplicates excluded).
    events_logged: int = 0
    #: Events sent while replaying (catch-up history + recovery replay).
    replay_events_sent: int = 0
    #: Replayed events discarded as already seen (subscriber session
    #: dedup, or a recovering broker's own-log dedup).
    replay_dupes_discarded: int = 0
    #: Live events tapped into in-flight catch-up sessions.
    catchup_taps: int = 0
    #: Catch-up events delivered to the application (subset of
    #: ``events_delivered``; subscriber runtimes only).
    catchup_delivered: int = 0
    #: Credits returned for events a lossy link swallowed (gap-grant).
    credit_gap_grants: int = 0
    #: Events matched through a single ``match_batch`` engine pass
    #: (subset of ``events_received``; compiled-engine brokers only).
    events_matched_batch: int = 0
    #: Dirty-attribute recompiles performed by a compiled match engine.
    compile_rebuilds: int = 0
    #: Residual (non-indexable) predicates evaluated on candidates that
    #: survived the compiled bitmap tiers.
    residual_evaluations: int = 0
    #: Information flows currently installed (gauge; brokers only).
    flows_installed: int = 0
    #: Input events consumed by installed flows (after their filters).
    flow_events_in: int = 0
    #: Derived events republished by installed flows.
    flow_events_out: int = 0
    #: Open windows discarded by a crash (soft-state loss, DESIGN §15).
    flow_windows_dropped: int = 0
    #: Input events absorbed by collapse operators (inputs minus outputs).
    flow_collapsed_events: int = 0
    #: Derived events originated here, in the publisher role (exactly
    #: once, at the deriving broker — never again downstream).
    events_published: int = 0
    #: Wire bytes of every envelope that reached this runtime (the
    #: downlink-bandwidth measure; subscriber runtimes only).
    bytes_received: int = 0

    def on_event(self, matched: bool, forwarded_to: int, evaluations: int) -> None:
        """Record one filtered event."""
        self.events_received += 1
        if matched:
            self.events_matched += 1
        self.events_forwarded += forwarded_to
        self.filter_evaluations += evaluations

    def on_shed(self, reason: str, count: int = 1) -> None:
        """Record ``count`` events shed for ``reason``."""
        self.events_shed += count
        self.sheds_by_reason[reason] = self.sheds_by_reason.get(reason, 0) + count

    def on_batch(self, size: int) -> None:
        """Record one dispatch wakeup processing a run of ``size`` events."""
        self.batches += 1
        self.batched_events += size
        if size > self.max_batch_size:
            self.max_batch_size = size

    def average_batch_size(self) -> float:
        return self.batched_events / self.batches if self.batches else 0.0

    def set_filters_held(self, count: int) -> None:
        self.filters_held = count
        if count > self.max_filters_held:
            self.max_filters_held = count

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy for reports."""
        return {
            "events_received": self.events_received,
            "events_matched": self.events_matched,
            "events_forwarded": self.events_forwarded,
            "events_delivered": self.events_delivered,
            "filter_evaluations": self.filter_evaluations,
            "filters_held": self.filters_held,
            "max_filters_held": self.max_filters_held,
            "control_messages": self.control_messages,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_invalidations": self.cache.invalidations,
            "batches": self.batches,
            "batched_events": self.batched_events,
            "max_batch_size": self.max_batch_size,
            "req_inserts_sent": self.req_inserts_sent,
            "withdrawals_sent": self.withdrawals_sent,
            "propagations_suppressed": self.propagations_suppressed,
            "uncover_repropagations": self.uncover_repropagations,
            "propagated_filters": self.propagated_filters,
            "control_retransmits": self.control_retransmits,
            "control_dups_discarded": self.control_dups_discarded,
            "events_shed": self.events_shed,
            "credits_granted": self.credits_granted,
            "credit_stalls": self.credit_stalls,
            "rate_limited": self.rate_limited,
            "overload_transitions": self.overload_transitions,
            "events_logged": self.events_logged,
            "replay_events_sent": self.replay_events_sent,
            "replay_dupes_discarded": self.replay_dupes_discarded,
            "catchup_taps": self.catchup_taps,
            "catchup_delivered": self.catchup_delivered,
            "credit_gap_grants": self.credit_gap_grants,
            "events_matched_batch": self.events_matched_batch,
            "compile_rebuilds": self.compile_rebuilds,
            "residual_evaluations": self.residual_evaluations,
            "flows_installed": self.flows_installed,
            "flow_events_in": self.flow_events_in,
            "flow_events_out": self.flow_events_out,
            "flow_windows_dropped": self.flow_windows_dropped,
            "flow_collapsed_events": self.flow_collapsed_events,
            "events_published": self.events_published,
            "bytes_received": self.bytes_received,
        }
