"""Delivery-latency statistics.

Envelopes carry their publishing time, and subscriber runtimes record
``now - published_at`` for every event their exact filters accept.  The
comparison experiments use these to show the hop cost of pre-filtering:
a multi-stage path crosses one link per stage, the centralized path
crosses two links, broadcast one.
"""

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample."""

    count: int
    mean: float
    p50: float
    p99: float
    maximum: float

    def __str__(self) -> str:
        if self.count == 0:
            # An all-zeros summary is indistinguishable from a perfect
            # one; say explicitly that nothing was measured so a
            # zero-delivery run can't masquerade as a zero-latency run.
            return "n=0 (no deliveries)"
        return (
            f"n={self.count} mean={self.mean:.4g} p50={self.p50:.4g} "
            f"p99={self.p99:.4g} max={self.maximum:.4g}"
        )


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an (unsorted) non-empty sample."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


def summarize(values: Iterable[float]) -> LatencySummary:
    """Summary of a latency sample; zeros when the sample is empty."""
    sample: List[float] = list(values)
    if not sample:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0)
    return LatencySummary(
        count=len(sample),
        mean=sum(sample) / len(sample),
        p50=percentile(sample, 0.50),
        p99=percentile(sample, 0.99),
        maximum=max(sample),
    )


def combined(samples: Iterable[Iterable[float]]) -> LatencySummary:
    """Summary over the concatenation of several samples."""
    merged: List[float] = []
    for sample in samples:
        merged.extend(sample)
    return summarize(merged)
