"""Matching Rate (Section 5.1).

::

    MR = (number of matched events) / (total number of received events)

A high MR at a node means pre-filtering upstream worked: the node mostly
receives events it actually wants.  The paper reports an average MR of
0.87 for the user-level (stage-0) processes in its simulation.
"""

from typing import Iterable, List

from repro.metrics.counters import NodeCounters


def matching_rate(counters: NodeCounters) -> float:
    """MR of one node; 0.0 when it received no events at all."""
    if counters.events_received == 0:
        return 0.0
    return counters.events_matched / counters.events_received


def matching_rates(counter_list: Iterable[NodeCounters]) -> List[float]:
    """MR per node, preserving order (the Figure 7 series)."""
    return [matching_rate(c) for c in counter_list]


def average_matching_rate(
    counter_list: Iterable[NodeCounters], skip_idle: bool = True
) -> float:
    """Average MR over nodes.

    ``skip_idle`` excludes nodes that received nothing (their MR of 0.0
    would be an artifact of the workload, not of filtering quality).
    """
    rates = []
    for counters in counter_list:
        if counters.events_received == 0:
            if skip_idle:
                continue
            rates.append(0.0)
        else:
            rates.append(counters.events_matched / counters.events_received)
    if not rates:
        return 0.0
    return sum(rates) / len(rates)
