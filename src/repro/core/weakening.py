"""Filter and event weakening (Section 3.3 and 4.1).

Two weakening mechanisms appear in the paper:

1. **Attribute removal** (the automated scheme of §4.1): at stage ``i``
   keep only the constraints on ``A_i``, the stage's attribute set from
   the ``Gc`` association.  Removing conjuncts can only weaken a
   conjunction, so the result covers the original (Proposition 1 holds by
   construction).
2. **Bound relaxation / covering merges** (§4's Example 5, where ``g1``
   covers both ``f1`` and ``f2``): several filters that agree on all
   non-ordering constraints collapse into one filter whose ordering
   bounds are the weakest among them.

Event weakening (Proposition 2) is attribute removal on the property
representation; :func:`weaken_event` mirrors :func:`weaken_filter` so
that transformed events cover originals for every transformed filter.
"""

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.stages import AttributeStageAssociation
from repro.events.base import PropertyEvent
from repro.filters.constraints import AttributeConstraint
from repro.filters.filter import Filter
from repro.filters.operators import GE, GT, LE, LT
from repro.filters.standard import standardize


def weaken_filter(
    filter_: Filter,
    association: AttributeStageAssociation,
    stage: int,
    keep_wildcards: bool = False,
) -> Filter:
    """Weaken a (standard-form) filter for use at ``stage``.

    Constraints on attributes outside ``A_stage`` are removed; the result
    covers ``filter_`` (Proposition 1).  Wildcard (``ALL``) constraints
    are dropped by default — they carry no selectivity — unless
    ``keep_wildcards`` asks for the positional standard form.

    >>> from repro.filters import parse_filter
    >>> assoc = AttributeStageAssociation.uniform(
    ...     ["class", "symbol", "price"], stages=3)
    >>> f1 = parse_filter('class = "Stock" and symbol = "DEF" and price < 10.0')
    >>> str(weaken_filter(f1, assoc, stage=1))
    "(class, 'Stock', =) (symbol, 'DEF', =)"
    >>> str(weaken_filter(f1, assoc, stage=2))
    "(class, 'Stock', =)"
    """
    if filter_.matches_nothing:
        return filter_
    weakened = filter_.restricted_to(association.attributes_for_stage(stage))
    if not keep_wildcards:
        weakened = weakened.without_wildcards()
    return weakened


def weakening_chain(
    filter_: Filter,
    association: AttributeStageAssociation,
    schema_standardize: bool = True,
) -> List[Filter]:
    """The full ladder of weakened filters, stage 0 up to the top stage.

    Element ``i`` is the filter a stage-``i`` location uses; element 0 is
    the (standardized) original.  Each element covers all elements below
    it, which the property tests assert.
    """
    if schema_standardize and not filter_.matches_nothing:
        filter_ = standardize(filter_, association.schema, strict=False)
    return [
        weaken_filter(filter_, association, stage)
        for stage in range(association.num_stages)
    ]


def weaken_event(
    event: PropertyEvent,
    association: AttributeStageAssociation,
    stage: int,
) -> PropertyEvent:
    """Weaken an event's property representation for ``stage``.

    Keeps exactly the attributes stage-``stage`` filters may test, so the
    result covers the original for every filter weakened to that stage
    (Proposition 2): those filters never probe removed attributes.
    """
    return event.restricted_to(association.attributes_for_stage(stage))


_UPPER_OPS = (LT, LE)
_LOWER_OPS = (GT, GE)


def _split_for_merge(
    filter_: Filter,
) -> Optional[Tuple[Tuple[AttributeConstraint, ...], Dict[str, List[AttributeConstraint]]]]:
    """Split a filter into (rigid constraints, per-attribute ordering bounds).

    Returns None for filters the merge cannot handle (fF).
    """
    if filter_.matches_nothing:
        return None
    rigid: List[AttributeConstraint] = []
    bounds: Dict[str, List[AttributeConstraint]] = {}
    for constraint in filter_.constraints:
        if constraint.operator in _UPPER_OPS or constraint.operator in _LOWER_OPS:
            bounds.setdefault(constraint.attribute, []).append(constraint)
        else:
            rigid.append(constraint)
    return tuple(rigid), bounds


def _weakest_bound(
    constraints: List[AttributeConstraint], upper: bool
) -> Optional[AttributeConstraint]:
    """The single weakest upper (or lower) bound among ``constraints``.

    Returns None when any pair is incomparable or when no bound of the
    requested direction exists — meaning that direction is unbounded in
    at least one filter, so the merge must drop it entirely.
    """
    side = [c for c in constraints if (c.operator in _UPPER_OPS) == upper]
    if not side:
        return None
    weakest = side[0]
    for candidate in side[1:]:
        try:
            if upper:
                looser = candidate.operand > weakest.operand or (
                    candidate.operand == weakest.operand
                    and candidate.operator is LE
                )
            else:
                looser = candidate.operand < weakest.operand or (
                    candidate.operand == weakest.operand
                    and candidate.operator is GE
                )
        except TypeError:
            return None
        if looser:
            weakest = candidate
    return weakest


def merge_covering(filters: Iterable[Filter]) -> List[Filter]:
    """Collapse filters into fewer covering filters (Example 5's g1).

    Filters that share identical *rigid* constraints (everything except
    ``<``, ``<=``, ``>``, ``>=`` bounds) merge into a single filter whose
    per-attribute bounds are the weakest of the group — and a bound
    direction missing from *any* member is dropped from the merge, since
    that member accepts arbitrarily large/small values there.

    Every input filter is covered by some output filter; the output is
    never larger than the input.

    >>> from repro.filters import parse_filter
    >>> merged = merge_covering([
    ...     parse_filter('symbol = "DEF" and price < 10.0'),
    ...     parse_filter('symbol = "DEF" and price < 11.0'),
    ... ])
    >>> [str(f) for f in merged]
    ["(symbol, 'DEF', =) (price, 11.0, <)"]
    """
    groups: Dict[Tuple[AttributeConstraint, ...], List[Filter]] = {}
    passthrough: List[Filter] = []
    for filter_ in filters:
        split = _split_for_merge(filter_)
        if split is None:
            passthrough.append(filter_)
            continue
        rigid, _ = split
        groups.setdefault(rigid, []).append(filter_)

    merged: List[Filter] = []
    for rigid, members in groups.items():
        if len(members) == 1:
            merged.append(members[0])
            continue
        per_attribute: Dict[str, List[List[AttributeConstraint]]] = {}
        for member in members:
            _, bounds = _split_for_merge(member)  # type: ignore[misc]
            for attribute, constraints in bounds.items():
                per_attribute.setdefault(attribute, []).append(constraints)
        combined: List[AttributeConstraint] = list(rigid)
        for attribute, member_bounds in per_attribute.items():
            if len(member_bounds) != len(members):
                # Some member has no bound at all on this attribute:
                # the merge must not constrain it.
                continue
            for upper in (True, False):
                directional = [
                    [c for c in constraints if (c.operator in _UPPER_OPS) == upper]
                    for constraints in member_bounds
                ]
                if any(not group for group in directional):
                    continue
                weakest_per_member = [
                    _weakest_bound(group, upper) for group in directional
                ]
                # Within one member, multiple same-direction bounds form a
                # conjunction; the *strongest* represents it.  Taking the
                # weakest instead stays sound (it covers the conjunction).
                if any(bound is None for bound in weakest_per_member):
                    continue
                overall = _weakest_bound(
                    [b for b in weakest_per_member if b is not None], upper
                )
                if overall is not None:
                    combined.append(overall)
        merged.append(Filter(combined))
    merged.extend(passthrough)
    return merged
