"""Attribute generality and the attribute-stage association ``Gc``.

Section 4.1: for each event class ``c``, the publisher classifies the
class's attributes from *most general* (divides the event space into few,
large sub-categories — small value domain) to *least general* (many small
sub-categories), and associates with every stage ``i`` the attribute set
``A_i`` used by weakened filters at that stage.  Higher stages use fewer,
more general attributes; stage 0 (the subscribers) uses them all.

Example 6 of the paper::

    G_Auction = {s0, s1, s2, s3}
    s0 = <Stage-0: 1, 2, 3, 4, 5>     # all five attributes
    s1 = <Stage-1: 1, 2, 3, 4>
    s2 = <Stage-2: 1, 2, 3>
    s3 = <Stage-3: 1>

is expressed here as::

    AttributeStageAssociation.from_prefixes(
        ["class", "Product", "Kind", "Capacity", "price"], [5, 4, 3, 1])
"""

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple


def rank_by_generality(domain_sizes: Mapping[str, int]) -> List[str]:
    """Order attributes most-general-first from value-domain sizes.

    The most general attribute has the *smallest* domain ("a small set of
    large sub-categories").  Ties break alphabetically for determinism.

    >>> rank_by_generality({"title": 10000, "year": 30, "author": 2000})
    ['year', 'author', 'title']
    """
    return sorted(domain_sizes, key=lambda attr: (domain_sizes[attr], attr))


class AttributeStageAssociation:
    """The ``Gc`` of Section 4.1: which attributes each stage filters on.

    ``schema`` is the full, generality-ordered attribute list (``A_0``).
    ``stage_attributes[i]`` is ``A_i``; sets must shrink (weakly) as the
    stage rises, and each must be a prefix of the schema — the paper
    weakens by *removing the least general* attributes, which is exactly
    prefix truncation in generality order.
    """

    def __init__(self, schema: Sequence[str], stage_attributes: Sequence[Sequence[str]]):
        self.schema: Tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise ValueError(f"duplicate attributes in schema {schema!r}")
        if not stage_attributes:
            raise ValueError("at least one stage (stage 0) is required")
        stages: List[Tuple[str, ...]] = [tuple(attrs) for attrs in stage_attributes]
        if stages[0] != self.schema:
            raise ValueError(
                f"stage 0 must use the full schema; got {stages[0]!r} != {self.schema!r}"
            )
        previous: Tuple[str, ...] = self.schema
        for stage, attrs in enumerate(stages):
            if tuple(self.schema[: len(attrs)]) != attrs:
                raise ValueError(
                    f"stage {stage} attributes {attrs!r} are not a generality-order "
                    f"prefix of the schema {self.schema!r}"
                )
            if len(attrs) > len(previous):
                raise ValueError(
                    f"stage {stage} uses more attributes than stage {stage - 1}"
                )
            previous = attrs
        self._stages: Tuple[Tuple[str, ...], ...] = tuple(stages)

    @classmethod
    def from_prefixes(
        cls, schema: Sequence[str], prefix_lengths: Sequence[int]
    ) -> "AttributeStageAssociation":
        """Build from per-stage attribute counts, Example-6 style.

        ``prefix_lengths[i]`` is how many leading (most general) schema
        attributes stage ``i`` uses; ``prefix_lengths[0]`` must equal
        ``len(schema)``.
        """
        for stage, length in enumerate(prefix_lengths):
            if not 0 <= length <= len(schema):
                raise ValueError(
                    f"stage {stage} prefix length {length} out of range for "
                    f"{len(schema)} attributes"
                )
        return cls(schema, [tuple(schema[:length]) for length in prefix_lengths])

    @classmethod
    def uniform(cls, schema: Sequence[str], stages: int) -> "AttributeStageAssociation":
        """Drop one least-general attribute per stage (the §5.2 layout).

        With 4 attributes and ``stages=4``: stage 0 uses 4, stage 1 uses
        3, stage 2 uses 2, stage 3 uses 1 — the simulation configuration.
        """
        if stages < 1:
            raise ValueError("need at least one stage")
        lengths = [max(1, len(schema) - i) for i in range(stages)]
        lengths[0] = len(schema)
        return cls.from_prefixes(schema, lengths)

    @property
    def num_stages(self) -> int:
        """Number of stages including stage 0 (``n + 1`` in the paper)."""
        return len(self._stages)

    @property
    def top_stage(self) -> int:
        """Index of the highest (root) stage, ``n``."""
        return len(self._stages) - 1

    def attributes_for_stage(self, stage: int) -> Tuple[str, ...]:
        """``A_stage``: attributes used by weakened filters at ``stage``.

        Stages beyond the association's top (used when a hierarchy is
        deeper than the advertised ``Gc``) degrade to the top stage's set.
        """
        if stage < 0:
            raise ValueError(f"stage must be non-negative, got {stage}")
        if stage >= len(self._stages):
            return self._stages[-1]
        return self._stages[stage]

    def stages(self) -> Iterable[Tuple[int, Tuple[str, ...]]]:
        """Iterate ``(stage, A_stage)`` pairs, stage 0 first."""
        return enumerate(self._stages)

    def top_stage_using(self, attribute: str) -> int:
        """Highest stage whose ``A_i`` still contains ``attribute``.

        This is the ``j`` of HANDLE-WILDCARD-SUBS (§4.5): a subscription
        with a wildcard on ``attribute`` attaches at stage ``j + 1``,
        above every node that would have discriminated on it.  Returns
        ``-1`` when no stage uses the attribute.
        """
        top = -1
        for stage, attrs in enumerate(self._stages):
            if attribute in attrs:
                top = stage
        return top

    def as_dict(self) -> Dict[int, Tuple[str, ...]]:
        """Plain-dict view ``{stage: A_stage}`` (for reports and tests)."""
        return dict(self.stages())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeStageAssociation):
            return NotImplemented
        return self.schema == other.schema and self._stages == other._stages

    def __hash__(self) -> int:
        return hash((self.schema, self._stages))

    def __repr__(self) -> str:
        lengths = [len(attrs) for attrs in self._stages]
        return f"AttributeStageAssociation(schema={list(self.schema)}, prefixes={lengths})"
