"""The paper's primary contribution: multi-stage filtering.

- :mod:`~repro.core.stages` — attribute generality ordering and the
  attribute-stage association ``Gc`` (Section 4.1, Example 6);
- :mod:`~repro.core.weakening` — filter weakening to a stage, covering
  merges, and the soundness checks behind Propositions 1 and 2;
- :mod:`~repro.core.advertisement` — advertisements that carry the event
  schema and ``Gc`` to every node;
- :mod:`~repro.core.subscription` — subscription records and the
  TTL/lease soft-state machinery of Section 4.3;
- :mod:`~repro.core.engine` — :class:`MultiStageEventSystem`, the public
  facade gluing the overlay, event model, and filter language together.
"""

from repro.core.advertisement import Advertisement, AdvertisementRegistry
from repro.core.engine import MultiStageEventSystem
from repro.core.stages import AttributeStageAssociation, rank_by_generality
from repro.core.subscription import LeaseTable, Subscription
from repro.core.weakening import (
    merge_covering,
    weaken_filter,
    weakening_chain,
)

__all__ = [
    "Advertisement",
    "AdvertisementRegistry",
    "AttributeStageAssociation",
    "LeaseTable",
    "MultiStageEventSystem",
    "Subscription",
    "merge_covering",
    "rank_by_generality",
    "weaken_filter",
    "weakening_chain",
]
