"""Advertisements: how publishers teach the overlay about event classes.

Section 4.1: *"When generating an event, the publisher specifies the
groups and the attributes they contain.  This information is disseminated
together with event advertisements."*  An :class:`Advertisement` carries
the event class name and the attribute-stage association ``Gc`` (which
embeds the generality-ordered schema); every broker node keeps them in an
:class:`AdvertisementRegistry`, which is what lets any node weaken any
filter for its own stage without global knowledge.

When an event class participates in type-based filtering, the reserved
``class`` attribute appears in the schema — conventionally first, since
the event class is the most general attribute (the paper's Example 6,
where attribute 1 is ``class`` and stage 3 keeps only it:
``i1 = (class, "Stock", =)``).  Single-class workloads like the paper's
bibliographic simulation (§5.2) simply omit it.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.stages import AttributeStageAssociation
from repro.events.base import CLASS_ATTRIBUTE
from repro.filters.constraints import AttributeConstraint
from repro.filters.filter import Filter
from repro.filters.operators import EQ
from repro.filters.standard import standardize


@dataclass(frozen=True)
class Advertisement:
    """An advertised event class: name + ``Gc`` (schema and stage sets)."""

    event_class: str
    association: AttributeStageAssociation

    @classmethod
    def infer(
        cls,
        event_class: str,
        samples: Iterable,
        stages: int,
        include_class: bool = True,
    ) -> "Advertisement":
        """Derive an advertisement from sample events (§4.1 automated).

        The generality order comes from observed value-domain sizes: the
        attribute with the fewest distinct values "divides the event
        space into a small set of large sub-categories" and is placed
        first.  The reserved ``class`` attribute, when requested, is
        always the most general.  The stage association defaults to the
        uniform drop-one-per-stage layout.
        """
        from repro.core.stages import rank_by_generality

        domains: Dict[str, set] = {}
        for sample in samples:
            properties = getattr(sample, "properties", None)
            if properties is None:
                from repro.events.typed import reflect_attributes

                properties = reflect_attributes(sample)
            for attribute, value in properties.items():
                if attribute == CLASS_ATTRIBUTE:
                    continue
                domains.setdefault(attribute, set()).add(value)
        if not domains:
            raise ValueError("cannot infer a schema from empty samples")
        ordered = rank_by_generality(
            {attribute: len(values) for attribute, values in domains.items()}
        )
        schema: Tuple[str, ...] = tuple(
            ([CLASS_ATTRIBUTE] if include_class else []) + ordered
        )
        return cls(event_class, AttributeStageAssociation.uniform(schema, stages))

    @property
    def schema(self) -> Tuple[str, ...]:
        """The generality-ordered attribute list (``A_0``)."""
        return self.association.schema

    def class_filter(self) -> Filter:
        """The pure type filter for this class (Example 5's ``i1``)."""
        return Filter([AttributeConstraint(CLASS_ATTRIBUTE, EQ, self.event_class)])

    def standardize(self, filter_: Filter) -> Filter:
        """Standard subscription format for this class (Section 4.4).

        Missing attributes become wildcards in schema order — except the
        reserved ``class`` attribute (when the schema carries it), which
        defaults to equality with this advertisement's class: subscribing
        through an advertisement *is* subscribing to its class.
        """
        standard = standardize(filter_, self.schema, strict=True)
        if CLASS_ATTRIBUTE not in self.schema:
            return standard
        constraints = []
        for constraint in standard.constraints:
            if constraint.attribute == CLASS_ATTRIBUTE and constraint.is_wildcard:
                constraint = AttributeConstraint(CLASS_ATTRIBUTE, EQ, self.event_class)
            constraints.append(constraint)
        return Filter(constraints)


class AdvertisementRegistry:
    """Per-node store of known advertisements, keyed by event class name."""

    def __init__(self) -> None:
        self._by_class: Dict[str, Advertisement] = {}

    def add(self, advertisement: Advertisement) -> bool:
        """Record an advertisement; returns True when it was new or changed."""
        existing = self._by_class.get(advertisement.event_class)
        if existing == advertisement:
            return False
        self._by_class[advertisement.event_class] = advertisement
        return True

    def get(self, event_class: str) -> Optional[Advertisement]:
        return self._by_class.get(event_class)

    def require(self, event_class: str) -> Advertisement:
        advertisement = self._by_class.get(event_class)
        if advertisement is None:
            raise KeyError(f"event class {event_class!r} has not been advertised")
        return advertisement

    def classes(self) -> List[str]:
        return list(self._by_class)

    def __len__(self) -> int:
        return len(self._by_class)

    def __contains__(self, event_class: object) -> bool:
        return event_class in self._by_class

    def __iter__(self) -> Iterator[Advertisement]:
        return iter(self._by_class.values())
