"""``MultiStageEventSystem`` — the public facade of the library.

Gluing layer over the simulation kernel, the broker hierarchy, the event
model, and the filter language.  A typical session::

    system = MultiStageEventSystem(stage_sizes=(100, 10, 1), seed=7)
    system.register_type(Stock)
    system.advertise("Stock", schema=("class", "symbol", "price"))

    publisher = system.create_publisher("quotes")
    subscriber = system.create_subscriber("alice")
    system.subscribe(subscriber, 'symbol = "Foo" and price < 10.0',
                     event_class="Stock", handler=on_stock)
    system.drain()                       # let the join protocol finish

    publisher.publish(Stock("Foo", 9.0))
    system.drain()

Type-based (polymorphic) subscriptions: ``subscribe`` accepts a
registered event *class* — the subscription expands over every advertised
conforming class, and automatically extends when a publisher later
advertises a brand-new subtype, reproducing the paper's claim that
publishers can grow the type hierarchy without subscribers re-subscribing.
"""

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.core.advertisement import Advertisement, AdvertisementRegistry
from repro.core.stages import AttributeStageAssociation
from repro.core.subscription import Subscription, next_group_id
from repro.events.base import CLASS_ATTRIBUTE
from repro.events.closures import FilterClosure
from repro.events.hierarchy import TypeRegistry
from repro.filters.disjunction import Disjunction
from repro.filters.filter import Filter
from repro.filters.compiled import CompiledMatchEngine
from repro.filters.index import CountingIndex
from repro.filters.parser import parse_filter
from repro.filters.table import FilterTable
from repro.flow import FlowConfig
from repro.log.config import LogConfig
from repro.obs.sampling import StageSampler
from repro.obs.tracing import EventTracer
from repro.overlay.hierarchy import Hierarchy, build_hierarchy
from repro.overlay.publisher import PublisherRuntime
from repro.overlay.subscriber import Handler, SubscriberRuntime
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.streams.flowgraph import FlowGraph
from repro.streams.registrar import FlowRegistrar
from repro.streams.spec import FlowSpec

FilterLike = Union[Filter, Disjunction, str, None]


class _PendingTypeSubscription:
    """A type-based subscription awaiting future subtype advertisements."""

    def __init__(
        self,
        subscriber: SubscriberRuntime,
        base_class: Type,
        filter_: Filter,
        handler: Optional[Handler],
        residual: Optional[Callable[[Any], bool]],
    ):
        self.subscriber = subscriber
        self.base_class = base_class
        self.filter = filter_
        self.handler = handler
        self.residual = residual
        self.covered_classes: set = set()


class MultiStageEventSystem:
    """A complete simulated deployment of the paper's event system."""

    def __init__(
        self,
        stage_sizes: Sequence[int] = (100, 10, 1),
        ttl: float = 60.0,
        seed: int = 0,
        engine: str = "index",
        trace: bool = False,
        link_latency: float = 0.001,
        wildcard_routing: bool = True,
        compact: bool = False,
        cache: bool = True,
        batch: bool = True,
        aggregate: bool = True,
        reliable: bool = True,
        tracing: bool = False,
        flow: Optional[FlowConfig] = None,
        service_rate: Optional[float] = None,
        service_batch: int = 16,
        log: Optional[LogConfig] = None,
        runtime: str = "sim",
    ):
        if engine not in ("index", "table", "compiled"):
            raise ValueError(
                f"engine must be 'index', 'table' or 'compiled', got {engine!r}"
            )
        if runtime not in ("sim", "asyncio", "multiprocess"):
            raise ValueError(
                f"runtime must be 'sim', 'asyncio' or 'multiprocess', "
                f"got {runtime!r}"
            )
        #: Which execution backend hosts this system ("sim" is the
        #: deterministic default; "asyncio" runs the same overlay over
        #: real localhost TCP sockets at wall-clock speed; "multiprocess"
        #: additionally puts every broker in its own OS process).
        self.runtime_name = runtime
        #: Causal span tracer shared by every process of this system
        #: (publishers, brokers, subscribers, and the network fabric).
        #: On "multiprocess" it only sees driver-side spans (publish,
        #: deliver) — broker-side spans live in the worker processes.
        self.tracer = EventTracer(enabled=tracing)
        if runtime == "sim":
            self.sim = Simulator()
            self.network = Network(
                self.sim, default_latency=link_latency, tracer=self.tracer
            )
        elif runtime == "multiprocess":
            from repro.runtime.multiprocess_backend import (
                MultiprocessRuntime,
                MultiprocessTransport,
            )

            self.sim = MultiprocessRuntime()
            self.network = MultiprocessTransport(
                self.sim, default_latency=link_latency, tracer=self.tracer
            )
        else:
            from repro.runtime.asyncio_backend import AsyncioRuntime, TcpTransport

            self.sim = AsyncioRuntime()
            self.network = TcpTransport(
                self.sim, default_latency=link_latency, tracer=self.tracer
            )
        self.reliable = reliable
        #: Flow-control knobs, plumbed to every broker/publisher/subscriber
        #: this system creates (None = flow control off).
        self.flow = flow
        #: Durable-log knobs, plumbed to every broker (None = no logging,
        #: no replay, no catch-up subscribers).
        self.log = log
        self.rngs = RngRegistry(seed)
        self.trace = TraceRecorder(enabled=trace)
        engine_factory = {
            "index": CountingIndex,
            "table": FilterTable,
            "compiled": CompiledMatchEngine,
        }[engine]
        if runtime == "multiprocess":
            from repro.runtime.multiprocess_backend import SystemSpec

            # Workers rebuild their slice of the tree from this spec;
            # the driver-side hierarchy is all proxies.
            self.hierarchy: Hierarchy = self.sim.launch(
                self.network,
                SystemSpec(
                    stage_sizes=tuple(stage_sizes),
                    ttl=ttl,
                    engine=engine,
                    seed=seed,
                    link_latency=link_latency,
                    wildcard_routing=wildcard_routing,
                    compact=compact,
                    cache=cache,
                    batch=batch,
                    aggregate=aggregate,
                    reliable=reliable,
                    service_rate=service_rate,
                    service_batch=service_batch,
                    flow=flow,
                    log=log,
                ),
            )
        else:
            self.hierarchy = build_hierarchy(
                self.sim,
                self.network,
                stage_sizes,
                ttl=ttl,
                engine_factory=engine_factory,
                rngs=self.rngs,
                trace=self.trace,
                link_latency=link_latency,
                wildcard_routing=wildcard_routing,
                compact=compact,
                cache=cache,
                batch=batch,
                aggregate=aggregate,
                reliable=reliable,
                tracer=self.tracer,
                flow=flow,
                service_rate=service_rate,
                service_batch=service_batch,
                log=log,
            )
        if runtime == "asyncio" and log is not None and log.directory:
            # Real-runtime semantics: a broker's in-memory log dies with
            # the crash; restart recovers it from the JSONL segments.
            # (Workers on "multiprocess" set this themselves from the
            # spec — there the property holds by construction.)
            for node in self.hierarchy.nodes():
                node.recover_log_from_disk = True
        #: Per-stage time-series sampler (armed by :meth:`start_sampling`).
        self.sampler: Optional[StageSampler] = None
        self.ttl = ttl
        self.types = TypeRegistry()
        self.advertisements = AdvertisementRegistry()
        self.publishers: List[PublisherRuntime] = []
        self.subscribers: List[SubscriberRuntime] = []
        self.flow_registrars: List[FlowRegistrar] = []
        self._pending_type_subs: List[_PendingTypeSubscription] = []
        self._system_publisher: Optional[PublisherRuntime] = None
        self._maintenance_started = False
        self._names = 0

    # ------------------------------------------------------------------
    # Topology / participants
    # ------------------------------------------------------------------

    @property
    def root(self):
        return self.hierarchy.root

    def _fresh_name(self, prefix: str) -> str:
        self._names += 1
        return f"{prefix}-{self._names}"

    def _activate(self, process) -> None:
        """Backends with remote participants (multiprocess) must bind a
        local process's data server and announce its port to every
        worker *before* the first frame referencing it crosses the wire;
        everywhere else this is a no-op."""
        activate = getattr(self.network, "activate", None)
        if activate is not None:
            activate(process)

    def create_publisher(
        self,
        name: Optional[str] = None,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
    ) -> PublisherRuntime:
        publisher = PublisherRuntime(
            self.sim,
            self.network,
            name or self._fresh_name("publisher"),
            self.root,
            types=self.types,
            tracer=self.tracer,
            flow=self.flow,
            rate_limit=rate_limit,
            burst=burst,
        )
        self._activate(publisher)
        self.publishers.append(publisher)
        return publisher

    def create_subscriber(self, name: Optional[str] = None) -> SubscriberRuntime:
        subscriber = SubscriberRuntime(
            self.sim,
            self.network,
            name or self._fresh_name("subscriber"),
            self.root,
            ttl=self.ttl,
            trace=self.trace,
            reliable=self.reliable,
            tracer=self.tracer,
            flow=self.flow,
        )
        self._activate(subscriber)
        self.subscribers.append(subscriber)
        return subscriber

    # ------------------------------------------------------------------
    # In-broker information flows (streams/, DESIGN §15)
    # ------------------------------------------------------------------

    def install_flows(
        self,
        flows: Union[FlowGraph, Sequence[FlowSpec]],
        name: Optional[str] = None,
    ) -> FlowRegistrar:
        """Install a flow graph on its hosting brokers.

        Creates a stage-0 :class:`FlowRegistrar` owning the graph: it
        sends ``FlowInstall`` over the reliable control channel and —
        once maintenance runs — renews every flow's lease each half-TTL,
        which is also what re-installs flows a crashed broker lost
        (refresh-or-restore).  Each spec's ``broker`` names its host
        (``None`` = the root).  Output event classes not yet advertised
        are auto-advertised with the spec's derived schema so that
        subscriptions on derived events standardize and weaken like any
        other class.
        """
        graph = flows if isinstance(flows, FlowGraph) else FlowGraph(flows)
        registrar = FlowRegistrar(
            self.sim,
            self.network,
            name or self._fresh_name("flows"),
            ttl=self.ttl,
            reliable=self.reliable,
            control_window=self.flow.control_window if self.flow else None,
            tracer=self.tracer,
        )
        self._activate(registrar)
        self.flow_registrars.append(registrar)
        for spec in graph.flows():
            if self.advertisements.get(spec.output_class) is None:
                self.advertise(spec.output_class, spec.output_schema())
            registrar.install(self._broker_named(spec.broker), spec)
        if self._maintenance_started:
            registrar.start_maintenance()
        return registrar

    def _broker_named(self, name: Optional[str]):
        if name is None:
            return self.root
        for node in self.hierarchy.nodes():
            if node.name == name:
                return node
        raise KeyError(f"no broker named {name!r} in the hierarchy")

    # ------------------------------------------------------------------
    # Types and advertisements
    # ------------------------------------------------------------------

    def register_type(self, cls: Type, name: Optional[str] = None) -> str:
        """Register an application event class for typed publishing."""
        return self.types.register(cls, name)

    def advertise(
        self,
        event_class: Union[str, Type],
        schema: Sequence[str],
        stage_prefixes: Optional[Sequence[int]] = None,
        association: Optional[AttributeStageAssociation] = None,
        publisher: Optional[PublisherRuntime] = None,
    ) -> Advertisement:
        """Advertise an event class with its generality-ordered ``schema``.

        ``schema`` orders attributes most-general-first and may include
        the reserved ``class`` attribute (include it whenever the class
        participates in type-based filtering).  The default ``Gc`` drops
        one least-general attribute per stage
        (:meth:`AttributeStageAssociation.uniform`); pass
        ``stage_prefixes`` or a full ``association`` to override.
        """
        if isinstance(event_class, type):
            name = (
                self.types.name_of(event_class)
                if self.types.is_registered(event_class)
                else self.register_type(event_class)
            )
        else:
            name = event_class
        if association is None:
            if stage_prefixes is not None:
                association = AttributeStageAssociation.from_prefixes(
                    schema, stage_prefixes
                )
            else:
                stages = self.hierarchy.top_stage + 1
                association = AttributeStageAssociation.uniform(schema, stages)
        advertisement = Advertisement(name, association)
        self.advertisements.add(advertisement)
        source = publisher or self._advertising_publisher()
        source.advertise(advertisement)
        self._expand_type_subscriptions(advertisement)
        return advertisement

    def advertise_from_samples(
        self,
        event_class: Union[str, Type],
        samples,
        include_class: bool = True,
        publisher: Optional[PublisherRuntime] = None,
    ) -> Advertisement:
        """Advertise with a schema *inferred* from sample events (§4.1).

        Attribute generality is estimated from observed value-domain
        sizes; the stage association is the uniform layout for this
        hierarchy's depth.
        """
        if isinstance(event_class, type):
            name = (
                self.types.name_of(event_class)
                if self.types.is_registered(event_class)
                else self.register_type(event_class)
            )
        else:
            name = event_class
        advertisement = Advertisement.infer(
            name, samples, stages=self.hierarchy.top_stage + 1,
            include_class=include_class,
        )
        self.advertisements.add(advertisement)
        source = publisher or self._advertising_publisher()
        source.advertise(advertisement)
        self._expand_type_subscriptions(advertisement)
        return advertisement

    def _advertising_publisher(self) -> PublisherRuntime:
        if self._system_publisher is None:
            self._system_publisher = PublisherRuntime(
                self.sim, self.network, "system-advertiser", self.root,
                types=self.types,
            )
            self._activate(self._system_publisher)
        return self._system_publisher

    # ------------------------------------------------------------------
    # Subscribing
    # ------------------------------------------------------------------

    def subscribe(
        self,
        subscriber: SubscriberRuntime,
        filter: FilterLike = None,
        event_class: Union[str, Type, None] = None,
        handler: Optional[Handler] = None,
        residual: Optional[Callable[[Any], bool]] = None,
        at_node: Any = None,
    ) -> List[Subscription]:
        """Register a subscription; returns the concrete Subscriptions made.

        ``filter`` may be a :class:`Filter`, filter text, or ``None`` for
        "all events of the class".  ``event_class`` may be an advertised
        class name, or a registered Python class — in which case the
        subscription is *type-based*: it expands over every advertised
        conforming class now and in the future.  ``residual`` attaches a
        stage-0-only predicate over the typed event object.  ``at_node``
        bypasses similarity placement and joins at a fixed node (ablation
        hook; see :meth:`SubscriberRuntime.subscribe`).
        """
        filter_ = self._coerce_filter(filter)
        if isinstance(filter_, Disjunction):
            return self._subscribe_disjunction(
                subscriber, filter_, event_class, handler, residual, at_node
            )
        if event_class is None:
            event_class = self._infer_event_class(filter_)
        if isinstance(event_class, type):
            return self._subscribe_by_type(
                subscriber, event_class, filter_, handler, residual
            )
        return [
            self._subscribe_concrete(
                subscriber, event_class, filter_, handler, residual, at_node=at_node
            )
        ]

    def _subscribe_disjunction(
        self,
        subscriber: SubscriberRuntime,
        disjunction: Disjunction,
        event_class: Union[str, Type, None],
        handler: Optional[Handler],
        residual: Optional[Callable[[Any], bool]],
        at_node: Any,
    ) -> List[Subscription]:
        """OR-subscriptions: one routed subscription per branch, all in
        one delivery-dedup group (the subscriber runtime delivers each
        event at most once per group even when branches live on
        different nodes)."""
        simplified = disjunction.simplified()
        if isinstance(simplified, Filter):
            return self.subscribe(
                subscriber, simplified, event_class=event_class,
                handler=handler, residual=residual, at_node=at_node,
            )
        group = next_group_id()
        subscriptions: List[Subscription] = []
        for branch in simplified.branches:
            branch_class = event_class
            if branch_class is None:
                branch_class = self._infer_event_class(branch)
            if isinstance(branch_class, type):
                raise ValueError(
                    "type-based subscriptions cannot be combined with "
                    "disjunctive filters; subscribe per class instead"
                )
            subscription = self._subscribe_concrete(
                subscriber, branch_class, branch, handler, residual,
                at_node=at_node, group=group,
            )
            subscriptions.append(subscription)
        return subscriptions

    def _coerce_filter(self, filter_: FilterLike) -> Filter:
        if filter_ is None:
            return Filter.top()
        if isinstance(filter_, str):
            return parse_filter(filter_)
        return filter_

    def _infer_event_class(self, filter_: Filter) -> str:
        for constraint in filter_.constraints:
            if constraint.attribute == CLASS_ATTRIBUTE and not constraint.is_wildcard:
                return constraint.operand
        raise ValueError(
            "event_class is required when the filter has no 'class' constraint"
        )

    def _subscribe_by_type(
        self,
        subscriber: SubscriberRuntime,
        base_class: Type,
        filter_: Filter,
        handler: Optional[Handler],
        residual: Optional[Callable[[Any], bool]],
    ) -> List[Subscription]:
        base_name = self.types.name_of(base_class)
        pending = _PendingTypeSubscription(
            subscriber, base_class, filter_, handler, residual
        )
        self._pending_type_subs.append(pending)
        subscriptions = []
        for name in self.types.conformers(base_name):
            advertisement = self.advertisements.get(name)
            if advertisement is None:
                continue
            pending.covered_classes.add(name)
            subscriptions.append(
                self._subscribe_concrete(subscriber, name, filter_, handler, residual)
            )
        return subscriptions

    def _expand_type_subscriptions(self, advertisement: Advertisement) -> None:
        """Auto-subscribe pending type subscriptions to a new conformer."""
        name = advertisement.event_class
        try:
            cls = self.types.class_of(name)
        except KeyError:
            return
        for pending in self._pending_type_subs:
            if name in pending.covered_classes:
                continue
            if not issubclass(cls, pending.base_class):
                continue
            pending.covered_classes.add(name)
            self._subscribe_concrete(
                pending.subscriber, name, pending.filter,
                pending.handler, pending.residual,
            )

    def _subscribe_concrete(
        self,
        subscriber: SubscriberRuntime,
        event_class: str,
        filter_: Filter,
        handler: Optional[Handler],
        residual: Optional[Callable[[Any], bool]],
        at_node: Any = None,
        group: Optional[int] = None,
    ) -> Subscription:
        advertisement = self.advertisements.require(event_class)
        standard = advertisement.standardize(filter_)
        closure = (
            FilterClosure(standard, residual=residual) if residual is not None else None
        )
        subscription = Subscription(standard, event_class, closure, group=group)
        subscriber.subscribe(subscription, handler, at_node=at_node)
        return subscription

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def drain(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue empties (or ``max_events``).

        Only safe before :meth:`start_maintenance` — the periodic TTL
        tasks reschedule themselves forever, so a maintained system must
        use :meth:`run_for` instead; calling drain then raises rather
        than spinning forever.
        """
        sampling = self.sampler is not None and self.sampler.running
        if (self._maintenance_started or sampling) and max_events is None:
            raise SimulationError(
                "drain() would never return while TTL maintenance or the "
                "stage sampler is running; use run_for(duration) or pass "
                "max_events"
            )
        return self.sim.run(max_events=max_events)

    def run_for(self, duration: float) -> int:
        """Advance time by ``duration`` (simulated or wall, per backend)."""
        return self.sim.run(until=self.sim.now + duration)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 10.0,
        poll: float = 0.02,
    ) -> bool:
        """Drive the backend until ``predicate()`` holds (False on timeout).

        On the asyncio backend this spins the event loop in ``poll``-sized
        wall-clock slices; on the simulator it steps events, checking the
        predicate between steps, until ``timeout`` simulated seconds pass
        or the queue drains.
        """
        runner = getattr(self.sim, "run_until", None)
        if runner is not None:
            return runner(predicate, timeout, poll)
        deadline = self.sim.now + timeout
        while not predicate() and self.sim.now < deadline:
            if not self.sim.step():
                break
        return predicate()

    def kill(self, process) -> None:
        """Fail-stop a process on either backend.

        On the simulator this is ``process.crash()``; on the asyncio
        backend the endpoint's sockets are torn down too, so peers see a
        dead port rather than a silent drop gate.
        """
        killer = getattr(self.network, "kill", None)
        if killer is not None:
            killer(process)
        else:
            process.crash()

    def restore(self, process) -> None:
        """Bring a killed process back (rebinding its port on asyncio)."""
        restorer = getattr(self.network, "restore", None)
        if restorer is not None:
            restorer(process)
        else:
            process.restart()

    def close(self) -> None:
        """Release backend resources (sockets, event loop).

        A no-op on the simulator; required teardown on the asyncio
        backend.  The system is unusable afterwards.
        """
        closer = getattr(self.network, "close", None)
        if closer is not None:
            closer()
        closer = getattr(self.sim, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "MultiStageEventSystem":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def start_maintenance(self) -> None:
        """Start TTL renewal/purge tasks on every node and subscriber."""
        self._maintenance_started = True
        self.hierarchy.start_maintenance()
        for subscriber in self.subscribers:
            subscriber.start_maintenance()
        for registrar in self.flow_registrars:
            registrar.start_maintenance()

    def stop_maintenance(self) -> None:
        self._maintenance_started = False
        self.hierarchy.stop_maintenance()
        for subscriber in self.subscribers:
            subscriber.stop_maintenance()
        for registrar in self.flow_registrars:
            registrar.stop_maintenance()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def start_sampling(self, interval: float = 0.5) -> StageSampler:
        """Start per-stage time-series sampling across all brokers.

        Like maintenance, a running sampler keeps the queue non-empty:
        use :meth:`run_for`, and :meth:`stop_sampling` when done.
        """
        if self.sampler is None:
            self.sampler = StageSampler(self.sim, interval=interval)
            self.sampler.attach(self.hierarchy.nodes())
        self.sampler.start()
        return self.sampler

    def stop_sampling(self) -> None:
        if self.sampler is not None:
            self.sampler.stop()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def total_events_published(self) -> int:
        total = sum(p.events_published for p in self.publishers)
        if self._system_publisher is not None:
            total += self._system_publisher.events_published
        return total

    def total_subscriptions(self) -> int:
        return sum(len(s.subscriptions()) for s in self.subscribers)

    def total_queue_depth(self) -> int:
        """Events queued anywhere in the system right now: broker inbound
        and outbound queues plus publisher credit-blocked local queues —
        the quantity the flow-control memory bound caps."""
        depth = sum(node.queue_depth() for node in self.hierarchy.nodes())
        depth += sum(p.pending_count for p in self.publishers)
        return depth

    def total_events_shed(self) -> int:
        """Events shed across all brokers and publishers."""
        total = sum(n.counters.events_shed for n in self.hierarchy.nodes())
        total += sum(p.counters.events_shed for p in self.publishers)
        return total

    def counters_by_stage(self) -> Dict[int, List[Tuple[str, Any]]]:
        """``{stage: [(name, NodeCounters), ...]}`` including stage 0."""
        result: Dict[int, List[Tuple[str, Any]]] = {
            0: [(s.name, s.counters) for s in self.subscribers]
        }
        for stage in self.hierarchy.stages:
            result[stage] = [
                (n.name, n.counters) for n in self.hierarchy.nodes(stage)
            ]
        return result

    def __repr__(self) -> str:
        return (
            f"MultiStageEventSystem({self.hierarchy!r}, "
            f"{len(self.publishers)} publishers, {len(self.subscribers)} subscribers)"
        )
