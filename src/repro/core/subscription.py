"""Subscription records and lease (TTL) soft state — Section 4.3.

A :class:`Subscription` binds a subscriber's identity to its *standard*
indexable filter, the event class subscribed to, and optionally the full
:class:`~repro.events.closures.FilterClosure` whose residual part runs
only at delivery.

Nodes track liveness of stored ``<filter, id>`` pairs with a
:class:`LeaseTable`: subscribers (and nodes, for the filters they pushed
to their parents) renew before each TTL expires; pairs silent for
``expiry_factor × TTL`` (3× in the paper) are purged.  This soft-state
scheme subsumes unsubscription and tolerates crashes and partitions —
the properties the failure-injection tests exercise.
"""

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.events.closures import FilterClosure
from repro.filters.filter import Filter

_subscription_ids = itertools.count(1)
_group_ids = itertools.count(1)


def next_group_id() -> int:
    """A fresh id for a disjunction group (branch subscriptions)."""
    return next(_group_ids)

#: The paper purges filters "at the end of each 3x(TTL) periods".
DEFAULT_EXPIRY_FACTOR = 3.0


@dataclass
class Subscription:
    """One subscriber-side subscription.

    ``filter`` is the standard-form conjunctive filter that travels into
    the overlay; ``closure`` (optional) adds the residual predicate for
    perfect stage-0 filtering; ``event_class`` names the advertised class
    the filter was standardized against.  ``group`` ties together the
    branch subscriptions of one disjunctive subscription: the subscriber
    runtime delivers each event at most once per group.
    """

    filter: Filter
    event_class: str
    closure: Optional[FilterClosure] = None
    subscription_id: int = field(default_factory=lambda: next(_subscription_ids))
    group: Optional[int] = None

    def matches_exactly(self, event: object, metadata: object = None) -> bool:
        """Stage-0 perfect filtering: conjunctive part plus residual."""
        if self.closure is not None:
            return self.closure.matches(event, metadata)
        return self.filter.matches(metadata if metadata is not None else event)

    def __hash__(self) -> int:
        return hash(self.subscription_id)

    def __repr__(self) -> str:
        return f"Subscription(#{self.subscription_id} {self.event_class}: {self.filter})"


class LeaseTable:
    """Renewal timestamps for ``(filter, id)`` pairs held by a node."""

    def __init__(self, ttl: float, expiry_factor: float = DEFAULT_EXPIRY_FACTOR):
        if ttl <= 0:
            raise ValueError(f"TTL must be positive, got {ttl}")
        if expiry_factor < 1:
            raise ValueError(f"expiry factor must be >= 1, got {expiry_factor}")
        self.ttl = ttl
        self.expiry_factor = expiry_factor
        self._renewed_at: Dict[Tuple[Filter, Hashable], float] = {}

    def touch(self, filter_: Filter, destination: Hashable, now: float) -> None:
        """Record an insertion or renewal for the pair."""
        self._renewed_at[(filter_, destination)] = now

    def touch_all(self, destination: Hashable, now: float) -> int:
        """Renew every pair held for ``destination`` (bulk Renewal message).

        Returns the number of pairs renewed.
        """
        renewed = 0
        for pair in self._renewed_at:
            if pair[1] == destination:
                self._renewed_at[pair] = now
                renewed += 1
        return renewed

    def forget(self, filter_: Filter, destination: Hashable) -> None:
        """Drop the pair (explicit unsubscription or purge)."""
        self._renewed_at.pop((filter_, destination), None)

    def is_live(self, filter_: Filter, destination: Hashable, now: float) -> bool:
        renewed = self._renewed_at.get((filter_, destination))
        if renewed is None:
            return False
        return (now - renewed) < self.ttl * self.expiry_factor

    def expired(self, now: float) -> List[Tuple[Filter, Hashable]]:
        """Pairs whose lease has lapsed (the REMOVE INVALID FILTERS task)."""
        deadline = self.ttl * self.expiry_factor
        return [
            pair
            for pair, renewed in self._renewed_at.items()
            if (now - renewed) >= deadline
        ]

    def pairs(self) -> List[Tuple[Filter, Hashable]]:
        return list(self._renewed_at)

    def __len__(self) -> int:
        return len(self._renewed_at)

    def __contains__(self, pair: object) -> bool:
        return pair in self._renewed_at
