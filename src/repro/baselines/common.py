"""Shared machinery for the baseline architectures.

Every baseline reuses the simulation kernel, the envelope/event model and
the exact-filtering subscriber edge; only the routing fabric between the
publisher and the subscribers differs.
"""

from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.advertisement import Advertisement, AdvertisementRegistry
from repro.core.subscription import Subscription
from repro.events.closures import FilterClosure
from repro.events.serialization import Envelope, marshal, unmarshal
from repro.filters.filter import Filter
from repro.filters.parser import parse_filter
from repro.metrics.counters import NodeCounters
from repro.overlay.messages import Publish
from repro.sim.kernel import Process, Simulator
from repro.sim.network import Network

Handler = Callable[[Any, Any, Subscription], None]
FilterLike = Union[Filter, str, None]


class EdgeSubscriber(Process):
    """A subscriber that performs exact (stage-0) filtering locally."""

    def __init__(self, sim: Simulator, network: Network, name: str):
        super().__init__(sim, name)
        self.network = network
        self.counters = NodeCounters()
        self.delivery_latencies: List[float] = []
        self._subscriptions: List[Subscription] = []
        self._handlers: Dict[int, Optional[Handler]] = {}

    def add_subscription(
        self, subscription: Subscription, handler: Optional[Handler] = None
    ) -> None:
        self._subscriptions.append(subscription)
        self._handlers[subscription.subscription_id] = handler
        self.counters.set_filters_held(len(self._subscriptions))

    def subscriptions(self) -> List[Subscription]:
        return list(self._subscriptions)

    def receive(self, message: Any, sender: Process) -> None:
        if not isinstance(message, Publish):
            raise TypeError(f"{self.name}: unexpected message {message!r}")
        self._on_publish(message.envelope)

    def _on_publish(self, envelope: Envelope) -> None:
        matched = [
            s for s in self._subscriptions if s.filter.matches(envelope.metadata)
        ]
        self.counters.on_event(
            matched=bool(matched),
            forwarded_to=0,
            evaluations=len(self._subscriptions),
        )
        if not matched:
            return
        if envelope.published_at is not None:
            self.delivery_latencies.append(self.sim.now - envelope.published_at)
        event = unmarshal(envelope)
        for subscription in matched:
            closure = subscription.closure
            if closure is not None and closure.residual is not None:
                if not closure.residual(event):
                    continue
            self.counters.events_delivered += 1
            handler = self._handlers.get(subscription.subscription_id)
            if handler is not None:
                handler(event, envelope.metadata, subscription)


class BaselinePublisher(Process):
    """A publisher pinned to the architecture's single entry point."""

    def __init__(self, sim: Simulator, network: Network, name: str, target: Process):
        super().__init__(sim, name)
        self.network = network
        self.target = target
        self.events_published = 0

    def publish(self, event: Any, event_class: Optional[str] = None) -> None:
        envelope = marshal(
            event,
            class_name=event_class,
            published_at=self.sim.now,
            event_id=(self.name, self.events_published),
        )
        self.events_published += 1
        self.network.send(self, self.target, Publish(envelope))

    def receive(self, message: Any, sender: Process) -> None:
        raise TypeError(f"publisher {self.name} received unexpected {message!r}")


class BaselineSystem:
    """Base facade: simulator, network, advertisements, participants."""

    def __init__(self, seed: int = 0, link_latency: float = 0.001):
        self.sim = Simulator()
        self.network = Network(self.sim, default_latency=link_latency)
        self.advertisements = AdvertisementRegistry()
        self.publishers: List[BaselinePublisher] = []
        self.subscribers: List[EdgeSubscriber] = []
        self._names = 0

    def _fresh_name(self, prefix: str) -> str:
        self._names += 1
        return f"{prefix}-{self._names}"

    def advertise(self, advertisement: Advertisement) -> Advertisement:
        self.advertisements.add(advertisement)
        return advertisement

    def _entry_point(self) -> Process:
        raise NotImplementedError

    def create_publisher(self, name: Optional[str] = None) -> BaselinePublisher:
        publisher = BaselinePublisher(
            self.sim, self.network, name or self._fresh_name("publisher"),
            self._entry_point(),
        )
        self.publishers.append(publisher)
        return publisher

    def create_subscriber(self, name: Optional[str] = None) -> EdgeSubscriber:
        subscriber = EdgeSubscriber(
            self.sim, self.network, name or self._fresh_name("subscriber")
        )
        self.subscribers.append(subscriber)
        return subscriber

    def _make_subscription(
        self,
        filter_: FilterLike,
        event_class: str,
        residual: Optional[Callable[[Any], bool]],
    ) -> Subscription:
        if filter_ is None:
            filter_ = Filter.top()
        elif isinstance(filter_, str):
            filter_ = parse_filter(filter_)
        advertisement = self.advertisements.get(event_class)
        if advertisement is not None:
            filter_ = advertisement.standardize(filter_)
        closure = (
            FilterClosure(filter_, residual=residual) if residual is not None else None
        )
        return Subscription(filter_, event_class, closure)

    def drain(self, max_events: Optional[int] = None) -> int:
        return self.sim.run(max_events=max_events)

    def total_events_published(self) -> int:
        return sum(p.events_published for p in self.publishers)

    def total_subscriptions(self) -> int:
        return sum(len(s.subscriptions()) for s in self.subscribers)
