"""Baseline architectures of Section 2.1.

- :mod:`~repro.baselines.centralized` — one server filters everything
  (Elvin-style); its RLC is 1 by the metric's definition;
- :mod:`~repro.baselines.broadcast` — group-communication style: every
  event floods to every subscriber, which filters locally;
- :mod:`~repro.baselines.topicbased` — one topic per event class (the
  degenerate content-based addressing of filter ``g3``).

Each baseline exposes the same minimal facade (``advertise`` /
``create_publisher`` / ``create_subscriber`` / ``subscribe`` / ``drain``)
so the comparison experiments can swap architectures freely.
"""

from repro.baselines.broadcast import BroadcastSystem
from repro.baselines.centralized import CentralizedSystem
from repro.baselines.topicbased import TopicBasedSystem

__all__ = ["BroadcastSystem", "CentralizedSystem", "TopicBasedSystem"]
