"""Topic-based publish/subscribe (the degenerate case, §3.4).

One topic per event class: exactly the paper's ``g3 = (class, "Stock",
=)`` observation that "topic-based addressing is a degenerated form of
content-based addressing".  Events are fanned out to every member of
their class's topic; members then filter locally on the remaining
content, so selectivity beyond the class costs edge work.
"""

from typing import Any, Callable, Dict, List, Optional

from repro.baselines.common import (
    BaselineSystem,
    EdgeSubscriber,
    FilterLike,
    Handler,
)
from repro.core.subscription import Subscription
from repro.metrics.counters import NodeCounters
from repro.overlay.messages import Publish
from repro.sim.kernel import Process, Simulator
from repro.sim.network import Network


class TopicHub(Process):
    """Routes each event to the members of its class's topic."""

    def __init__(self, sim: Simulator, network: Network, name: str = "topic-hub"):
        super().__init__(sim, name)
        self.network = network
        self._topics: Dict[str, List[EdgeSubscriber]] = {}
        self.counters = NodeCounters()

    def join(self, topic: str, member: EdgeSubscriber) -> None:
        members = self._topics.setdefault(topic, [])
        if member not in members:
            members.append(member)

    def topics(self) -> List[str]:
        return list(self._topics)

    def receive(self, message: Any, sender: Process) -> None:
        if not isinstance(message, Publish):
            raise TypeError(f"{self.name}: unexpected message {message!r}")
        topic = message.envelope.event_class
        members = self._topics.get(topic, [])
        # Topic lookup is a single hash probe: count one evaluation, like
        # matching the one-attribute filter g3.
        self.counters.on_event(
            matched=bool(members),
            forwarded_to=len(members),
            evaluations=1,
        )
        for member in members:
            self.network.send(self, member, message)


class TopicBasedSystem(BaselineSystem):
    """Facade: one topic per event class, local content filtering."""

    def __init__(self, seed: int = 0, link_latency: float = 0.001):
        super().__init__(seed=seed, link_latency=link_latency)
        self.hub = TopicHub(self.sim, self.network)

    def _entry_point(self) -> Process:
        return self.hub

    def subscribe(
        self,
        subscriber: EdgeSubscriber,
        filter: FilterLike = None,
        event_class: str = "",
        handler: Optional[Handler] = None,
        residual: Optional[Callable[[Any], bool]] = None,
    ) -> Subscription:
        if not event_class:
            raise ValueError("topic-based subscriptions need an event class (topic)")
        subscription = self._make_subscription(filter, event_class, residual)
        subscriber.add_subscription(subscription, handler)
        self.hub.join(event_class, subscriber)
        return subscription
