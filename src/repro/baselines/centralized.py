"""The centralized architecture (§2.1, first bullet; Elvin-style).

One server holds *every* subscription and filters *every* event: its
Load Complexity per time unit equals ``total events x total
subscriptions``, i.e. ``RLC = 1`` — the yardstick the paper's RLC metric
normalizes against.  Subscribers receive only events their filters
matched, so edge matching rates are 1 by construction (the server did
the perfect filtering for them).
"""

from typing import Any, Callable, Optional, Union

from repro.baselines.common import (
    BaselineSystem,
    EdgeSubscriber,
    FilterLike,
    Handler,
)
from repro.core.subscription import Subscription
from repro.filters.index import CountingIndex
from repro.filters.table import FilterTable
from repro.metrics.counters import NodeCounters
from repro.overlay.messages import Publish
from repro.sim.kernel import Process, Simulator
from repro.sim.network import Network


class CentralServer(Process):
    """The single filtering server: all subscriptions, all events."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str = "central-server",
        engine: str = "index",
    ):
        super().__init__(sim, name)
        self.network = network
        self.table: Union[FilterTable, CountingIndex] = (
            CountingIndex() if engine == "index" else FilterTable()
        )
        self.counters = NodeCounters()
        self._subscription_count = 0

    def insert(self, subscription: Subscription, subscriber: EdgeSubscriber) -> None:
        self.table.insert(subscription.filter, subscriber)
        # The paper's centralized yardstick holds the *complete set of
        # subscriptions* — no weakening-based collapse — so the LC filter
        # count is the subscription count, not the deduplicated table size.
        # That is exactly what makes its RLC equal 1.
        self._subscription_count += 1
        self.counters.set_filters_held(self._subscription_count)

    def receive(self, message: Any, sender: Process) -> None:
        if not isinstance(message, Publish):
            raise TypeError(f"{self.name}: unexpected message {message!r}")
        matches = self.table.match(message.envelope.metadata)
        destinations = []
        seen = set()
        for _, ids in matches:
            for destination in ids:
                if id(destination) not in seen:
                    seen.add(id(destination))
                    destinations.append(destination)
        self.counters.on_event(
            matched=bool(matches),
            forwarded_to=len(destinations),
            evaluations=self._subscription_count,
        )
        for destination in destinations:
            self.network.send(self, destination, message)


class CentralizedSystem(BaselineSystem):
    """Facade: a single server between publishers and subscribers."""

    def __init__(self, seed: int = 0, link_latency: float = 0.001, engine: str = "index"):
        super().__init__(seed=seed, link_latency=link_latency)
        self.server = CentralServer(self.sim, self.network, engine=engine)

    def _entry_point(self) -> Process:
        return self.server

    def subscribe(
        self,
        subscriber: EdgeSubscriber,
        filter: FilterLike = None,
        event_class: str = "",
        handler: Optional[Handler] = None,
        residual: Optional[Callable[[Any], bool]] = None,
    ) -> Subscription:
        subscription = self._make_subscription(filter, event_class, residual)
        subscriber.add_subscription(subscription, handler)
        self.server.insert(subscription, subscriber)
        return subscription

    def server_rlc(self) -> float:
        """The server's RLC — 1.0 whenever it saw every event."""
        from repro.metrics.load import relative_load_complexity

        return relative_load_complexity(
            self.server.counters,
            total_events=self.total_events_published(),
            total_subscriptions=self.total_subscriptions(),
        )
