"""The broadcast architecture (§2.1, second bullet).

Group-communication style: the fabric delivers every published event to
every subscriber, and each subscriber "filter[s] out events that do not
match its local subscriptions at runtime".  Fully distributed — but each
subscriber's received-event count grows with the *total* publication
rate, which is why the paper says it "does not scale well when the
number of publishers and the message frequency increase".
"""

from typing import Any, Callable, Optional

from repro.baselines.common import (
    BaselineSystem,
    EdgeSubscriber,
    FilterLike,
    Handler,
)
from repro.core.subscription import Subscription
from repro.metrics.counters import NodeCounters
from repro.overlay.messages import Publish
from repro.sim.kernel import Process, Simulator
from repro.sim.network import Network


class BroadcastFabric(Process):
    """Models the group-communication layer: no filtering, pure fan-out."""

    def __init__(self, sim: Simulator, network: Network, name: str = "broadcast-group"):
        super().__init__(sim, name)
        self.network = network
        self.members = []
        self.counters = NodeCounters()

    def join(self, member: EdgeSubscriber) -> None:
        if member not in self.members:
            self.members.append(member)

    def receive(self, message: Any, sender: Process) -> None:
        if not isinstance(message, Publish):
            raise TypeError(f"{self.name}: unexpected message {message!r}")
        # The fabric holds no filters: LC contribution is zero, the cost
        # shows up as per-subscriber load instead.
        self.counters.on_event(
            matched=bool(self.members),
            forwarded_to=len(self.members),
            evaluations=0,
        )
        for member in self.members:
            self.network.send(self, member, message)


class BroadcastSystem(BaselineSystem):
    """Facade: flood everything, filter at every edge."""

    def __init__(self, seed: int = 0, link_latency: float = 0.001):
        super().__init__(seed=seed, link_latency=link_latency)
        self.fabric = BroadcastFabric(self.sim, self.network)

    def _entry_point(self) -> Process:
        return self.fabric

    def subscribe(
        self,
        subscriber: EdgeSubscriber,
        filter: FilterLike = None,
        event_class: str = "",
        handler: Optional[Handler] = None,
        residual: Optional[Callable[[Any], bool]] = None,
    ) -> Subscription:
        subscription = self._make_subscription(filter, event_class, residual)
        subscriber.add_subscription(subscription, handler)
        self.fabric.join(subscriber)
        return subscription
