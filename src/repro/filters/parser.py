"""A small textual language for conjunctive filters.

Grammar (case-insensitive keywords; ``and`` binds tighter than ``or``,
no parentheses)::

    filter  := 'true' | 'false' | branch ('or' branch)*
    branch  := clause ('and' clause)*
    clause  := attr op value | attr 'exists' | attr '=' '*'
    op      := '=' | '==' | '!=' | '<>' | '<' | '<=' | '>' | '>='
             | 'prefix' | 'contains'
    value   := "string" | 'string' | number | true | false | bareword

Examples::

    parse_filter('class = "Stock" and symbol = "Foo" and price < 10')
    parse_filter('title exists and year >= 2000')
    parse_filter('symbol = *')          # wildcard (ALL) constraint
    parse_filter('symbol = "A" or symbol = "B"')   # -> Disjunction
    parse_filter('true')                # fT
    parse_filter('false')               # fF

This is a developer convenience on top of the programmatic API (the paper
expresses filters in host-language syntax); it intentionally supports only
the conjunctive fragment the overlay can weaken.
"""

import re
from typing import Any, List, Tuple, Union

from repro.filters.constraints import AttributeConstraint
from repro.filters.disjunction import Disjunction
from repro.filters.filter import Filter
from repro.filters.operators import ALL, EXISTS, operator_by_symbol

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
      | (?P<number>-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)
      | (?P<op><=|>=|==|!=|<>|=|<|>)
      | (?P<star>\*)
      | (?P<word>[A-Za-z_][A-Za-z0-9_.-]*)
    )
    """,
    re.VERBOSE,
)


class FilterParseError(ValueError):
    """Raised on malformed filter text."""


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise FilterParseError(f"unexpected character at {pos}: {text[pos:]!r}")
        kind = match.lastgroup
        tokens.append((kind, match.group(kind)))
        pos = match.end()
    return tokens


def _unquote(raw: str) -> str:
    body = raw[1:-1]
    return re.sub(r"\\(.)", r"\1", body)


def _parse_value(kind: str, raw: str) -> Any:
    if kind == "string":
        return _unquote(raw)
    if kind == "number":
        if re.fullmatch(r"-?\d+", raw):
            return int(raw)
        return float(raw)
    if kind == "word":
        lowered = raw.lower()
        if lowered == "true":
            return True
        if lowered == "false":
            return False
        return raw
    raise FilterParseError(f"expected a value, got {raw!r}")


def parse_filter(text: str) -> Union[Filter, Disjunction]:
    """Parse filter text.

    Returns a :class:`~repro.filters.filter.Filter` for purely
    conjunctive text, or a :class:`~repro.filters.disjunction.Disjunction`
    when top-level ``or`` appears.
    """
    stripped = text.strip().lower()
    if stripped == "true":
        return Filter.top()
    if stripped == "false":
        return Filter.bottom()

    tokens = _tokenize(text)
    if not tokens:
        raise FilterParseError("empty filter text")

    branches: List[Filter] = []
    constraints: List[AttributeConstraint] = []
    i = 0
    while i < len(tokens):
        kind, raw = tokens[i]
        if kind != "word":
            raise FilterParseError(f"expected attribute name, got {raw!r}")
        attribute = raw
        i += 1
        if i >= len(tokens):
            raise FilterParseError(f"dangling attribute {attribute!r}")
        kind, raw = tokens[i]
        if kind == "word" and raw.lower() == "exists":
            constraints.append(AttributeConstraint(attribute, EXISTS))
            i += 1
        elif kind == "op" or (kind == "word" and raw.lower() in ("prefix", "contains")):
            symbol = raw.lower() if kind == "word" else raw
            operator = operator_by_symbol(symbol)
            i += 1
            if i >= len(tokens):
                raise FilterParseError(f"missing value after {attribute} {symbol}")
            vkind, vraw = tokens[i]
            i += 1
            if vkind == "star":
                if operator is not operator_by_symbol("="):
                    raise FilterParseError("wildcard '*' only allowed with '='")
                constraints.append(AttributeConstraint(attribute, ALL))
            else:
                constraints.append(
                    AttributeConstraint(attribute, operator, _parse_value(vkind, vraw))
                )
        else:
            raise FilterParseError(f"expected operator after {attribute!r}, got {raw!r}")

        if i < len(tokens):
            kind, raw = tokens[i]
            if kind == "word" and raw.lower() == "and":
                i += 1
                if i >= len(tokens):
                    raise FilterParseError("dangling 'and'")
            elif kind == "word" and raw.lower() == "or":
                branches.append(Filter(constraints))
                constraints = []
                i += 1
                if i >= len(tokens):
                    raise FilterParseError("dangling 'or'")
            else:
                raise FilterParseError(f"expected 'and' or 'or', got {raw!r}")
    branches.append(Filter(constraints))
    if len(branches) == 1:
        return branches[0]
    return Disjunction(branches)


def _render_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)


def render_filter(filter_: Union[Filter, Disjunction]) -> str:
    """Render a filter back to parseable text (inverse of ``parse_filter``).

    Round-trip property: ``parse_filter(render_filter(f)) == f`` for any
    filter whose operands are strings, numbers, or booleans (the types
    the text language can express).
    """
    if isinstance(filter_, Disjunction):
        return " or ".join(render_filter(branch) for branch in filter_.branches)
    if filter_.matches_nothing:
        return "false"
    if not filter_.constraints:
        return "true"
    clauses = []
    for constraint in filter_.constraints:
        if constraint.operator is ALL:
            clauses.append(f"{constraint.attribute} = *")
        elif constraint.operator is EXISTS:
            clauses.append(f"{constraint.attribute} exists")
        else:
            clauses.append(
                f"{constraint.attribute} {constraint.operator.symbol} "
                f"{_render_value(constraint.operand)}"
            )
    return " and ".join(clauses)
