"""Compiled bitmap matching engine — the batch hot path of the broker.

:class:`CountingIndex` already reduces matching to "harvest satisfied
constraints, count per filter", but every harvested constraint still
costs one interpreted Python dict increment, so an event that satisfies
many constraints (low-selectivity attributes, permissive range bounds)
pays thousands of per-handle operations.  This module compiles the
*indexable conjunctive parts* of the filter table into flat structures
evaluated with arbitrary-precision integers as bitsets, so the per-event
cost is a handful of attribute-granular bitmap operations (each a single
C-level pass over ``n/64`` machine words) instead of per-constraint
Python bookkeeping:

- every distinct stored filter owns a *slot* (a bit position);
- **equality** constraints become per-attribute hash buckets mapping
  ``value_key(operand)`` to a bitmap of the slots satisfied by that
  value;
- **ordering** constraints (``<``, ``<=``, ``>``, ``>=``) become, per
  attribute / operator / operand family, sorted operand arrays with
  precomputed block-cumulative prefix (or suffix) bitmaps: one bisect
  plus one block lookup plus at most ``_BLOCK - 1`` single-bit unions
  yields the whole satisfied-slot set.  (Per-position cumulative
  bitmaps would answer in exactly one lookup but cost O(n²/64) words of
  memory — 1.25 GB at 10⁵ operands — so cumulation is materialized at
  block granularity, an explicit time/space trade documented in
  DESIGN §12.);
- **conjunction satisfaction** is attribute-granular: ``C[a]`` is the
  bitmap of slots whose filter has an indexed constraint group on
  attribute ``a``, ``S[a]`` the slots whose group is satisfied by the
  event's value.  A slot matches the indexed tiers iff no attribute
  clears it: ``acc &= ~(C[a] & ~S[a])`` for present attributes and
  ``acc &= ~C[a]`` for absent ones — the bitmap-intersection equivalent
  of the counting algorithm's per-handle required-count check, with the
  popcount bookkeeping replaced by word-parallel masking;
- **residual** predicates (``NE``/``PREFIX``/``CONTAINS``, multi-
  constraint groups on one attribute, boolean or unhashable operands)
  are evaluated interpretively, but only on the candidates that
  survived every indexed tier.

Mutations never rebuild eagerly: they update cheap per-attribute source
structures (operand lists, slot sets) and mark the attribute *dirty*;
the next match recompiles only the dirty attributes' bitmaps (bulk bit
assembly goes through a ``bytearray`` so a full attribute rebuild is
O(n/8) bytes plus one ``int.from_bytes``).  Control-plane churn
(insert / remove / lease expiry) therefore costs amortized O(affected
attributes), not a full table recompile.

Semantics are bit-for-bit identical to :class:`CountingIndex` /
:class:`FilterTable` (the differential hypothesis suite in
``tests/filters/test_differential.py`` arbitrates), including the
bool-vs-number equality discrimination of :func:`value_key` and the
operand-family separation of :func:`values_comparable`.

An optional numpy fast path (extra ``perf = ["numpy"]``) vectorizes the
range-tier bisects across a whole :meth:`match_batch` call; the pure-
Python bitmap tier stands alone and remains the default.
"""

import bisect
from typing import Any, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.filters.constraints import AttributeConstraint
from repro.filters.engine import MatchEngine, value_key
from repro.filters.filter import Filter
from repro.filters.operators import ALL, EQ, EXISTS, GE, GT, LE, LT

try:  # pragma: no cover - exercised via the numpy-path tests when present
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

#: Block size of the cumulative range-tier bitmaps: memory is
#: ``n / _BLOCK`` full-width bitmaps per tier, query cost is one block
#: lookup plus at most ``_BLOCK - 1`` single-bit unions.
_BLOCK = 32


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


def _family_of(value: Any) -> Optional[str]:
    """Operand family for the range tier (None = not range-indexable).

    Mirrors :func:`~repro.filters.operators.values_comparable`: booleans
    are excluded from the numeric family, so a boolean operand (or probe
    value) never touches the sorted arrays.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        return "str"
    return None


def _bitmap_of(slots: Sequence[int], size: int) -> int:
    """Assemble a bitmap from slot indices via bytearray bit-setting.

    O(size/8) bytes + O(len(slots)) single-byte ORs + one
    ``int.from_bytes`` — the bulk-rebuild primitive that keeps dirty-
    attribute recompiles linear instead of quadratic (repeated
    ``bitmap |= 1 << slot`` copies the growing bitmap every time).
    """
    if not slots:
        return 0
    raw = bytearray((size >> 3) + 1)
    for slot in slots:
        raw[slot >> 3] |= 1 << (slot & 7)
    return int.from_bytes(raw, "little")


class _RangeTier:
    """Sorted operands + block-cumulative bitmaps for one (op, family).

    ``cumulative[k]`` is the OR of the slot bits of the first
    ``k * _BLOCK`` sorted entries (``reverse=False``, the prefix form
    used by ``>`` / ``>=``) or of the entries from ``k * _BLOCK`` on
    (``reverse=True``, the suffix form used by ``<`` / ``<=``).  A
    query bisects to the satisfied run's boundary and assembles
    ``cumulative[boundary block] | partial-block bits``.
    """

    __slots__ = ("operands", "slots", "cumulative", "reverse", "float_cache")

    def __init__(self, reverse: bool) -> None:
        self.operands: List[Any] = []
        self.slots: List[int] = []
        self.cumulative: List[int] = []
        self.reverse = reverse
        #: Lazily built numpy float64 copy of ``operands`` for the
        #: vectorized batch path: ``None`` = not built yet, ``False`` =
        #: operands don't round-trip exactly through float (ineligible).
        self.float_cache: Any = None

    def insert(self, operand: Any, slot: int) -> None:
        position = bisect.bisect_right(self.operands, operand)
        self.operands.insert(position, operand)
        self.slots.insert(position, slot)

    def remove(self, operand: Any, slot: int) -> bool:
        position = bisect.bisect_left(self.operands, operand)
        end = len(self.operands)
        while position < end and self.operands[position] == operand:
            if self.slots[position] == slot:
                del self.operands[position]
                del self.slots[position]
                return True
            position += 1
        return False

    def recompile(self) -> None:
        """Rebuild the block-cumulative bitmaps from the sorted arrays."""
        self.float_cache = None
        slots = self.slots
        n = len(slots)
        blocks = (n + _BLOCK - 1) // _BLOCK
        self.cumulative = cumulative = [0] * (blocks + 1)
        if not n:
            return
        size = max(slots)
        running = 0
        if self.reverse:
            for k in range(blocks - 1, -1, -1):
                running |= _bitmap_of(slots[k * _BLOCK:(k + 1) * _BLOCK], size)
                cumulative[k] = running
        else:
            for k in range(1, blocks + 1):
                running |= _bitmap_of(slots[(k - 1) * _BLOCK:k * _BLOCK], size)
                cumulative[k] = running

    def satisfied_from(self, boundary: int) -> int:
        """Bitmap of slots in the satisfied run.

        For the prefix form the run is ``[0, boundary)``; for the suffix
        form it is ``[boundary, n)``.  ``boundary`` comes from a bisect.
        """
        slots = self.slots
        if self.reverse:
            if boundary >= len(slots):
                return 0
            block = (boundary + _BLOCK - 1) // _BLOCK
            result = self.cumulative[block]
            for position in range(boundary, min(block * _BLOCK, len(slots))):
                result |= 1 << slots[position]
        else:
            if boundary <= 0:
                return 0
            block = boundary // _BLOCK
            result = self.cumulative[block]
            for position in range(block * _BLOCK, boundary):
                result |= 1 << slots[position]
        return result


class _CompiledAttribute:
    """Compiled structures for every indexed constraint group on one
    attribute, rebuilt lazily while ``dirty`` is set."""

    __slots__ = (
        "eq_slots",
        "eq_bitmaps",
        "exists_slots",
        "exists_bitmap",
        "tiers",
        "constrained",
        "dirty",
    )

    #: (operator, tier key, suffix?) rows of the range tier layout.
    _TIER_OPS = ((LT, "lt", True), (LE, "le", True), (GT, "gt", False), (GE, "ge", False))

    def __init__(self) -> None:
        #: value_key -> insertion-ordered slot dict (the mutation-side
        #: source of truth; bitmaps are compiled from it).
        self.eq_slots: Dict[Any, Dict[int, None]] = {}
        self.eq_bitmaps: Dict[Any, int] = {}
        self.exists_slots: Dict[int, None] = {}
        self.exists_bitmap = 0
        #: (tier key, family) -> _RangeTier.
        self.tiers: Dict[Tuple[str, str], _RangeTier] = {}
        #: Bitmap of slots with an indexed group on this attribute (C[a]).
        self.constrained = 0
        self.dirty = True

    def is_empty(self) -> bool:
        return not (self.eq_slots or self.exists_slots or any(
            tier.slots for tier in self.tiers.values()
        ))

    # -- mutation side (cheap; bitmaps rebuilt lazily) -------------------

    def insert(self, constraint: AttributeConstraint, slot: int) -> None:
        op = constraint.operator
        if op is EQ:
            self.eq_slots.setdefault(value_key(constraint.operand), {})[slot] = None
        elif op is EXISTS:
            self.exists_slots[slot] = None
        else:
            self._tier_for(constraint).insert(constraint.operand, slot)
        self.dirty = True

    def remove(self, constraint: AttributeConstraint, slot: int) -> None:
        op = constraint.operator
        if op is EQ:
            key = value_key(constraint.operand)
            slots = self.eq_slots.get(key)
            if slots is not None:
                slots.pop(slot, None)
                if not slots:
                    del self.eq_slots[key]
        elif op is EXISTS:
            self.exists_slots.pop(slot, None)
        else:
            self._tier_for(constraint).remove(constraint.operand, slot)
        self.dirty = True

    def _tier_for(self, constraint: AttributeConstraint) -> _RangeTier:
        family = _family_of(constraint.operand)
        assert family is not None, "caller guarantees range-indexability"
        for op, key, reverse in self._TIER_OPS:
            if constraint.operator is op:
                tier = self.tiers.get((key, family))
                if tier is None:
                    tier = self.tiers[(key, family)] = _RangeTier(reverse)
                return tier
        raise AssertionError(f"not a range operator: {constraint.operator!r}")

    # -- compilation -----------------------------------------------------

    def recompile(self, size: int) -> None:
        """Rebuild every bitmap of this attribute (dirty-granularity)."""
        self.eq_bitmaps = {
            key: _bitmap_of(list(slots), size)
            for key, slots in self.eq_slots.items()
        }
        self.exists_bitmap = _bitmap_of(list(self.exists_slots), size)
        constrained = self.exists_bitmap
        for bitmap in self.eq_bitmaps.values():
            constrained |= bitmap
        for key in [k for k, tier in self.tiers.items() if not tier.slots]:
            del self.tiers[key]
        for tier in self.tiers.values():
            tier.recompile()
            constrained |= _bitmap_of(tier.slots, size)
        self.constrained = constrained
        self.dirty = False

    # -- the hot path ----------------------------------------------------

    def satisfied_by(self, value: Any) -> int:
        """Bitmap of slots whose indexed group is satisfied by ``value``."""
        satisfied = self.exists_bitmap
        if _hashable(value):
            bucket = self.eq_bitmaps.get(value_key(value))
            if bucket is not None:
                satisfied |= bucket
        if self.tiers:
            family = _family_of(value)
            if family is not None:
                satisfied |= self._ranges_satisfied(family, value)
        return satisfied

    def _ranges_satisfied(self, family: str, value: Any) -> int:
        satisfied = 0
        tiers = self.tiers
        # attr < x satisfied iff x > value: suffix past bisect_right.
        tier = tiers.get(("lt", family))
        if tier is not None:
            satisfied |= tier.satisfied_from(bisect.bisect_right(tier.operands, value))
        # attr <= x satisfied iff x >= value: suffix past bisect_left.
        tier = tiers.get(("le", family))
        if tier is not None:
            satisfied |= tier.satisfied_from(bisect.bisect_left(tier.operands, value))
        # attr > x satisfied iff x < value: prefix up to bisect_left.
        tier = tiers.get(("gt", family))
        if tier is not None:
            satisfied |= tier.satisfied_from(bisect.bisect_left(tier.operands, value))
        # attr >= x satisfied iff x <= value: prefix up to bisect_right.
        tier = tiers.get(("ge", family))
        if tier is not None:
            satisfied |= tier.satisfied_from(bisect.bisect_right(tier.operands, value))
        return satisfied


def _indexable_group(
    constraints: Sequence[AttributeConstraint],
) -> Optional[AttributeConstraint]:
    """The group's single indexable constraint, or None (residual group).

    A group compiles iff it holds exactly one constraint and that
    constraint fits a flat tier: equality with a hashable operand,
    ``exists``, or an ordering operator with a non-boolean numeric or
    string operand.  Everything else — multi-constraint conjunctions on
    one attribute (interval subscriptions), ``NE``/``PREFIX``/
    ``CONTAINS``, boolean or unhashable operands — stays interpreted,
    but only runs on candidates that survived the compiled tiers.
    """
    if len(constraints) != 1:
        return None
    constraint = constraints[0]
    op = constraint.operator
    if op is EQ:
        return constraint if _hashable(constraint.operand) else None
    if op is EXISTS:
        return constraint
    if op in (LT, LE, GT, GE) and _family_of(constraint.operand) is not None:
        return constraint
    return None


class CompiledMatchEngine(MatchEngine):
    """Drop-in :class:`MatchEngine` with a compiled bitmap hot path.

    Match results — entries, ordering, destination tuples — are
    identical to :class:`CountingIndex`; only the evaluation strategy
    (and therefore the ``evaluations`` work accounting) differs.

    ``use_numpy=None`` (default) auto-detects numpy and uses it to
    vectorize :meth:`match_batch` range bisects; ``False`` forces the
    pure-Python path (the two are result-identical — numpy only
    computes bisect positions, and only over operand runs that
    round-trip exactly through ``float``).
    """

    def __init__(self, use_numpy: Optional[bool] = None) -> None:
        self._attributes: Dict[str, _CompiledAttribute] = {}
        self._filters: Dict[Filter, int] = {}
        self._by_handle: Dict[int, Filter] = {}
        self._ids: Dict[int, Dict[Hashable, None]] = {}
        self._dests: Dict[Hashable, Dict[int, None]] = {}
        #: handle -> slot (bit position); slots are recycled on removal
        #: so bitmaps stay dense, handles stay monotonic for ordering.
        self._slot_of: Dict[int, int] = {}
        self._handle_at: Dict[int, int] = {}
        self._free_slots: List[int] = []
        self._next_handle = 0
        self._next_slot = 0
        #: Bitmap of live slots (the all-candidates starting mask).
        self._live = 0
        #: Bitmap of slots with at least one residual constraint group.
        self._residual_mask = 0
        #: slot -> tuple of residual constraints (absence-aware eval).
        self._residuals: Dict[int, Tuple[AttributeConstraint, ...]] = {}
        #: Constraint probes performed (LC bookkeeping: one per present
        #: indexed attribute probed + one per residual predicate run).
        self.evaluations = 0
        #: Dirty-attribute recompiles performed (metrics counter feed).
        self.rebuilds = 0
        #: Residual predicates evaluated on surviving candidates.
        self.residual_evaluations = 0
        if use_numpy is None:
            use_numpy = _numpy is not None
        if use_numpy and _numpy is None:
            raise ValueError("use_numpy=True but numpy is not importable")
        self.use_numpy = bool(use_numpy)

    # ------------------------------------------------------------------
    # Introspection (MatchEngine surface)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._filters)

    def __contains__(self, filter_: Filter) -> bool:
        return filter_ in self._filters

    def filters(self) -> Iterator[Filter]:
        return iter(self._filters)

    def entries(self) -> Iterator[Tuple[Filter, Tuple[Hashable, ...]]]:
        for filter_, handle in self._filters.items():
            yield filter_, tuple(self._ids[handle])

    def destinations_for(self, filter_: Filter) -> Tuple[Hashable, ...]:
        handle = self._filters.get(filter_)
        if handle is None:
            return ()
        return tuple(self._ids[handle])

    # ------------------------------------------------------------------
    # Mutation (updates source structures, marks attributes dirty)
    # ------------------------------------------------------------------

    def insert(self, filter_: Filter, destination: Hashable) -> None:
        if filter_.matches_nothing:
            raise ValueError("cannot index fF (matches nothing)")
        handle = self._filters.get(filter_)
        if handle is None:
            handle = self._next_handle
            self._next_handle += 1
            slot = self._free_slots.pop() if self._free_slots else self._next_slot
            if slot == self._next_slot:
                self._next_slot += 1
            self._filters[filter_] = handle
            self._by_handle[handle] = filter_
            self._ids[handle] = {}
            self._slot_of[handle] = slot
            self._handle_at[slot] = handle
            self._live |= 1 << slot
            self._register(filter_, slot)
        ids = self._ids[handle]
        if destination not in ids:
            ids[destination] = None
            self._dests.setdefault(destination, {})[handle] = None

    def remove(self, filter_: Filter, destination: Hashable) -> bool:
        handle = self._filters.get(filter_)
        if handle is None:
            return False
        ids = self._ids[handle]
        if destination not in ids:
            return False
        del ids[destination]
        handles = self._dests[destination]
        handles.pop(handle, None)
        if not handles:
            del self._dests[destination]
        if not ids:
            self._unregister(filter_, handle)
        return True

    def remove_destination(self, destination: Hashable) -> int:
        handles = self._dests.get(destination)
        if not handles:
            return 0
        removed = 0
        for handle in sorted(handles):
            if self.remove(self._by_handle[handle], destination):
                removed += 1
        return removed

    def _register(self, filter_: Filter, slot: int) -> None:
        residuals: List[AttributeConstraint] = []
        for attribute, group in filter_.constraints_by_attribute().items():
            countable = tuple(c for c in group if c.operator is not ALL)
            if not countable:
                continue
            indexed = _indexable_group(countable)
            if indexed is None:
                residuals.extend(countable)
                continue
            index = self._attributes.get(attribute)
            if index is None:
                index = self._attributes[attribute] = _CompiledAttribute()
            index.insert(indexed, slot)
        if residuals:
            self._residuals[slot] = tuple(residuals)
            self._residual_mask |= 1 << slot

    def _unregister(self, filter_: Filter, handle: int) -> None:
        slot = self._slot_of.pop(handle)
        del self._handle_at[slot]
        for attribute, group in filter_.constraints_by_attribute().items():
            countable = tuple(c for c in group if c.operator is not ALL)
            if not countable:
                continue
            indexed = _indexable_group(countable)
            if indexed is None:
                continue
            index = self._attributes.get(attribute)
            if index is not None:
                index.remove(indexed, slot)
                if index.is_empty():
                    del self._attributes[attribute]
        if slot in self._residuals:
            del self._residuals[slot]
            self._residual_mask &= ~(1 << slot)
        self._live &= ~(1 << slot)
        self._free_slots.append(slot)
        del self._filters[filter_]
        del self._by_handle[handle]
        del self._ids[handle]

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _recompile_dirty(self) -> None:
        """Rebuild only the attributes mutated since the last match."""
        size = self._next_slot
        for index in self._attributes.values():
            if index.dirty:
                index.recompile(size)
                self.rebuilds += 1

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def match(self, event: Any) -> List[Tuple[Filter, Tuple[Hashable, ...]]]:
        if not self._filters:
            return []
        self._recompile_dirty()
        properties = getattr(event, "properties", event)
        return self._materialize(self._match_bitmap(properties))

    def match_batch(
        self, events: Sequence[Any]
    ) -> List[List[Tuple[Filter, Tuple[Hashable, ...]]]]:
        """Match a whole run of events in one pass over the structures.

        Dirty attributes recompile once for the run; with numpy present
        the range-tier bisect positions for all events are computed in a
        single vectorized ``searchsorted`` per tier.
        """
        if not self._filters:
            return [[] for _ in events]
        self._recompile_dirty()
        properties = [getattr(event, "properties", event) for event in events]
        hints = self._numpy_hints(properties) if self.use_numpy else None
        return [
            self._materialize(self._match_bitmap(props, hints, position))
            for position, props in enumerate(properties)
        ]

    def _match_bitmap(
        self,
        properties: Any,
        hints: Optional[Dict[Tuple[str, str, str], Any]] = None,
        position: int = 0,
    ) -> int:
        acc = self._live
        probes = 0
        for attribute, index in self._attributes.items():
            constrained = index.constrained
            if not acc & constrained:
                continue
            if attribute in properties:
                probes += 1
                value = properties[attribute]
                if hints is not None:
                    satisfied = self._satisfied_with_hints(
                        index, attribute, value, hints, position
                    )
                else:
                    satisfied = index.satisfied_by(value)
                acc &= ~(constrained & ~satisfied)
            else:
                # Absent attribute: every non-ALL constraint on it fails.
                acc &= ~constrained
            if not acc:
                break
        self.evaluations += probes
        if acc & self._residual_mask:
            acc = self._apply_residuals(acc, properties)
        return acc

    def _apply_residuals(self, acc: int, properties: Any) -> int:
        pending = acc & self._residual_mask
        evaluated = 0
        while pending:
            low = pending & -pending
            pending ^= low
            slot = low.bit_length() - 1
            for constraint in self._residuals[slot]:
                evaluated += 1
                if not constraint.matches(properties):
                    acc ^= low
                    break
        self.residual_evaluations += evaluated
        self.evaluations += evaluated
        return acc

    def _materialize(self, acc: int) -> List[Tuple[Filter, Tuple[Hashable, ...]]]:
        if not acc:
            return []
        handle_at = self._handle_at
        matched: List[int] = []
        while acc:
            low = acc & -acc
            acc ^= low
            matched.append(handle_at[low.bit_length() - 1])
        matched.sort()  # filter insertion order, like CountingIndex
        return [
            (self._by_handle[handle], tuple(self._ids[handle])) for handle in matched
        ]

    # ------------------------------------------------------------------
    # Optional numpy fast path (vectorized batch bisects)
    # ------------------------------------------------------------------

    def _numpy_hints(
        self, properties: Sequence[Any]
    ) -> Optional[Dict[Tuple[str, str, str], Any]]:
        """Precompute per-tier bisect positions for the whole batch.

        Only numeric tiers whose operands (and the batch's probe values)
        round-trip exactly through ``float`` are vectorized; anything
        else silently falls back to the per-event pure-Python bisect, so
        the fast path can never change a match result.
        """
        hints: Dict[Tuple[str, str, str], Any] = {}
        for attribute, index in self._attributes.items():
            for (key, family), tier in index.tiers.items():
                if family != "num" or len(tier.operands) < _BLOCK:
                    continue
                if tier.float_cache is None:
                    if all(_exact_float(op) for op in tier.operands):
                        tier.float_cache = _numpy.asarray(tier.operands, dtype=float)
                    else:
                        tier.float_cache = False
                if tier.float_cache is False:
                    continue
                values = []
                for props in properties:
                    value = props.get(attribute) if hasattr(props, "get") else None
                    if (
                        value is not None
                        and _family_of(value) == "num"
                        and _exact_float(value)
                    ):
                        values.append(float(value))
                    else:
                        values.append(_numpy.nan)
                side = "right" if key in ("lt", "ge") else "left"
                positions = _numpy.searchsorted(
                    tier.float_cache, _numpy.asarray(values), side=side
                )
                hints[(attribute, key, family)] = (positions, values)
        return hints or None

    def _satisfied_with_hints(
        self,
        index: _CompiledAttribute,
        attribute: str,
        value: Any,
        hints: Dict[Tuple[str, str, str], Any],
        position: int,
    ) -> int:
        satisfied = index.exists_bitmap
        if _hashable(value):
            bucket = index.eq_bitmaps.get(value_key(value))
            if bucket is not None:
                satisfied |= bucket
        if index.tiers:
            family = _family_of(value)
            if family is not None:
                for (key, tier_family), tier in index.tiers.items():
                    if tier_family != family:
                        continue
                    hint = hints.get((attribute, key, tier_family))
                    if hint is not None and hint[1][position] == hint[1][position]:
                        boundary = int(hint[0][position])
                    elif key in ("lt", "ge"):
                        boundary = bisect.bisect_right(tier.operands, value)
                    else:
                        boundary = bisect.bisect_left(tier.operands, value)
                    satisfied |= tier.satisfied_from(boundary)
        return satisfied

    def __repr__(self) -> str:
        return (
            f"CompiledMatchEngine({len(self)} filters, "
            f"{len(self._attributes)} attributes, {self.rebuilds} rebuilds)"
        )


def _exact_float(value: Any) -> bool:
    """True when ``float(value)`` represents ``value`` exactly."""
    if isinstance(value, float):
        return value == value  # NaN operands stay on the exact path's fallback
    try:
        return float(value) == value
    except OverflowError:
        return False
