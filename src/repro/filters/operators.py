"""Constraint operators and the implication relation between constraints.

The paper writes constraints as name-value-operator tuples, e.g.
``(price, 5.0, >)``.  An operator here is a singleton object that knows

- how to *evaluate* itself against an attribute value, and
- when one constraint *implies* another on the same attribute, i.e.
  ``forall v: op1(v, x1) -> op2(v, x2)``.

Implication is the ground truth under filter covering (Definition 2): a
filter ``f`` covers ``f'`` when every constraint of ``f`` is implied by
``f'``'s constraints on the same attribute.

Semantics of missing attributes: a constraint on an attribute the event
does not carry evaluates to ``False`` — except ``ALL``, the wildcard of
Section 4.4, which always evaluates to ``True``.  Consequently every
non-``ALL`` constraint implies ``EXISTS``.

Implication is deliberately *sound but not complete*: a ``True`` answer is
a proof, a ``False`` answer may mean "cannot prove".  Completeness is not
needed — Proposition 1 only requires that filters used for pre-filtering
really cover the originals.
"""

from typing import Any, Dict


def values_comparable(a: Any, b: Any) -> bool:
    """True when ``a < b`` is meaningful (same comparable family).

    Booleans are deliberately excluded from the numeric family: treating
    ``True`` as ``1`` in subscriptions is never what a user means.
    """
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return isinstance(a, str) and isinstance(b, str)


class Operator:
    """Base class for constraint operators.

    Each operator is a stateless singleton; identity comparison is safe.
    ``symbol`` is the textual form used by the parser and ``repr``.
    """

    symbol: str = "?"
    #: Operators that ignore their operand (EXISTS, ALL).
    nullary: bool = False

    def evaluate(self, value: Any, operand: Any, present: bool) -> bool:
        """Evaluate the constraint for an attribute.

        ``value`` is the attribute's value (undefined when ``present`` is
        False); ``operand`` is the constraint's right-hand side.
        """
        raise NotImplementedError

    def implies(self, operand: Any, other: "Operator", other_operand: Any) -> bool:
        """Sound check of ``forall v: self(v, operand) -> other(v, other_operand)``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.symbol

    def __reduce__(self):
        # Operators are singletons compared with ``is``; unpickle to the
        # canonical instance, never a fresh copy (identity must survive
        # the real-runtime backend's wire serialization).
        return (operator_by_symbol, (self.symbol,))


class _All(Operator):
    """Wildcard: matches any value, including absent attributes (§4.4)."""

    symbol = "ALL"
    nullary = True

    def evaluate(self, value: Any, operand: Any, present: bool) -> bool:
        return True

    def implies(self, operand: Any, other: Operator, other_operand: Any) -> bool:
        # ALL is satisfied by *every* event, so it only implies constraints
        # that are also tautologies — i.e. ALL itself.
        return other is ALL


class _Exists(Operator):
    """Matches when the attribute is present, whatever its value."""

    symbol = "exists"
    nullary = True

    def evaluate(self, value: Any, operand: Any, present: bool) -> bool:
        return present

    def implies(self, operand: Any, other: Operator, other_operand: Any) -> bool:
        return other is ALL or other is EXISTS


class _Eq(Operator):
    symbol = "="

    def evaluate(self, value: Any, operand: Any, present: bool) -> bool:
        if not present:
            return False
        if type(value) is type(operand):
            return value == operand
        # Cross-type equality only within the numeric family (1 == 1.0).
        return values_comparable(value, operand) and value == operand

    def implies(self, operand: Any, other: Operator, other_operand: Any) -> bool:
        # v == operand, so the implied constraint holds iff it matches the
        # operand itself.
        return other.evaluate(operand, other_operand, present=True)


class _Ne(Operator):
    symbol = "!="

    def evaluate(self, value: Any, operand: Any, present: bool) -> bool:
        if not present:
            return False
        if not values_comparable(value, operand) and type(value) is not type(operand):
            # Different families are trivially unequal.
            return True
        return value != operand

    def implies(self, operand: Any, other: Operator, other_operand: Any) -> bool:
        if other is ALL or other is EXISTS:
            return True
        if other is NE:
            return values_comparable(operand, other_operand) and operand == other_operand
        return False


class _Ordering(Operator):
    """Shared implementation for <, <=, >, >=."""

    def compare(self, value: Any, operand: Any) -> bool:
        raise NotImplementedError

    def evaluate(self, value: Any, operand: Any, present: bool) -> bool:
        if not present or not values_comparable(value, operand):
            return False
        return self.compare(value, operand)


class _Lt(_Ordering):
    symbol = "<"

    def compare(self, value: Any, operand: Any) -> bool:
        return value < operand

    def implies(self, operand: Any, other: Operator, other_operand: Any) -> bool:
        if other is ALL or other is EXISTS:
            return True
        if not values_comparable(operand, other_operand):
            return False
        if other is LT:
            return operand <= other_operand  # v < x <= y  =>  v < y
        if other is LE:
            return operand <= other_operand  # v < x <= y  =>  v <= y (v < y even)
        if other is NE:
            return other_operand >= operand  # v < x <= y  =>  v != y
        return False


class _Le(_Ordering):
    symbol = "<="

    def compare(self, value: Any, operand: Any) -> bool:
        return value <= operand

    def implies(self, operand: Any, other: Operator, other_operand: Any) -> bool:
        if other is ALL or other is EXISTS:
            return True
        if not values_comparable(operand, other_operand):
            return False
        if other is LT:
            return operand < other_operand  # v <= x < y  =>  v < y
        if other is LE:
            return operand <= other_operand
        if other is NE:
            return other_operand > operand
        return False


class _Gt(_Ordering):
    symbol = ">"

    def compare(self, value: Any, operand: Any) -> bool:
        return value > operand

    def implies(self, operand: Any, other: Operator, other_operand: Any) -> bool:
        if other is ALL or other is EXISTS:
            return True
        if not values_comparable(operand, other_operand):
            return False
        if other is GT:
            return operand >= other_operand
        if other is GE:
            return operand >= other_operand
        if other is NE:
            return other_operand <= operand
        return False


class _Ge(_Ordering):
    symbol = ">="

    def compare(self, value: Any, operand: Any) -> bool:
        return value >= operand

    def implies(self, operand: Any, other: Operator, other_operand: Any) -> bool:
        if other is ALL or other is EXISTS:
            return True
        if not values_comparable(operand, other_operand):
            return False
        if other is GT:
            return operand > other_operand
        if other is GE:
            return operand >= other_operand
        if other is NE:
            return other_operand < operand
        return False


class _Prefix(Operator):
    symbol = "prefix"

    def evaluate(self, value: Any, operand: Any, present: bool) -> bool:
        if not present or not isinstance(value, str) or not isinstance(operand, str):
            return False
        return value.startswith(operand)

    def implies(self, operand: Any, other: Operator, other_operand: Any) -> bool:
        if other is ALL or other is EXISTS:
            return True
        if not isinstance(operand, str) or not isinstance(other_operand, str):
            return False
        if other is PREFIX:
            # startswith("abc") implies startswith("ab")
            return operand.startswith(other_operand)
        if other is CONTAINS:
            # startswith("abc") implies "bc" in value, for substrings of the prefix
            return other_operand in operand
        return False


class _Contains(Operator):
    symbol = "contains"

    def evaluate(self, value: Any, operand: Any, present: bool) -> bool:
        if not present or not isinstance(value, str) or not isinstance(operand, str):
            return False
        return operand in value

    def implies(self, operand: Any, other: Operator, other_operand: Any) -> bool:
        if other is ALL or other is EXISTS:
            return True
        if other is CONTAINS:
            return (
                isinstance(operand, str)
                and isinstance(other_operand, str)
                and other_operand in operand
            )
        return False


#: Singleton instances — compare with ``is``.
ALL = _All()
EXISTS = _Exists()
EQ = _Eq()
NE = _Ne()
LT = _Lt()
LE = _Le()
GT = _Gt()
GE = _Ge()
PREFIX = _Prefix()
CONTAINS = _Contains()

_BY_SYMBOL: Dict[str, Operator] = {
    op.symbol: op for op in (ALL, EXISTS, EQ, NE, LT, LE, GT, GE, PREFIX, CONTAINS)
}
# Accepted aliases.
_BY_SYMBOL["=="] = EQ
_BY_SYMBOL["<>"] = NE


def operator_by_symbol(symbol: str) -> Operator:
    """Look up an operator by its textual symbol (``'='``, ``'<'``, ...)."""
    try:
        return _BY_SYMBOL[symbol]
    except KeyError:
        raise KeyError(
            f"unknown operator {symbol!r}; known: {sorted(_BY_SYMBOL)}"
        ) from None
