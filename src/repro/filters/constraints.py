"""Attribute constraints — the name-value-operator tuples of the paper.

A constraint such as ``(price, 5.0, >)`` is modelled by
:class:`AttributeConstraint`.  Besides evaluation, this module implements
*conjunction implication*: deciding whether a set of constraints on one
attribute guarantees another constraint on that attribute.  That is the
per-attribute core of filter covering (Definition 2).

Two proof strategies are combined:

1. pairwise — some single constraint implies the target
   (:meth:`Operator.implies`);
2. interval analysis — ordering/equality constraints are condensed into
   an interval whose bounds are checked against the target, which proves
   facts like ``(price > 5 and price < 10)  implies  (price < 12)`` that
   no single constraint proves alone.
"""

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Tuple

from repro.filters.operators import (
    ALL,
    EQ,
    EXISTS,
    GE,
    GT,
    LE,
    LT,
    NE,
    Operator,
    values_comparable,
)


@dataclass(frozen=True)
class AttributeConstraint:
    """A single constraint on one attribute: ``attribute operator operand``.

    ``operand`` is ignored (and should be ``None``) for the nullary
    operators ``EXISTS`` and ``ALL``.

    >>> from repro.filters.operators import GT
    >>> c = AttributeConstraint("price", GT, 5.0)
    >>> c.matches_value(10.0, present=True)
    True
    >>> c.matches_value(3.0, present=True)
    False
    """

    attribute: str
    operator: Operator
    operand: Any = field(default=None)

    def __post_init__(self) -> None:
        if self.operator.nullary and self.operand is not None:
            raise ValueError(
                f"operator {self.operator.symbol!r} takes no operand, "
                f"got {self.operand!r}"
            )

    @property
    def is_wildcard(self) -> bool:
        """True for the ``(attr, ALL)`` wildcard constraints of §4.4."""
        return self.operator is ALL

    def matches_value(self, value: Any, present: bool) -> bool:
        """Evaluate against one attribute value."""
        return self.operator.evaluate(value, self.operand, present)

    def matches(self, properties: Any) -> bool:
        """Evaluate against a mapping of attribute name to value."""
        present = self.attribute in properties
        value = properties[self.attribute] if present else None
        return self.matches_value(value, present)

    def implies(self, other: "AttributeConstraint") -> bool:
        """Sound check: every value satisfying ``self`` satisfies ``other``.

        Constraints on different attributes never imply each other (the
        conjunction level handles cross-attribute structure).
        """
        if self.attribute != other.attribute:
            return False
        return self.operator.implies(self.operand, other.operator, other.operand)

    def __str__(self) -> str:
        if self.operator.nullary:
            return f"({self.attribute}, {self.operator.symbol})"
        return f"({self.attribute}, {self.operand!r}, {self.operator.symbol})"


class _Interval:
    """Interval abstraction of ordering/equality constraints on one attribute."""

    def __init__(self) -> None:
        self.lower: Optional[Tuple[Any, bool]] = None  # (value, strict)
        self.upper: Optional[Tuple[Any, bool]] = None
        self.equal: Optional[Any] = None
        self.has_eq = False
        self.unsatisfiable = False

    def _tighten_lower(self, value: Any, strict: bool) -> None:
        if self.lower is None:
            self.lower = (value, strict)
            return
        cur, cur_strict = self.lower
        if not values_comparable(cur, value):
            return
        if value > cur or (value == cur and strict and not cur_strict):
            self.lower = (value, strict)

    def _tighten_upper(self, value: Any, strict: bool) -> None:
        if self.upper is None:
            self.upper = (value, strict)
            return
        cur, cur_strict = self.upper
        if not values_comparable(cur, value):
            return
        if value < cur or (value == cur and strict and not cur_strict):
            self.upper = (value, strict)

    def add(self, constraint: AttributeConstraint) -> bool:
        """Fold one constraint in; returns False when not representable."""
        op, x = constraint.operator, constraint.operand
        if op is EQ:
            if self.has_eq and not (
                values_comparable(self.equal, x) and self.equal == x
            ):
                self.unsatisfiable = True
            self.has_eq = True
            self.equal = x
            self._tighten_lower(x, strict=False)
            self._tighten_upper(x, strict=False)
            return True
        if op is LT:
            self._tighten_upper(x, strict=True)
            return True
        if op is LE:
            self._tighten_upper(x, strict=False)
            return True
        if op is GT:
            self._tighten_lower(x, strict=True)
            return True
        if op is GE:
            self._tighten_lower(x, strict=False)
            return True
        return False

    def _check_empty(self) -> None:
        if self.lower is None or self.upper is None:
            return
        lo, lo_strict = self.lower
        hi, hi_strict = self.upper
        if not values_comparable(lo, hi):
            return
        if lo > hi or (lo == hi and (lo_strict or hi_strict)):
            self.unsatisfiable = True

    def guarantees(self, target: AttributeConstraint) -> bool:
        """Sound check that every value in the interval satisfies ``target``."""
        self._check_empty()
        if self.unsatisfiable:
            # Empty set of values: implication holds vacuously.
            return True
        op, y = target.operator, target.operand
        if op is ALL:
            return True
        if op is EXISTS:
            # Reaching the interval path means some ordering/equality
            # constraint exists, so any satisfying value is present.
            return self.lower is not None or self.upper is not None
        if self.has_eq:
            return target.matches_value(self.equal, present=True)
        if op is LT or op is LE:
            if self.upper is None:
                return False
            hi, strict = self.upper
            if not values_comparable(hi, y):
                return False
            if op is LT:
                return hi < y or (hi == y and strict)
            return hi <= y
        if op is GT or op is GE:
            if self.lower is None:
                return False
            lo, strict = self.lower
            if not values_comparable(lo, y):
                return False
            if op is GT:
                return lo > y or (lo == y and strict)
            return lo >= y
        if op is NE:
            if self.upper is not None:
                hi, strict = self.upper
                if values_comparable(hi, y) and (y > hi or (y == hi and strict)):
                    return True
            if self.lower is not None:
                lo, strict = self.lower
                if values_comparable(lo, y) and (y < lo or (y == lo and strict)):
                    return True
            return False
        if op is EQ:
            if self.lower is None or self.upper is None:
                return False
            lo, lo_strict = self.lower
            hi, hi_strict = self.upper
            return (
                not lo_strict
                and not hi_strict
                and values_comparable(lo, hi)
                and lo == hi
                and values_comparable(lo, y)
                and lo == y
            )
        return False


def conjunction_implies(
    constraints: Iterable[AttributeConstraint], target: AttributeConstraint
) -> bool:
    """Sound check that a conjunction of same-attribute constraints implies
    ``target``.

    Used by :meth:`repro.filters.filter.Filter.covers`: the covering filter's
    constraint ``target`` must be guaranteed by the covered filter's
    constraints on the same attribute.
    """
    constraints = [c for c in constraints if c.attribute == target.attribute]
    if target.operator is ALL:
        return True
    for constraint in constraints:
        if constraint.implies(target):
            return True
    # Interval proof from the ordering/equality subset.  Dropping the
    # non-representable constraints only *widens* the interval, so a proof
    # from the subset remains sound for the full conjunction.
    interval = _Interval()
    added_any = False
    for constraint in constraints:
        if interval.add(constraint):
            added_any = True
    return added_any and interval.guarantees(target)
