"""Subscription language ``LF`` (Definitions 1-3 of the paper).

Filters are conjunctions of attribute constraints, the fragment the
paper's overlay nodes evaluate and weaken.  This package provides:

- :mod:`~repro.filters.operators` — the constraint operators (=, !=, <,
  <=, >, >=, exists, prefix, contains, and the ``ALL`` wildcard) together
  with a sound *implication* relation between constraints, the building
  block of filter covering (Definition 2);
- :mod:`~repro.filters.constraints` — :class:`AttributeConstraint`;
- :mod:`~repro.filters.filter` — conjunctive :class:`Filter` with
  ``matches`` (Definition 1), ``covers`` (Definition 2) and the
  filter-relative event-covering check (Definition 3);
- :mod:`~repro.filters.standard` — the "standard subscription filter
  format" of Section 4.4 (wildcard completion, generality ordering);
- :mod:`~repro.filters.parser` — a small textual filter language;
- :mod:`~repro.filters.table` — the paper's naive Figure-6 filter table;
- :mod:`~repro.filters.index` — a counting-based matching index;
- :mod:`~repro.filters.engine` — the shared :class:`MatchEngine`
  interface both implement, plus :class:`CachedMatchEngine`, a
  fingerprint-keyed routing-decision cache for the broker hot path;
- :mod:`~repro.filters.covering_index` — :class:`CoveringIndex`, a
  candidate-pruned subsumption structure the broker control plane uses
  to aggregate subscriptions along the covering relation;
- :mod:`~repro.filters.compiled` — :class:`CompiledMatchEngine`, the
  batch hot path: indexable conjunctive parts compiled into flat
  bitmap/bisect structures with residual predicates on survivors only.

Covering here is *sound but not complete*: ``f.covers(g)`` returning True
guarantees every event matching ``g`` matches ``f`` (what Proposition 1
needs); False may simply mean "could not prove it".
"""

from repro.filters.compiled import CompiledMatchEngine
from repro.filters.constraints import AttributeConstraint
from repro.filters.covering_index import CoveringIndex, filter_shape
from repro.filters.disjunction import Disjunction
from repro.filters.engine import CachedMatchEngine, MatchEngine, event_fingerprint
from repro.filters.filter import Filter, event_covers
from repro.filters.index import CountingIndex
from repro.filters.operators import (
    ALL,
    CONTAINS,
    EQ,
    EXISTS,
    GE,
    GT,
    LE,
    LT,
    NE,
    PREFIX,
    Operator,
    operator_by_symbol,
)
from repro.filters.parser import FilterParseError, parse_filter, render_filter
from repro.filters.standard import standardize
from repro.filters.table import FilterTable

__all__ = [
    "ALL",
    "AttributeConstraint",
    "CONTAINS",
    "CachedMatchEngine",
    "CompiledMatchEngine",
    "CountingIndex",
    "CoveringIndex",
    "filter_shape",
    "Disjunction",
    "EQ",
    "EXISTS",
    "Filter",
    "FilterParseError",
    "FilterTable",
    "GE",
    "MatchEngine",
    "event_fingerprint",
    "GT",
    "LE",
    "LT",
    "NE",
    "Operator",
    "PREFIX",
    "event_covers",
    "operator_by_symbol",
    "parse_filter",
    "render_filter",
    "standardize",
]
