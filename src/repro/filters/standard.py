"""Standard subscription filter format (Section 4.4).

A *standard* filter w.r.t. an event schema specifies **every** attribute
of the schema, in the schema's generality order (most general first);
attributes the subscriber did not constrain carry the ``(attr, ALL)``
wildcard constraint.  The paper converts all subscription filters to this
format so that filter weakening can operate purely positionally on the
attribute-stage association ``Gc``.
"""

from typing import List, Sequence

from repro.filters.constraints import AttributeConstraint
from repro.filters.filter import Filter
from repro.filters.operators import ALL


def standardize(filter_: Filter, schema: Sequence[str], strict: bool = True) -> Filter:
    """Convert ``filter_`` to standard format for ``schema``.

    ``schema`` is the ordered attribute list from the event class
    advertisement (most general attribute first).  Constraints are
    re-ordered to schema order and missing attributes are completed with
    wildcards, so e.g. ``fx = (class=Stock)(symbol=DEF)`` becomes
    ``(class=Stock)(symbol=DEF)(price, ALL)`` under the schema
    ``[class, symbol, price]``.

    With ``strict=True`` (default) a constraint on an attribute outside
    the schema raises ``ValueError``; with ``strict=False`` such
    constraints are appended after the schema attributes, preserving
    matching semantics at the price of positional weakening ignoring them.
    """
    if filter_.matches_nothing:
        return filter_
    schema_set = set(schema)
    extras = [c for c in filter_.constraints if c.attribute not in schema_set]
    if extras and strict:
        names = sorted({c.attribute for c in extras})
        raise ValueError(
            f"filter constrains attributes outside the schema {list(schema)}: {names}"
        )
    ordered: List[AttributeConstraint] = []
    for attribute in schema:
        constraints = filter_.constraints_on(attribute)
        if constraints:
            ordered.extend(constraints)
        else:
            ordered.append(AttributeConstraint(attribute, ALL))
    ordered.extend(extras)
    return Filter(ordered)


def is_standard(filter_: Filter, schema: Sequence[str]) -> bool:
    """True when the filter constrains exactly the schema, in schema order."""
    if filter_.matches_nothing:
        return False
    return filter_.attributes() == list(schema)


def wildcard_attributes(filter_: Filter) -> List[str]:
    """Attributes carrying a wildcard (``ALL``) constraint, in filter order."""
    return [c.attribute for c in filter_.constraints if c.operator is ALL]


def most_general_wildcard(filter_: Filter, schema: Sequence[str]) -> str:
    """First schema attribute that is a wildcard in ``filter_`` (§4.5 step 1).

    The schema is ordered most-general-first, so the first wildcard hit is
    the most general wildcard attribute ``Attr_mg``.  Raises ``ValueError``
    when the filter has no wildcard on any schema attribute.
    """
    wildcards = set(wildcard_attributes(filter_))
    for attribute in schema:
        if attribute in wildcards:
            return attribute
    raise ValueError(f"filter {filter_} has no wildcard attribute in schema {list(schema)}")
