"""Disjunctive filters: the OR level of Figure 2's expressiveness ladder.

The overlay itself only weakens and indexes *conjunctive* filters, so a
:class:`Disjunction` never travels through broker tables — the engine
splits it into one routed subscription per branch and the subscriber
runtime de-duplicates deliveries (see ``Subscription.group``).  The
class still implements matching and a sound covering relation so it can
be used directly for local (stage-0 / baseline) evaluation.
"""

from typing import Any, Iterable, List, Union

from repro.filters.filter import Filter

FilterOrDisjunction = Union[Filter, "Disjunction"]


class Disjunction:
    """An immutable OR of conjunctive filters.

    >>> from repro.filters.parser import parse_filter
    >>> d = parse_filter('symbol = "Foo" or symbol = "Bar"')
    >>> d.matches({"symbol": "Bar"})
    True
    >>> len(d.branches)
    2
    """

    __slots__ = ("branches",)

    def __init__(self, branches: Iterable[Filter]):
        flattened: List[Filter] = []
        for branch in branches:
            if isinstance(branch, Disjunction):
                flattened.extend(branch.branches)
            else:
                flattened.append(branch)
        if not flattened:
            raise ValueError("a disjunction needs at least one branch")
        object.__setattr__(self, "branches", tuple(flattened))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Disjunction is immutable")

    def __reduce__(self):
        # The immutability guard breaks pickle's default slot restore;
        # rebuild through __init__.
        return (self.__class__, (self.branches,))

    def matches(self, event: Any) -> bool:
        """True when any branch matches (Definition 1, lifted over OR)."""
        return any(branch.matches(event) for branch in self.branches)

    __call__ = matches

    def covers(self, other: FilterOrDisjunction) -> bool:
        """Sound covering: every event ``other`` accepts, some branch accepts.

        Proved branch-wise: each of ``other``'s branches must be covered
        by one of ours.  (Sound but incomplete: a disjunction can cover a
        filter jointly without any single branch covering it.)
        """
        if isinstance(other, Disjunction):
            return all(self.covers(branch) for branch in other.branches)
        return any(branch.covers(other) for branch in self.branches)

    @property
    def matches_nothing(self) -> bool:
        return all(branch.matches_nothing for branch in self.branches)

    def simplified(self) -> FilterOrDisjunction:
        """Drop fF branches; collapse to a plain Filter when one remains."""
        live = [b for b in self.branches if not b.matches_nothing]
        if not live:
            return Filter.bottom()
        if len(live) == 1:
            return live[0]
        return Disjunction(live)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Disjunction):
            return NotImplemented
        return self.branches == other.branches

    def __hash__(self) -> int:
        return hash(self.branches)

    def __len__(self) -> int:
        return len(self.branches)

    def __iter__(self):
        return iter(self.branches)

    def __str__(self) -> str:
        return " OR ".join(f"[{branch}]" for branch in self.branches)

    def __repr__(self) -> str:
        return f"Disjunction<{self}>"
