"""Shared match-engine interface and the routing-decision cache.

Both matching engines — the naive Figure-6 :class:`~repro.filters.table.
FilterTable` and the production :class:`~repro.filters.index.CountingIndex`
— implement the :class:`MatchEngine` surface so broker nodes (and the
caching layer below) treat them interchangeably.

:class:`CachedMatchEngine` wraps either engine with a memo of routing
decisions keyed by a canonical *fingerprint* of the event's property set.
Real event streams are highly repetitive (identical property-set shapes
recur constantly — Gryphon's information-flow brokering and Shi et al.'s
subscription aggregation both exploit this), so a per-node memo converts
most matches into a single dict lookup.

Soundness rests on two facts:

1. A match result depends only on the values of attributes some stored
   filter actually constrains (the *relevant* attributes): every other
   attribute is never probed by either engine.  The fingerprint therefore
   restricts the event to its relevant attributes — two events that agree
   there are routed identically — and encodes attribute *absence* by
   omission (constraints never match absent attributes).
2. Every mutation path — ``insert``, ``remove``, ``remove_destination``
   (lease expiry and unsubscription route through these), and the
   covering-merge compaction rebuild (which constructs a fresh wrapped
   engine) — flushes the memo and the relevant-attribute set, so a stale
   decision can never survive a table change.

Values are keyed with the same bool-vs-number discrimination the counting
index uses for its equality buckets: ``1 == 1.0`` may share a decision
(both engines treat them identically under every operator) but ``True``
may not.
"""

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import (
    Any,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.filters.filter import Filter
from repro.filters.operators import ALL
from repro.metrics.counters import CacheStats


class MatchEngine(ABC):
    """The surface broker nodes require from a matching engine.

    Concrete engines also expose an ``evaluations`` counter of constraint
    probes performed (the LC bookkeeping callers read as a delta around
    each ``match`` call).
    """

    @abstractmethod
    def insert(self, filter_: Filter, destination: Hashable) -> None:
        """Associate ``destination`` with ``filter_``."""

    @abstractmethod
    def remove(self, filter_: Filter, destination: Hashable) -> bool:
        """Drop one (filter, destination) pair; True when it existed."""

    @abstractmethod
    def remove_destination(self, destination: Hashable) -> int:
        """Drop ``destination`` everywhere; returns entries affected."""

    @abstractmethod
    def match(self, event: Any) -> List[Tuple[Filter, Tuple[Hashable, ...]]]:
        """Matching ``(filter, ids)`` entries in filter insertion order."""

    @abstractmethod
    def destinations_for(self, filter_: Filter) -> Tuple[Hashable, ...]:
        """The ids currently associated with exactly this filter."""

    @abstractmethod
    def filters(self) -> Iterator[Filter]:
        """Iterate the distinct stored filters."""

    @abstractmethod
    def entries(self) -> Iterator[Tuple[Filter, Tuple[Hashable, ...]]]:
        """Iterate ``(filter, ids)`` pairs."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of distinct filters held."""

    @abstractmethod
    def __contains__(self, filter_: Filter) -> bool:
        """Whether this exact filter is stored."""

    def destinations(self, event: Any) -> Set[Hashable]:
        """Union of ids over all filters matching ``event``."""
        result: Set[Hashable] = set()
        for _, ids in self.match(event):
            result.update(ids)
        return result

    def match_batch(
        self, events: Sequence[Any]
    ) -> List[List[Tuple[Filter, Tuple[Hashable, ...]]]]:
        """Match a run of events; result ``i`` is ``match(events[i])``.

        The default simply loops — which preserves the per-event
        memoization of :class:`CachedMatchEngine` — while engines with a
        real batch mode (:class:`~repro.filters.compiled.
        CompiledMatchEngine`) override it to amortize recompilation and
        vectorize lookups across the whole run.
        """
        return [self.match(event) for event in events]


def value_key(value: Any) -> Any:
    """Canonical key separating bools from numbers (1 != True for matching)."""
    return (type(value) is bool, value)


def event_fingerprint(
    event: Any, relevant: FrozenSet[str]
) -> Optional[Tuple[Tuple[str, Any], ...]]:
    """Canonical fingerprint of an event's property set.

    Only attributes in ``relevant`` (those some stored filter constrains)
    participate; absence is encoded by omission.  Returns ``None`` when a
    participating value is unhashable — such events bypass the cache.
    """
    properties: Mapping[str, Any] = getattr(event, "properties", event)
    items = [
        (attribute, value_key(value))
        for attribute, value in properties.items()
        if attribute in relevant
    ]
    items.sort(key=lambda item: item[0])
    key = tuple(items)
    try:
        hash(key)
    except TypeError:
        return None
    return key


class CachedMatchEngine(MatchEngine):
    """A :class:`MatchEngine` wrapper memoizing routing decisions.

    ``stats`` may be shared (a node passes its counters' ``CacheStats`` so
    hit/miss/invalidation totals survive compaction rebuilds); by default
    the wrapper owns a private one.  The memo is a bounded LRU so a
    high-cardinality stream cannot grow it without limit.
    """

    def __init__(
        self,
        inner: MatchEngine,
        stats: Optional[CacheStats] = None,
        max_entries: int = 8192,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.inner = inner
        self.stats = stats if stats is not None else CacheStats()
        self.max_entries = max_entries
        self._cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        self._relevant: Optional[FrozenSet[str]] = None

    # -- mutation paths (every one invalidates) -------------------------

    def insert(self, filter_: Filter, destination: Hashable) -> None:
        self.inner.insert(filter_, destination)
        self._invalidate()

    def remove(self, filter_: Filter, destination: Hashable) -> bool:
        removed = self.inner.remove(filter_, destination)
        if removed:
            self._invalidate()
        return removed

    def remove_destination(self, destination: Hashable) -> int:
        removed = self.inner.remove_destination(destination)
        if removed:
            self._invalidate()
        return removed

    def _invalidate(self) -> None:
        if self._cache:
            self._cache.clear()
            self.stats.invalidations += 1
        self._relevant = None

    # -- the hot path ----------------------------------------------------

    def _relevant_attributes(self) -> FrozenSet[str]:
        if self._relevant is None:
            attributes = set()
            for filter_ in self.inner.filters():
                for constraint in filter_.constraints:
                    if constraint.operator is not ALL:
                        attributes.add(constraint.attribute)
            self._relevant = frozenset(attributes)
        return self._relevant

    def match(self, event: Any) -> List[Tuple[Filter, Tuple[Hashable, ...]]]:
        key = event_fingerprint(event, self._relevant_attributes())
        if key is not None:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.stats.hits += 1
                return list(cached)
        self.stats.misses += 1
        result = self.inner.match(event)
        if key is not None:
            self._cache[key] = tuple(result)
            if len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
        return result

    def match_batch(
        self, events: Sequence[Any]
    ) -> List[List[Tuple[Filter, Tuple[Hashable, ...]]]]:
        """Batch match preserving the memo semantics of :meth:`match`.

        Memoized fingerprints are answered from the cache; the remaining
        *distinct* fingerprints (plus every unhashable-fingerprint event)
        are evaluated through the inner engine's own ``match_batch`` in
        one pass.  Hit/miss/eviction accounting is identical to calling
        :meth:`match` sequentially: a fingerprint recurring within one
        batch is a miss the first time and a hit after, exactly as if the
        memo had been populated between the two calls.
        """
        relevant = self._relevant_attributes()
        results: List[Optional[List[Tuple[Filter, Tuple[Hashable, ...]]]]] = (
            [None] * len(events)
        )
        miss_events: List[Any] = []
        miss_keys: List[Optional[Tuple]] = []
        miss_slots: List[List[int]] = []
        key_to_miss: dict = {}
        for position, event in enumerate(events):
            key = event_fingerprint(event, relevant)
            if key is not None:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.stats.hits += 1
                    results[position] = list(cached)
                    continue
                pending = key_to_miss.get(key)
                if pending is not None:
                    self.stats.hits += 1
                    miss_slots[pending].append(position)
                    continue
                key_to_miss[key] = len(miss_events)
            self.stats.misses += 1
            miss_events.append(event)
            miss_keys.append(key)
            miss_slots.append([position])
        if miss_events:
            for key, slots, result in zip(
                miss_keys, miss_slots, self.inner.match_batch(miss_events)
            ):
                if key is not None:
                    self._cache[key] = tuple(result)
                    if len(self._cache) > self.max_entries:
                        self._cache.popitem(last=False)
                for position in slots:
                    results[position] = list(result)
        return results  # type: ignore[return-value]

    # -- read-only delegation -------------------------------------------

    @property
    def evaluations(self) -> int:
        """Constraint probes performed by the inner engine (hits add 0)."""
        return self.inner.evaluations

    @evaluations.setter
    def evaluations(self, value: int) -> None:
        self.inner.evaluations = value

    def destinations_for(self, filter_: Filter) -> Tuple[Hashable, ...]:
        return self.inner.destinations_for(filter_)

    def filters(self) -> Iterator[Filter]:
        return self.inner.filters()

    def entries(self) -> Iterator[Tuple[Filter, Tuple[Hashable, ...]]]:
        return self.inner.entries()

    def cached_decisions(self) -> int:
        """Number of fingerprints currently memoized (for tests/reports)."""
        return len(self._cache)

    def __len__(self) -> int:
        return len(self.inner)

    def __contains__(self, filter_: Filter) -> bool:
        return filter_ in self.inner

    def __repr__(self) -> str:
        return (
            f"CachedMatchEngine({self.inner!r}, {len(self._cache)} cached, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
