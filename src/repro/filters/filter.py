"""Conjunctive filters: Definitions 1-3 of the paper.

A :class:`Filter` is an ordered conjunction of
:class:`~repro.filters.constraints.AttributeConstraint`; the order carries
the *generality* ordering of Section 4.1 (most general attribute first),
which the weakening machinery in :mod:`repro.core.stages` relies on.

- ``f.matches(e)`` is the paper's ``f(e)`` (Definition 1);
- ``f.covers(g)`` is the covering relation ``f ⊒ g`` (Definition 2),
  decided soundly through constraint implication;
- :func:`event_covers` is the filter-relative event covering relation
  (Definition 3).
"""

from typing import Any, Iterable, List, Mapping, Optional, Tuple

from repro.filters.constraints import AttributeConstraint, conjunction_implies
from repro.filters.operators import ALL


def _properties_of(event: Any) -> Mapping[str, Any]:
    """Accept either a plain mapping or an object exposing ``properties``."""
    props = getattr(event, "properties", None)
    if props is not None:
        return props
    return event


class Filter:
    """An immutable conjunction of attribute constraints.

    ``Filter.top()`` is the paper's ``fT`` (matches everything) and
    ``Filter.bottom()`` is ``fF`` (matches nothing).  An empty conjunction
    is ``fT``; ``fF`` needs a distinguished flag because no conjunction of
    satisfiable constraints is unsatisfiable by construction.

    >>> from repro.filters.operators import EQ, GT
    >>> f = Filter([
    ...     AttributeConstraint("symbol", EQ, "Foo"),
    ...     AttributeConstraint("price", GT, 5.0),
    ... ])
    >>> f.matches({"symbol": "Foo", "price": 10.0, "volume": 32300})
    True
    >>> f.matches({"symbol": "Bar", "price": 15.0})
    False
    """

    __slots__ = ("constraints", "matches_nothing", "_hash")

    def __init__(
        self,
        constraints: Iterable[AttributeConstraint] = (),
        matches_nothing: bool = False,
    ):
        object.__setattr__(self, "constraints", tuple(constraints))
        object.__setattr__(self, "matches_nothing", bool(matches_nothing))
        object.__setattr__(self, "_hash", hash((self.constraints, self.matches_nothing)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Filter is immutable")

    def __reduce__(self):
        # The immutability guard breaks pickle's default slot restore;
        # rebuild through __init__ (also re-derives the cached hash).
        return (self.__class__, (self.constraints, self.matches_nothing))

    @classmethod
    def top(cls) -> "Filter":
        """``fT``: matches every event, covers every filter."""
        return cls()

    @classmethod
    def bottom(cls) -> "Filter":
        """``fF``: matches no event, covered by every filter."""
        return cls(matches_nothing=True)

    @property
    def is_top(self) -> bool:
        return not self.matches_nothing and not self.constraints

    @property
    def is_bottom(self) -> bool:
        return self.matches_nothing

    def matches(self, event: Any) -> bool:
        """Definition 1: True iff the event satisfies every constraint."""
        if self.matches_nothing:
            return False
        properties = _properties_of(event)
        for constraint in self.constraints:
            if not constraint.matches(properties):
                return False
        return True

    __call__ = matches

    def covers(self, other: "Filter") -> bool:
        """Definition 2, soundly: ``self ⊒ other``.

        True guarantees every event matched by ``other`` is matched by
        ``self``; False may only mean the implication could not be proved.
        """
        if other.matches_nothing:
            return True
        if self.matches_nothing:
            return False
        by_attr = other.constraints_by_attribute()
        for constraint in self.constraints:
            if constraint.operator is ALL:
                continue
            if not conjunction_implies(
                by_attr.get(constraint.attribute, ()), constraint
            ):
                return False
        return True

    def attributes(self) -> List[str]:
        """Attribute names in first-occurrence (generality) order."""
        seen = []
        for constraint in self.constraints:
            if constraint.attribute not in seen:
                seen.append(constraint.attribute)
        return seen

    def constraints_on(self, attribute: str) -> Tuple[AttributeConstraint, ...]:
        """All constraints of this filter on one attribute."""
        return tuple(c for c in self.constraints if c.attribute == attribute)

    def constraints_by_attribute(self) -> Mapping[str, Tuple[AttributeConstraint, ...]]:
        """Constraints grouped by attribute, preserving order within groups."""
        groups: dict = {}
        for constraint in self.constraints:
            groups.setdefault(constraint.attribute, []).append(constraint)
        return {attr: tuple(cs) for attr, cs in groups.items()}

    def restricted_to(self, attributes: Iterable[str]) -> "Filter":
        """Keep only the constraints on the given attributes.

        Dropping constraints can only weaken a conjunction, so the result
        always covers ``self`` — the core step of stage weakening (§4.1).
        """
        if self.matches_nothing:
            return self
        keep = set(attributes)
        return Filter(c for c in self.constraints if c.attribute in keep)

    def without_wildcards(self) -> "Filter":
        """Drop ``ALL`` constraints; equivalent for matching purposes."""
        if self.matches_nothing:
            return self
        return Filter(c for c in self.constraints if c.operator is not ALL)

    def conjoin(self, other: "Filter") -> "Filter":
        """Conjunction of two filters (``self AND other``)."""
        if self.matches_nothing or other.matches_nothing:
            return Filter.bottom()
        return Filter(self.constraints + other.constraints)

    __and__ = conjoin

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Filter):
            return NotImplemented
        return (
            self.constraints == other.constraints
            and self.matches_nothing == other.matches_nothing
        )

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def __str__(self) -> str:
        if self.matches_nothing:
            return "fF"
        if not self.constraints:
            return "fT"
        return " ".join(str(c) for c in self.constraints)

    def __repr__(self) -> str:
        return f"Filter<{self}>"


def event_covers(event: Any, other_event: Any, filter_: Filter) -> bool:
    """Definition 3: ``event ⊒_f other_event``.

    ``event`` covers ``other_event`` for ``filter_`` iff
    ``filter_(other_event) -> filter_(event)``: the (transformed) event is
    at least as accurate a representation w.r.t. that filter.
    """
    return (not filter_.matches(other_event)) or filter_.matches(event)


def strongest_covering(
    candidates: Iterable[Filter], target: Filter
) -> Optional[Filter]:
    """Among ``candidates`` covering ``target``, pick a strongest one.

    "Strongest" means no other covering candidate is covered by it without
    covering back; ties resolve to the first seen.  Used by the placement
    algorithm (§4.2) to route a subscription toward the most similar
    stored filter.
    """
    best: Optional[Filter] = None
    for candidate in candidates:
        if not candidate.covers(target):
            continue
        if best is None or best.covers(candidate) and not candidate.covers(best):
            best = candidate
    return best
