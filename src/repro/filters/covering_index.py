"""Covering index: fast subsumption queries over a set of filters.

The control-plane aggregation of §4 needs two questions answered for
every filter that arrives at or leaves a broker's uplink:

- ``covered_by(f)`` — which stored filters ``g`` satisfy ``g.covers(f)``
  (is the new filter redundant?), and
- ``covers_of(f)`` — which stored filters does ``f`` cover (which
  previously propagated filters become redundant?).

Answering either with pairwise :meth:`~repro.filters.filter.Filter.covers`
is O(n) full implication checks per query.  This index prunes the
candidate set first, using the structure of the covering relation itself:

1. **Shape pruning.**  ``shape(f)`` is the set of attributes carrying at
   least one non-``ALL`` constraint.  ``g.covers(f)`` requires
   ``shape(g) ⊆ shape(f)``: every non-``ALL`` constraint of ``g`` must be
   implied by ``f``'s constraints *on the same attribute*, and
   :func:`~repro.filters.constraints.conjunction_implies` proves nothing
   from an empty (or ``ALL``-only) premise.  Stored filters are therefore
   grouped by shape, and a query only touches groups in the subset (or
   superset, for ``covers_of``) relation with the query's shape.
2. **Per-attribute candidate pruning.**  Within a group, one attribute's
   constraints are classified into equality buckets (hash lookup),
   ordering bounds (sorted operand arrays, bisected), and an "other"
   catch-all.  Single-constraint implications only hold along known
   operand orderings — e.g. ``a < x`` can imply ``a < u`` only when
   ``x <= u`` — so a bisect yields a complete candidate superset.
   Anything unclassifiable (multi-constraint conjunctions, ``NE``,
   ``PREFIX``, ``EXISTS``, non-orderable operands) conservatively stays a
   candidate, preserving completeness relative to ``Filter.covers``.
3. **Verification.**  Surviving candidates get the full pairwise
   ``covers`` check (counted in :attr:`CoveringIndex.covers_checks`), so
   the result is *exactly* the pairwise answer — the pruning is a pure
   speedup, never a semantic change.

The index also maintains the *maximal* filters (those not strictly
covered by another stored filter) incrementally: each insert/remove
updates a strict-cover adjacency, so :meth:`maximal` is a read.
"""

import bisect
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.filters.constraints import AttributeConstraint
from repro.filters.engine import value_key
from repro.filters.filter import Filter
from repro.filters.operators import ALL, EQ, GE, GT, LE, LT


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


def _orderable(value: Any) -> bool:
    """Values the sorted-bound arrays may hold: bisection needs a total
    order within the family, and booleans are excluded from the numeric
    family by :func:`~repro.filters.operators.values_comparable`."""
    if isinstance(value, bool):
        return False
    return isinstance(value, (int, float, str))


def _family(value: Any) -> str:
    return "str" if isinstance(value, str) else "num"


def filter_shape(filter_: Filter) -> FrozenSet[str]:
    """Attributes carrying at least one non-``ALL`` constraint."""
    return frozenset(
        c.attribute for c in filter_.constraints if c.operator is not ALL
    )


#: Classification tags for a filter's constraints on one attribute.
_EQ, _UP, _LO, _OTHER = "eq", "up", "lo", "other"


def _classify(constraints: Tuple[AttributeConstraint, ...]) -> Tuple[str, Any]:
    """Classify one attribute's non-``ALL`` constraints for pruning.

    Only a *single* constraint with a well-behaved operand is prunable;
    everything else (conjunctions, ``NE``/``PREFIX``/``CONTAINS``/
    ``EXISTS``, unhashable or unorderable operands) falls into the
    ``other`` catch-all, which every query keeps as a candidate.
    """
    if len(constraints) != 1:
        return (_OTHER, None)
    constraint = constraints[0]
    operator, operand = constraint.operator, constraint.operand
    if operator is EQ and _hashable(operand):
        return (_EQ, operand)
    if (operator is LT or operator is LE) and _orderable(operand):
        return (_UP, operand)
    if (operator is GT or operator is GE) and _orderable(operand):
        return (_LO, operand)
    return (_OTHER, None)


class _Sorted:
    """Parallel sorted (operand, handle) arrays for one operand family."""

    __slots__ = ("values", "handles")

    def __init__(self) -> None:
        self.values: List[Any] = []
        self.handles: List[int] = []

    def add(self, value: Any, handle: int) -> None:
        position = bisect.bisect_right(self.values, value)
        self.values.insert(position, value)
        self.handles.insert(position, handle)

    def remove(self, value: Any, handle: int) -> None:
        left = bisect.bisect_left(self.values, value)
        right = bisect.bisect_right(self.values, value)
        for position in range(left, right):
            if self.handles[position] == handle:
                del self.values[position]
                del self.handles[position]
                return

    def count_le(self, value: Any) -> int:
        return bisect.bisect_right(self.values, value)

    def count_ge(self, value: Any) -> int:
        return len(self.values) - bisect.bisect_left(self.values, value)

    def le(self, value: Any) -> List[int]:
        """Handles whose operand is ``<= value`` (boundary included: the
        verification pass sorts out strict-vs-inclusive implications)."""
        return self.handles[: bisect.bisect_right(self.values, value)]

    def ge(self, value: Any) -> List[int]:
        return self.handles[bisect.bisect_left(self.values, value):]


class _Slot:
    """Candidate postings for one attribute within one shape group."""

    __slots__ = ("eq_buckets", "eq_sorted", "up_sorted", "lo_sorted", "other")

    def __init__(self) -> None:
        #: value_key -> handles with a single ``= value`` constraint.
        self.eq_buckets: Dict[Any, Set[int]] = {}
        #: family -> sorted equality operands (for range-vs-eq pruning).
        self.eq_sorted: Dict[str, _Sorted] = {}
        #: family -> sorted upper bounds (``<`` / ``<=`` operands).
        self.up_sorted: Dict[str, _Sorted] = {}
        #: family -> sorted lower bounds (``>`` / ``>=`` operands).
        self.lo_sorted: Dict[str, _Sorted] = {}
        #: Conservative catch-all: always candidates.
        self.other: Set[int] = set()

    def add(self, tag: str, operand: Any, handle: int) -> None:
        if tag is _EQ:
            self.eq_buckets.setdefault(value_key(operand), set()).add(handle)
            if _orderable(operand):
                self.eq_sorted.setdefault(_family(operand), _Sorted()).add(
                    operand, handle
                )
        elif tag is _UP:
            self.up_sorted.setdefault(_family(operand), _Sorted()).add(
                operand, handle
            )
        elif tag is _LO:
            self.lo_sorted.setdefault(_family(operand), _Sorted()).add(
                operand, handle
            )
        else:
            self.other.add(handle)

    def discard(self, tag: str, operand: Any, handle: int) -> None:
        if tag is _EQ:
            key = value_key(operand)
            bucket = self.eq_buckets.get(key)
            if bucket is not None:
                bucket.discard(handle)
                if not bucket:
                    del self.eq_buckets[key]
            if _orderable(operand):
                sorted_ = self.eq_sorted.get(_family(operand))
                if sorted_ is not None:
                    sorted_.remove(operand, handle)
        elif tag is _UP:
            sorted_ = self.up_sorted.get(_family(operand))
            if sorted_ is not None:
                sorted_.remove(operand, handle)
        elif tag is _LO:
            sorted_ = self.lo_sorted.get(_family(operand))
            if sorted_ is not None:
                sorted_.remove(operand, handle)
        else:
            self.other.discard(handle)

    # -- covered_by(f): stored g with g.covers(f); premise is f's single
    # constraint, conclusion is the stored one.  A stored ``= w`` needs
    # w == v; a stored upper bound needs operand >= v (or >= u); a stored
    # lower bound the mirror image.  "other" always survives.

    def count_covering(self, tag: str, operand: Any) -> int:
        count = len(self.other)
        if tag is _EQ:
            count += len(self.eq_buckets.get(value_key(operand), ()))
            if _orderable(operand):
                family = _family(operand)
                if family in self.up_sorted:
                    count += self.up_sorted[family].count_ge(operand)
                if family in self.lo_sorted:
                    count += self.lo_sorted[family].count_le(operand)
        elif tag is _UP:
            family = _family(operand)
            if family in self.up_sorted:
                count += self.up_sorted[family].count_ge(operand)
        elif tag is _LO:
            family = _family(operand)
            if family in self.lo_sorted:
                count += self.lo_sorted[family].count_le(operand)
        return count

    def covering_candidates(self, tag: str, operand: Any) -> Set[int]:
        candidates = set(self.other)
        if tag is _EQ:
            candidates.update(self.eq_buckets.get(value_key(operand), ()))
            if _orderable(operand):
                family = _family(operand)
                if family in self.up_sorted:
                    candidates.update(self.up_sorted[family].ge(operand))
                if family in self.lo_sorted:
                    candidates.update(self.lo_sorted[family].le(operand))
        elif tag is _UP:
            family = _family(operand)
            if family in self.up_sorted:
                candidates.update(self.up_sorted[family].ge(operand))
        elif tag is _LO:
            family = _family(operand)
            if family in self.lo_sorted:
                candidates.update(self.lo_sorted[family].le(operand))
        return candidates

    # -- covers_of(f): stored g with f.covers(g); premise is the stored
    # constraint, conclusion is f's.  Only equalities can imply ``= v``;
    # bounds and equalities below u can imply ``< u`` / ``<= u``.

    def count_covered(self, tag: str, operand: Any) -> int:
        count = len(self.other)
        if tag is _EQ:
            count += len(self.eq_buckets.get(value_key(operand), ()))
        elif tag is _UP:
            family = _family(operand)
            if family in self.up_sorted:
                count += self.up_sorted[family].count_le(operand)
            if family in self.eq_sorted:
                count += self.eq_sorted[family].count_le(operand)
        elif tag is _LO:
            family = _family(operand)
            if family in self.lo_sorted:
                count += self.lo_sorted[family].count_ge(operand)
            if family in self.eq_sorted:
                count += self.eq_sorted[family].count_ge(operand)
        return count

    def covered_candidates(self, tag: str, operand: Any) -> Set[int]:
        candidates = set(self.other)
        if tag is _EQ:
            candidates.update(self.eq_buckets.get(value_key(operand), ()))
        elif tag is _UP:
            family = _family(operand)
            if family in self.up_sorted:
                candidates.update(self.up_sorted[family].le(operand))
            if family in self.eq_sorted:
                candidates.update(self.eq_sorted[family].le(operand))
        elif tag is _LO:
            family = _family(operand)
            if family in self.lo_sorted:
                candidates.update(self.lo_sorted[family].ge(operand))
            if family in self.eq_sorted:
                candidates.update(self.eq_sorted[family].ge(operand))
        return candidates


class _Group:
    """All stored satisfiable filters sharing one shape."""

    __slots__ = ("shape", "members", "slots")

    def __init__(self, shape: FrozenSet[str]) -> None:
        self.shape = shape
        #: Insertion-ordered handle set.
        self.members: Dict[int, None] = {}
        self.slots: Dict[str, _Slot] = {attribute: _Slot() for attribute in shape}


def _nonall_on(filter_: Filter, attribute: str) -> Tuple[AttributeConstraint, ...]:
    return tuple(
        c
        for c in filter_.constraints
        if c.attribute == attribute and c.operator is not ALL
    )


class CoveringIndex:
    """Incrementally maintained subsumption structure over filters.

    Query results are exact (identical to naive pairwise
    ``Filter.covers`` over the stored set) and deterministic: filters
    come back in insertion order.  ``covers_checks`` counts the pairwise
    verifications actually performed — the pruning factor relative to a
    naive scan is ``len(index)`` minus that, per query.
    """

    def __init__(self) -> None:
        self._handles: Dict[Filter, int] = {}
        self._by_handle: Dict[int, Filter] = {}
        self._groups: Dict[FrozenSet[str], _Group] = {}
        #: Handle of the stored ``fF``, if any (at most one: filters are
        #: deduplicated by equality and every ``fF`` compares equal).
        self._bottom: Optional[int] = None
        #: Strict-cover adjacency: handle -> handles strictly covering it.
        self._scovered_by: Dict[int, Set[int]] = {}
        self._scovers: Dict[int, Set[int]] = {}
        self._next_handle = 0
        #: Pairwise ``covers`` verifications performed (instrumentation).
        self.covers_checks = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._handles)

    def __contains__(self, filter_: Filter) -> bool:
        return filter_ in self._handles

    def filters(self) -> Iterator[Filter]:
        """Stored filters in insertion order."""
        for handle in sorted(self._by_handle):
            yield self._by_handle[handle]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def covered_by(self, filter_: Filter) -> List[Filter]:
        """Stored filters ``g`` with ``g.covers(filter_)``, insertion order.

        A stored copy of ``filter_`` itself is included (covering is
        reflexive), matching the naive pairwise answer exactly.
        """
        return self._materialize(self._covered_by_handles(filter_))

    def covers_of(self, filter_: Filter) -> List[Filter]:
        """Stored filters ``g`` with ``filter_.covers(g)``, insertion order."""
        return self._materialize(self._covers_of_handles(filter_))

    def maximal(self) -> List[Filter]:
        """Stored filters not strictly covered by another stored filter.

        Mutually covering (equivalent) filters do not exclude each other:
        strictness requires covering without being covered back.
        """
        return self._materialize(
            {h for h, above in self._scovered_by.items() if not above}
        )

    def is_maximal(self, filter_: Filter) -> bool:
        handle = self._handles.get(filter_)
        if handle is None:
            raise KeyError(f"not indexed: {filter_}")
        return not self._scovered_by[handle]

    def _materialize(self, handles: Set[int]) -> List[Filter]:
        return [self._by_handle[h] for h in sorted(handles)]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, filter_: Filter) -> bool:
        """Index ``filter_``; False when already present."""
        if filter_ in self._handles:
            return False
        covering = self._covered_by_handles(filter_)
        covered = self._covers_of_handles(filter_)

        handle = self._next_handle
        self._next_handle += 1
        self._handles[filter_] = handle
        self._by_handle[handle] = filter_
        if filter_.matches_nothing:
            self._bottom = handle
        else:
            shape = filter_shape(filter_)
            group = self._groups.get(shape)
            if group is None:
                group = self._groups[shape] = _Group(shape)
            group.members[handle] = None
            for attribute in shape:
                tag, operand = _classify(_nonall_on(filter_, attribute))
                group.slots[attribute].add(tag, operand, handle)

        mutual = covering & covered
        self._scovered_by[handle] = above = covering - mutual
        self._scovers[handle] = below = covered - mutual
        for other in above:
            self._scovers[other].add(handle)
        for other in below:
            self._scovered_by[other].add(handle)
        return True

    def discard(self, filter_: Filter) -> bool:
        """Remove ``filter_``; False when not present."""
        handle = self._handles.pop(filter_, None)
        if handle is None:
            return False
        del self._by_handle[handle]
        if handle == self._bottom:
            self._bottom = None
        else:
            shape = filter_shape(filter_)
            group = self._groups[shape]
            del group.members[handle]
            for attribute in shape:
                tag, operand = _classify(_nonall_on(filter_, attribute))
                group.slots[attribute].discard(tag, operand, handle)
            if not group.members:
                del self._groups[shape]
        for other in self._scovers.pop(handle):
            self._scovered_by[other].discard(handle)
        for other in self._scovered_by.pop(handle):
            self._scovers[other].discard(handle)
        return True

    # ------------------------------------------------------------------
    # Pruned candidate enumeration + verification
    # ------------------------------------------------------------------

    def _covered_by_handles(self, filter_: Filter) -> Set[int]:
        if filter_.matches_nothing:
            # Everything covers fF — no verification needed.
            return set(self._by_handle)
        shape = filter_shape(filter_)
        classes = {
            attribute: _classify(_nonall_on(filter_, attribute))
            for attribute in shape
        }
        result: Set[int] = set()
        for group_shape, group in self._groups.items():
            if not group_shape <= shape:
                continue
            if not group_shape:
                # ALL-only filters cover every satisfiable filter.
                candidates: Set[int] = set(group.members)
            else:
                # A query attribute classified "other" (multi-constraint
                # conjunction, NE, ...) can imply anything — e.g. an
                # interval proof from two bounds — so the whole group
                # stays candidate there.
                best_attribute = min(
                    group_shape,
                    key=lambda a: (
                        len(group.members)
                        if classes[a][0] is _OTHER
                        else group.slots[a].count_covering(*classes[a])
                    ),
                )
                if classes[best_attribute][0] is _OTHER:
                    candidates = set(group.members)
                else:
                    candidates = group.slots[best_attribute].covering_candidates(
                        *classes[best_attribute]
                    )
            for handle in candidates:
                self.covers_checks += 1
                if self._by_handle[handle].covers(filter_):
                    result.add(handle)
        return result

    def _covers_of_handles(self, filter_: Filter) -> Set[int]:
        result: Set[int] = set()
        if self._bottom is not None:
            # Every filter covers fF.
            result.add(self._bottom)
        if filter_.matches_nothing:
            return result
        shape = filter_shape(filter_)
        classes = {
            attribute: _classify(_nonall_on(filter_, attribute))
            for attribute in shape
        }
        for group_shape, group in self._groups.items():
            if not shape <= group_shape:
                continue
            if not shape:
                candidates: Set[int] = set(group.members)
            else:
                best_attribute = min(
                    shape,
                    key=lambda a: (
                        len(group.members)
                        if classes[a][0] is _OTHER
                        else group.slots[a].count_covered(*classes[a])
                    ),
                )
                if classes[best_attribute][0] is _OTHER:
                    candidates = set(group.members)
                else:
                    candidates = group.slots[best_attribute].covered_candidates(
                        *classes[best_attribute]
                    )
            for handle in candidates:
                self.covers_checks += 1
                if filter_.covers(self._by_handle[handle]):
                    result.add(handle)
        return result

    def __repr__(self) -> str:
        return (
            f"CoveringIndex({len(self)} filters, "
            f"{len(self._groups)} shapes, {len(self.maximal())} maximal)"
        )
