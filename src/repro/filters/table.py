"""The naive filter table of Figure 6.

Each node of the overlay keeps a table ``T`` of entries
``<filter, id1[, id2, ...]>`` mapping a (weakened) filter to the child
nodes or subscribers interested in it.  Matching an event evaluates every
filter in the table — exactly the algorithm the paper presents "for
clarity" in Figure 6.  The production engine is
:class:`repro.filters.index.CountingIndex`; this table doubles as the
correctness oracle for it in the test suite.
"""

from typing import Any, Dict, Hashable, Iterator, List, Tuple

from repro.filters.engine import MatchEngine
from repro.filters.filter import Filter


class FilterTable(MatchEngine):
    """Insertion-ordered map from filter to interested destination ids.

    Implements both "upon receiving a <filter, ID> pair" clauses of
    Figure 6: inserting an existing filter appends the id to its list
    instead of creating a duplicate entry.
    """

    def __init__(self) -> None:
        self._entries: Dict[Filter, List[Hashable]] = {}
        #: Number of filter evaluations performed, for the LC metric.
        self.evaluations = 0

    def insert(self, filter_: Filter, destination: Hashable) -> None:
        """Add ``destination`` to the ids associated with ``filter_``."""
        ids = self._entries.setdefault(filter_, [])
        if destination not in ids:
            ids.append(destination)

    def remove(self, filter_: Filter, destination: Hashable) -> bool:
        """Remove one (filter, destination) association.

        Returns True when the pair was present; drops the whole entry when
        its id list becomes empty.
        """
        ids = self._entries.get(filter_)
        if ids is None or destination not in ids:
            return False
        ids.remove(destination)
        if not ids:
            del self._entries[filter_]
        return True

    def remove_destination(self, destination: Hashable) -> int:
        """Remove ``destination`` from every entry (lease expiry path).

        Returns the number of entries it was removed from.
        """
        removed = 0
        for filter_ in list(self._entries):
            if self.remove(filter_, destination):
                removed += 1
        return removed

    def destinations_for(self, filter_: Filter) -> Tuple[Hashable, ...]:
        """The ids currently associated with exactly this filter."""
        return tuple(self._entries.get(filter_, ()))

    def match(self, event: Any) -> List[Tuple[Filter, Tuple[Hashable, ...]]]:
        """Evaluate every filter against ``event`` (Figure 6 inner loop).

        Returns the matching ``(filter, ids)`` entries in table order.
        """
        if not self._entries:
            return []
        matches = []
        for filter_, ids in self._entries.items():
            self.evaluations += 1
            if filter_.matches(event):
                matches.append((filter_, tuple(ids)))
        return matches

    def filters(self) -> Iterator[Filter]:
        return iter(self._entries)

    def entries(self) -> Iterator[Tuple[Filter, Tuple[Hashable, ...]]]:
        for filter_, ids in self._entries.items():
            yield filter_, tuple(ids)

    def __contains__(self, filter_: Filter) -> bool:
        return filter_ in self._entries

    def __len__(self) -> int:
        """Number of distinct filters — the "# of filter" of the LC metric."""
        return len(self._entries)

    def __repr__(self) -> str:
        return f"FilterTable({len(self)} filters)"
