"""Counting-based filter matching index.

The paper defers "efficient indexing and matching techniques" to related
work (Section 4.6); this module supplies one so the library is usable at
the subscription counts the paper targets (millions).  It implements the
classic *counting algorithm* for conjunctive subscriptions:

1. every constraint of every filter is registered in a per-attribute
   sub-index (hash map for equality, sorted operand arrays for ordering
   operators, linear lists for the rest);
2. matching an event walks only the event's own attributes, collecting
   satisfied constraints and incrementing a per-filter counter;
3. a filter matches iff its counter reaches the number of (non-trivial)
   constraints it registered.

The semantics are identical to :class:`repro.filters.table.FilterTable`
(which the test suite uses as an oracle); only the complexity differs:
matching is proportional to the number of *satisfied* constraints rather
than the number of filters.
"""

import bisect
from collections import defaultdict
from typing import Any, Dict, Hashable, List, Set, Tuple

from repro.filters.constraints import AttributeConstraint
from repro.filters.engine import MatchEngine, value_key
from repro.filters.filter import Filter
from repro.filters.operators import ALL, EQ, EXISTS, GE, GT, LE, LT, values_comparable


class _SortedOperands:
    """Parallel sorted arrays of (operand, handle) for one ordering operator."""

    __slots__ = ("operands", "handles")

    def __init__(self) -> None:
        self.operands: List[Any] = []
        self.handles: List[int] = []

    def insert(self, operand: Any, handle: int) -> bool:
        """Insert keeping sort order; False when the operand family differs
        from what the array already holds (caller falls back to linear)."""
        if self.operands and not values_comparable(self.operands[0], operand):
            return False
        position = bisect.bisect_right(self.operands, operand)
        self.operands.insert(position, operand)
        self.handles.insert(position, handle)
        return True

    def remove(self, operand: Any, handle: int) -> bool:
        # One bisect to the start of the operand's run, then an
        # early-exit scan bounded by the run itself: O(log n + run)
        # instead of a second full bisect plus an unconditional
        # whole-run walk — the run is usually tiny even in huge tables.
        operands = self.operands
        position = bisect.bisect_left(operands, operand)
        end = len(operands)
        while position < end and operands[position] == operand:
            if self.handles[position] == handle:
                del operands[position]
                del self.handles[position]
                return True
            position += 1
        return False

    def satisfied_lt(self, value: Any) -> List[int]:
        """Handles of ``attr < operand`` constraints satisfied by ``value``."""
        return self.handles[bisect.bisect_right(self.operands, value):]

    def satisfied_le(self, value: Any) -> List[int]:
        return self.handles[bisect.bisect_left(self.operands, value):]

    def satisfied_gt(self, value: Any) -> List[int]:
        return self.handles[: bisect.bisect_left(self.operands, value)]

    def satisfied_ge(self, value: Any) -> List[int]:
        return self.handles[: bisect.bisect_right(self.operands, value)]

    def comparable_with(self, value: Any) -> bool:
        return not self.operands or values_comparable(self.operands[0], value)


class _AttributeIndex:
    """All constraints registered on one attribute."""

    __slots__ = ("eq", "lt", "le", "gt", "ge", "exists", "linear")

    def __init__(self) -> None:
        self.eq: Dict[Any, List[int]] = {}
        self.lt = _SortedOperands()
        self.le = _SortedOperands()
        self.gt = _SortedOperands()
        self.ge = _SortedOperands()
        self.exists: List[int] = []
        #: Fallback for NE/PREFIX/CONTAINS and family-mismatched operands.
        self.linear: List[Tuple[AttributeConstraint, int]] = []

    def insert(self, constraint: AttributeConstraint, handle: int) -> None:
        op = constraint.operator
        if op is EQ and _hashable(constraint.operand):
            self.eq.setdefault(_eq_key(constraint.operand), []).append(handle)
            return
        if op is EXISTS:
            self.exists.append(handle)
            return
        sorted_for = {LT: self.lt, LE: self.le, GT: self.gt, GE: self.ge}.get(op)
        if sorted_for is not None and not isinstance(constraint.operand, bool):
            if sorted_for.insert(constraint.operand, handle):
                return
        self.linear.append((constraint, handle))

    def remove(self, constraint: AttributeConstraint, handle: int) -> None:
        op = constraint.operator
        if op is EQ and _hashable(constraint.operand):
            handles = self.eq.get(_eq_key(constraint.operand))
            if handles and handle in handles:
                handles.remove(handle)
                if not handles:
                    del self.eq[_eq_key(constraint.operand)]
                return
        if op is EXISTS and handle in self.exists:
            self.exists.remove(handle)
            return
        sorted_for = {LT: self.lt, LE: self.le, GT: self.gt, GE: self.ge}.get(op)
        if (
            sorted_for is not None
            and not isinstance(constraint.operand, bool)
            and sorted_for.comparable_with(constraint.operand)
            and sorted_for.remove(constraint.operand, handle)
        ):
            return
        for position, (existing, existing_handle) in enumerate(self.linear):
            if existing == constraint and existing_handle == handle:
                del self.linear[position]
                return

    def satisfied_by(self, value: Any, counts: Dict[int, int]) -> int:
        """Increment ``counts`` for every constraint satisfied by ``value``.

        Returns the number of constraint probes actually performed: one
        per satisfied constraint harvested from the hash/sorted/exists
        sub-indexes, plus one per linear-fallback constraint evaluated
        (satisfied or not).  The structural lookups themselves (one hash
        probe, O(log n) bisects) are bookkeeping, not constraint work.
        """
        probes = len(self.exists)
        for handle in self.exists:
            counts[handle] += 1
        if _hashable(value):
            for handle in self.eq.get(_eq_key(value), ()):  # equality probe
                counts[handle] += 1
                probes += 1
        if not isinstance(value, bool):
            for structure, probe in (
                (self.lt, _SortedOperands.satisfied_lt),
                (self.le, _SortedOperands.satisfied_le),
                (self.gt, _SortedOperands.satisfied_gt),
                (self.ge, _SortedOperands.satisfied_ge),
            ):
                if structure.operands and structure.comparable_with(value):
                    for handle in probe(structure, value):
                        counts[handle] += 1
                        probes += 1
        probes += len(self.linear)
        for constraint, handle in self.linear:
            if constraint.matches_value(value, present=True):
                counts[handle] += 1
        return probes

    def is_empty(self) -> bool:
        return not (
            self.eq
            or self.exists
            or self.linear
            or self.lt.operands
            or self.le.operands
            or self.gt.operands
            or self.ge.operands
        )


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


#: Key that separates bools from numbers (1 != True for matching); the
#: same canonicalization the routing cache fingerprints values with.
_eq_key = value_key


class CountingIndex(MatchEngine):
    """Drop-in alternative to :class:`~repro.filters.table.FilterTable`.

    Exposes the same ``insert`` / ``remove`` / ``match`` / ``destinations``
    surface (:class:`~repro.filters.engine.MatchEngine`) so broker nodes
    can use either engine.
    """

    def __init__(self) -> None:
        self._attributes: Dict[str, _AttributeIndex] = {}
        self._filters: Dict[Filter, int] = {}
        self._by_handle: Dict[int, Filter] = {}
        #: handle -> insertion-ordered destination set.
        self._ids: Dict[int, Dict[Hashable, None]] = {}
        #: Reverse map: destination -> handles it appears under, so
        #: ``remove_destination`` (disconnect / lease-expiry churn) walks
        #: only that destination's filters instead of the whole index.
        self._dests: Dict[Hashable, Set[int]] = {}
        self._required: Dict[int, int] = {}
        #: Filters with zero countable constraints (fT / all-wildcard).
        self._always: Set[int] = set()
        self._next_handle = 0
        #: Scratch counter dict reused across ``match`` calls.
        self._counts: Dict[int, int] = defaultdict(int)
        self.evaluations = 0

    def __len__(self) -> int:
        return len(self._filters)

    def __contains__(self, filter_: Filter) -> bool:
        return filter_ in self._filters

    def filters(self):
        return iter(self._filters)

    def entries(self):
        for filter_, handle in self._filters.items():
            yield filter_, tuple(self._ids[handle])

    def destinations_for(self, filter_: Filter) -> Tuple[Hashable, ...]:
        handle = self._filters.get(filter_)
        if handle is None:
            return ()
        return tuple(self._ids[handle])

    def insert(self, filter_: Filter, destination: Hashable) -> None:
        if filter_.matches_nothing:
            raise ValueError("cannot index fF (matches nothing)")
        handle = self._filters.get(filter_)
        if handle is None:
            handle = self._next_handle
            self._next_handle += 1
            self._filters[filter_] = handle
            self._by_handle[handle] = filter_
            self._ids[handle] = {}
            countable = [c for c in filter_.constraints if c.operator is not ALL]
            self._required[handle] = len(countable)
            if not countable:
                self._always.add(handle)
            for constraint in countable:
                index = self._attributes.get(constraint.attribute)
                if index is None:
                    index = self._attributes[constraint.attribute] = _AttributeIndex()
                index.insert(constraint, handle)
        ids = self._ids[handle]
        if destination not in ids:
            ids[destination] = None
            self._dests.setdefault(destination, set()).add(handle)

    def remove(self, filter_: Filter, destination: Hashable) -> bool:
        handle = self._filters.get(filter_)
        if handle is None:
            return False
        ids = self._ids[handle]
        if destination not in ids:
            return False
        del ids[destination]
        handles = self._dests[destination]
        handles.discard(handle)
        if not handles:
            del self._dests[destination]
        if not ids:
            self._unregister(filter_, handle)
        return True

    def remove_destination(self, destination: Hashable) -> int:
        handles = self._dests.get(destination)
        if not handles:
            return 0
        removed = 0
        for handle in sorted(handles):
            if self.remove(self._by_handle[handle], destination):
                removed += 1
        return removed

    def _unregister(self, filter_: Filter, handle: int) -> None:
        for constraint in filter_.constraints:
            if constraint.operator is ALL:
                continue
            index = self._attributes.get(constraint.attribute)
            if index is not None:
                index.remove(constraint, handle)
                if index.is_empty():
                    del self._attributes[constraint.attribute]
        self._always.discard(handle)
        del self._filters[filter_]
        del self._by_handle[handle]
        del self._ids[handle]
        del self._required[handle]

    def match(self, event: Any) -> List[Tuple[Filter, Tuple[Hashable, ...]]]:
        """Matching entries, ordered by filter insertion (handle) order.

        ``evaluations`` grows by the constraint probes actually performed
        (see :meth:`_AttributeIndex.satisfied_by`) — proportional to the
        satisfied constraints, not the filter population — so LC-style
        work accounting is comparable with ``FilterTable``'s per-filter
        evaluation counting: both measure work done, and a cached hit
        upstream costs ~0.
        """
        if not self._filters:
            return []
        properties = getattr(event, "properties", event)
        counts = self._counts
        for attribute, value in properties.items():
            index = self._attributes.get(attribute)
            if index is not None:
                self.evaluations += index.satisfied_by(value, counts)
        if not counts and not self._always:
            return []
        matched = [
            handle
            for handle, count in counts.items()
            if count == self._required[handle]
        ]
        counts.clear()
        matched.extend(self._always)
        matched.sort()
        return [
            (self._by_handle[handle], tuple(self._ids[handle])) for handle in matched
        ]

    def __repr__(self) -> str:
        return f"CountingIndex({len(self)} filters, {len(self._attributes)} attributes)"
