"""Observability: causal event tracing and per-stage time-series sampling.

The metrics package aggregates *per-node* counters (the paper's §5.3
view); this package answers the orthogonal question "what happened to
*this* event at *each* hop?"  :mod:`repro.obs.tracing` records one span
per hop of every published event — publisher, each broker stage, the
subscriber's exact-filter verdict — plus control-plane spans for
retransmits, channel resets, and wire-level drops, and can reconstruct
the full publisher-to-subscriber path of any event id.
:mod:`repro.obs.sampling` samples per-broker gauges (events/s, queue
depth, table size, retransmit rate) on a simulated-time tick.

Both are disabled by default and designed to cost one attribute check
per call site when off (every emission site is guarded by
``if tracer.enabled:`` so no argument tuples or detail dicts are ever
built), and to be byte-for-byte deterministic when on: the same seed
produces an identical :meth:`EventTracer.dump`.
"""

from repro.obs.sampling import StageSampler
from repro.obs.tracing import (
    EventTracer,
    PathReconstruction,
    Span,
    reconstruct_paths,
)

__all__ = [
    "EventTracer",
    "PathReconstruction",
    "Span",
    "StageSampler",
    "reconstruct_paths",
]
