"""Per-stage time-series sampling on a simulated-time tick.

The paper's evaluation reasons from end-of-run aggregates; a chaos run
needs the *time dimension*: how deep did queues get during the fault
window, how fast did tables rebuild after the crash, when did the
retransmit burst subside.  :class:`StageSampler` polls every attached
broker once per tick (driven by :meth:`Simulator.every`) and records

- ``events_per_s``  — events received since the last tick / interval,
- ``queue_depth``   — events queued at the broker right now (via the
  node's public ``queue_depth()`` accessor: inbound + outbound + batch
  queues),
- ``table_size``    — distinct filters currently held,
- ``retransmits_per_s`` — reliable-channel retransmit frames since the
  last tick / interval.

The tick doubles as the overload detector's observation point: a node
exposing an ``overload_detector`` (see :mod:`repro.flow.overload`) gets
its queue depth fed into the EWMA on every tick — overload detection
costs no extra timers.

Sampling shares the simulator's determinism: ticks land at fixed
simulated times, so two same-seed runs produce identical series.
"""

from typing import Any, Dict, List, Sequence, Tuple

from repro.sim.kernel import Simulator

#: The gauges/rates sampled per broker per tick.
METRICS = ("events_per_s", "queue_depth", "table_size", "retransmits_per_s")


class StageSampler:
    """Samples per-broker load series, grouped by hierarchy stage."""

    def __init__(self, sim: Simulator, interval: float = 0.5):
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        #: Tick timestamps (simulated seconds).
        self.times: List[float] = []
        self._nodes: List[Any] = []
        #: ``{node name: {metric: [value per tick]}}``
        self.samples: Dict[str, Dict[str, List[float]]] = {}
        self._stages: Dict[str, int] = {}
        self._last_events: Dict[str, int] = {}
        self._last_retransmits: Dict[str, int] = {}
        self._handle = None

    def attach(self, nodes: Sequence[Any]) -> None:
        """Register broker nodes to sample (before or after :meth:`start`)."""
        for node in nodes:
            if node.name in self.samples:
                continue
            self._nodes.append(node)
            self._stages[node.name] = node.stage
            self.samples[node.name] = {metric: [] for metric in METRICS}
            self._last_events[node.name] = node.counters.events_received
            self._last_retransmits[node.name] = node.counters.control_retransmits

    def start(self) -> None:
        """Begin ticking every ``interval`` simulated seconds."""
        if self._handle is None:
            self._handle = self.sim.every(self.interval, self._tick)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return self._handle is not None

    def _tick(self) -> None:
        self.times.append(self.sim.now)
        for node in self._nodes:
            series = self.samples[node.name]
            received = node.counters.events_received
            retransmits = node.counters.control_retransmits
            series["events_per_s"].append(
                (received - self._last_events[node.name]) / self.interval
            )
            series["retransmits_per_s"].append(
                (retransmits - self._last_retransmits[node.name]) / self.interval
            )
            depth = node.queue_depth()
            series["queue_depth"].append(float(depth))
            series["table_size"].append(float(len(node.table)))
            detector = getattr(node, "overload_detector", None)
            if detector is not None:
                detector.observe(self.sim.now, depth)
            self._last_events[node.name] = received
            self._last_retransmits[node.name] = retransmits

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------

    def node_series(self, metric: str) -> List[Tuple[str, List[float]]]:
        """``(node name, series)`` per attached node, attachment order."""
        self._require(metric)
        return [(name, list(series[metric])) for name, series in self.samples.items()]

    def stage_series(self, metric: str) -> List[Tuple[str, List[float]]]:
        """Per-stage series: the metric summed over each stage's nodes."""
        self._require(metric)
        by_stage: Dict[int, List[float]] = {}
        for name, series in self.samples.items():
            stage = self._stages[name]
            values = series[metric]
            current = by_stage.get(stage)
            if current is None:
                by_stage[stage] = list(values)
            else:
                for i, value in enumerate(values):
                    current[i] += value
        return [
            (f"stage {stage}", values)
            for stage, values in sorted(by_stage.items(), reverse=True)
        ]

    def peak(self, metric: str) -> List[Tuple[str, float]]:
        """Per-node peak of one metric, highest first (name breaks ties)."""
        self._require(metric)
        peaks = [
            (name, max(series[metric]) if series[metric] else 0.0)
            for name, series in self.samples.items()
        ]
        peaks.sort(key=lambda item: (-item[1], item[0]))
        return peaks

    def _require(self, metric: str) -> None:
        if metric not in METRICS:
            raise KeyError(f"unknown metric {metric!r}; have {METRICS}")
