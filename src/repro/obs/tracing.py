"""Causal event tracing: one span per hop of every published event.

Every published envelope already carries a stable identity —
``event_id = (publisher name, publish sequence)`` — which doubles as the
**trace id**: no extra context needs to travel on the wire.  Each hop of
the event's path appends a :class:`Span` to the shared
:class:`EventTracer`:

- ``publish`` at the publisher (event class, publish time),
- ``hop`` at each broker stage (which neighbour it came from, cache
  hit/miss, constraint probes, match verdict, fan-out, queue/defer
  time),
- ``deliver`` at the subscriber runtime (exact-filter verdict, delivery
  latency).

Control-plane occurrences record spans with ``trace_id=None``:
``retransmit`` (reliable-channel timeout resends, with the payload kinds
— ReqInsert/Withdraw/Renewal — being retried), ``epoch-reset`` /
``channel-reset`` (sender/receiver sides of a channel incarnation bump),
and wire-level ``drop`` / ``dup`` spans from the fault injector.

Flow control (see :mod:`repro.flow`) adds three kinds: ``shed`` (an
event dropped by a bounded queue — carries the reason, and the event's
trace id when one exists, so a missing delivery is explainable),
``credit-grant`` (credits flowing back upstream, ``trace_id=None``), and
``overload`` (a broker's overload-detector transition, with the new
state and the queue-depth EWMA).

The durable log and replayer (see :mod:`repro.log`) add their own:
``replay`` (one re-injected event, **sharing the original event's trace
id** with a ``mode`` of ``history``/``tap``/``recovery``),
``credit-gap`` (the root re-crediting events a lossy wire swallowed,
detected via data-frame sequence gaps), ``replay-request`` (a restarted
broker asking the root to resend from its last logged offset), and the
session markers ``catch-up-start`` / ``catch-up-done`` /
``catch-up-live`` and ``recovery-start`` / ``recovery-done`` (all
``trace_id=None``).  Replayed deliveries at the subscriber are ordinary
``deliver`` spans with a ``replay`` detail, so the audit verifier
(:func:`repro.log.audit.verify_exactly_once`) counts live and replayed
copies uniformly.

In-broker information flows (see :mod:`repro.streams`, DESIGN §15) add:
``publish`` **at the deriving broker** (derived events re-enter the
publish path with the broker in the publisher role, so path
reconstruction anchors there), ``derive`` (same trace id as that
publish; names the flow, the operator kind, and the contributing input
trace ids — the causal link from a derived event back to the raw events
it summarizes), ``window-dropped`` (a crash discarding one open window's
soft state: flow, group, window start, pending count — the span the
audit's excusal windows are computed from), and the lifecycle markers
``flow-install`` / ``flow-remove`` / ``flow-renew`` (``trace_id=None``).

Determinism: spans are appended in simulator execution order, which is
deterministic for a fixed seed; every recorded value is derived from
names, simulated times, and counters — never from ``id()``, wall clocks,
or hash iteration order — so :meth:`EventTracer.dump` is byte-identical
across runs with the same seed.

Cost when disabled: emission sites are guarded by ``if tracer.enabled:``
*before* building any arguments, so a disabled tracer costs one
attribute load and branch per site and allocates nothing.
"""

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Stage pseudo-numbers for non-broker span sources.  Subscriber runtimes
#: are the paper's stage 0; publishers sit "above" the root on the inject
#: path and network-level spans have no stage at all.
PUBLISHER_STAGE = -1
NETWORK_STAGE = -2
SUBSCRIBER_STAGE = 0


@dataclass(frozen=True)
class Span:
    """One hop (or control-plane occurrence) of a trace.

    ``details`` is a tuple of ``(key, value)`` pairs rather than a dict so
    a span is hashable and its rendering order is fixed at emission.
    """

    seq: int
    time: float
    kind: str
    node: str
    stage: int
    trace_id: Optional[Tuple[Any, ...]]
    details: Tuple[Tuple[str, Any], ...] = ()

    def detail(self, key: str, default: Any = None) -> Any:
        for k, v in self.details:
            if k == key:
                return v
        return default

    def render(self) -> str:
        """One deterministic text line (the unit of :meth:`EventTracer.dump`)."""
        parts = [
            f"{self.seq}",
            f"t={self.time!r}",
            self.kind,
            f"@{self.node}",
            f"stage={self.stage}",
        ]
        if self.trace_id is not None:
            parts.append(f"id={self.trace_id[0]}/{self.trace_id[1]}")
        parts.extend(f"{key}={value!r}" for key, value in self.details)
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"Span({self.render()})"


class EventTracer:
    """Append-only span sink shared by every process of one system.

    ``enabled`` is the only hot-path state: emission sites check it
    before building span arguments, and :meth:`span` re-checks it so a
    stray unguarded call site stays correct (just slower).
    """

    __slots__ = ("enabled", "_spans", "_seq")

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._spans: List[Span] = []
        self._seq = 0

    def span(
        self,
        time: float,
        kind: str,
        node: str,
        stage: int,
        trace_id: Optional[Tuple[Any, ...]] = None,
        details: Tuple[Tuple[str, Any], ...] = (),
    ) -> None:
        """Append one span (no-op when disabled)."""
        if not self.enabled:
            return
        self._spans.append(Span(self._seq, time, kind, node, stage, trace_id, details))
        self._seq += 1

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self._seq = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def for_event(self, trace_id: Tuple[Any, ...]) -> List[Span]:
        """Spans of one event, in execution (= causal) order."""
        return [s for s in self._spans if s.trace_id == trace_id]

    def event_ids(self) -> List[Tuple[Any, ...]]:
        """Distinct trace ids in first-seen order."""
        seen: Dict[Tuple[Any, ...], None] = {}
        for span in self._spans:
            if span.trace_id is not None and span.trace_id not in seen:
                seen[span.trace_id] = None
        return list(seen)

    def kinds(self, *kinds: str) -> List[Span]:
        """All spans of the given kinds, in execution order."""
        wanted = set(kinds)
        return [s for s in self._spans if s.kind in wanted]

    def dump(self, kinds: Optional[Tuple[str, ...]] = None) -> bytes:
        """Byte-deterministic serialization of the trace.

        ``kinds`` restricts the dump to the given span kinds (the
        determinism gates compare e.g. only shed/credit/overload spans
        across same-seed runs)."""
        spans = self._spans if kinds is None else self.kinds(*kinds)
        return "\n".join(s.render() for s in spans).encode("utf-8")

    # ------------------------------------------------------------------
    # Path reconstruction
    # ------------------------------------------------------------------

    def reconstruct(self, trace_id: Tuple[Any, ...]) -> List["PathReconstruction"]:
        """Reconstruct every delivery path of one event (see
        :func:`reconstruct_paths`)."""
        return reconstruct_paths(self.for_event(trace_id))

    def incomplete_deliveries(self) -> List["PathReconstruction"]:
        """Every delivery whose span chain does *not* reach a publisher.

        The trace-completeness gate: an empty list means every delivered
        event's spans reconstruct a contiguous publisher-to-subscriber
        path.  Deliveries where the exact filter rejected the event are
        not deliveries and are ignored.
        """
        broken: List[PathReconstruction] = []
        for trace_id in self.event_ids():
            for path in self.reconstruct(trace_id):
                if path.delivered and not path.complete:
                    broken.append(path)
        return broken


@dataclass(frozen=True)
class PathReconstruction:
    """One subscriber's reconstructed path for one event.

    ``spans`` runs source-first: publish span (when found), then broker
    hops top stage downward, then the deliver span.  ``complete`` means
    the chain is contiguous from a publish span to the deliver span with
    a hop span at every broker in between.
    """

    trace_id: Tuple[Any, ...]
    subscriber: str
    spans: Tuple[Span, ...]
    complete: bool
    delivered: bool

    @property
    def hop_latencies(self) -> List[Tuple[str, int, float]]:
        """``(node, stage, seconds since previous hop)`` per chain link."""
        out: List[Tuple[str, int, float]] = []
        for previous, span in zip(self.spans, self.spans[1:]):
            out.append((span.node, span.stage, span.time - previous.time))
        return out

    def render(self) -> str:
        """Human-readable multi-line path listing."""
        head = (
            f"event {self.trace_id[0]}/{self.trace_id[1]} -> {self.subscriber} "
            f"({'complete' if self.complete else 'BROKEN'}"
            f"{', delivered' if self.delivered else ', filtered out'})"
        )
        lines = [head]
        previous = None
        for span in self.spans:
            delta = "" if previous is None else f" (+{span.time - previous:.6g}s)"
            detail = " ".join(f"{k}={v!r}" for k, v in span.details)
            lines.append(
                f"  [{span.time:.6f}] {span.kind:<8} stage={span.stage:>2} "
                f"{span.node}{delta} {detail}".rstrip()
            )
            previous = span.time
        return "\n".join(lines)


def reconstruct_paths(spans: List[Span]) -> List[PathReconstruction]:
    """Rebuild per-subscriber paths from one event's spans.

    Works backwards from each ``deliver`` span: its ``src`` detail names
    the home broker; each broker ``hop`` span's ``src`` names the
    neighbour it received the event from; the chain is complete when it
    reaches a node with a ``publish`` span.  The overlay is a tree, so a
    broker receives a given event from exactly one upstream neighbour
    (fault-injected duplicates repeat the same edge) and the backwards
    walk is unambiguous.
    """
    publishes: Dict[str, Span] = {}
    hops: Dict[str, Span] = {}
    delivers: List[Span] = []
    for span in spans:
        if span.kind == "publish":
            publishes.setdefault(span.node, span)
        elif span.kind == "hop":
            hops.setdefault(span.node, span)
        elif span.kind == "deliver":
            delivers.append(span)

    paths: List[PathReconstruction] = []
    for deliver in delivers:
        chain: List[Span] = [deliver]
        cursor = deliver.detail("src")
        complete = False
        visited = {deliver.node}
        while cursor is not None and cursor not in visited:
            visited.add(cursor)
            publish = publishes.get(cursor)
            if publish is not None:
                chain.append(publish)
                complete = True
                break
            hop = hops.get(cursor)
            if hop is None:
                break
            chain.append(hop)
            cursor = hop.detail("src")
        chain.reverse()
        paths.append(
            PathReconstruction(
                trace_id=deliver.trace_id,
                subscriber=deliver.node,
                spans=tuple(chain),
                complete=complete,
                delivered=bool(deliver.detail("delivered", 0)),
            )
        )
    return paths
