"""Token-bucket rate limiter over simulated time.

Publishers apply this *before* spending link credits: a publisher that
exceeds its contracted rate is throttled at the source instead of
consuming overlay capacity and forcing brokers to shed.  The bucket
refills continuously at ``rate`` tokens per simulated second up to
``burst``; time comes from the caller (the simulator clock), never a
wall clock, so limited runs stay deterministic.
"""


class RateLimiter:
    """Continuous-refill token bucket."""

    __slots__ = ("rate", "burst", "tokens", "_last", "denied")

    def __init__(self, rate: float, burst: float, now: float = 0.0):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = float(burst)
        self._last = now
        #: Requests rejected for lack of tokens.
        self.denied = 0

    def allow(self, now: float, n: float = 1.0) -> bool:
        """Spend ``n`` tokens at simulated time ``now`` if available."""
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
            self._last = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        self.denied += 1
        return False

    @property
    def available(self) -> float:
        """Tokens available as of the last :meth:`allow` call."""
        return self.tokens

    def __repr__(self) -> str:
        return f"RateLimiter(rate={self.rate}, tokens={self.tokens:.2f}/{self.burst})"
