"""Sender-side credit window for one data link.

The scheme is receiver-driven: a link starts with ``capacity`` credits;
the sender spends one per event it puts on the wire and the receiver
grants them back one-for-one as it *processes* (not merely receives)
events, so the window bounds in-flight + receiver-queued events.  Grants
travel on the reliable control channel, which makes the loop loss-proof:
a grant dropped by the wire is retransmitted until acked.

Crash handling is reset-to-full: a restarting peer announces a fresh
incarnation (``ChannelReset`` or a new channel epoch) and both sides
discard their window state — credits consumed by events that died with
the crash are not leaked, they are forgotten with the incarnation.
"""


class CreditWindow:
    """Spend/grant bookkeeping for the sending side of one link."""

    __slots__ = ("capacity", "available", "stalls")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"credit window capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.available = capacity
        #: Times ``take`` failed (the sender had to queue locally).
        self.stalls = 0

    def take(self, n: int = 1) -> bool:
        """Spend ``n`` credits; False (and no change) when short."""
        if self.available >= n:
            self.available -= n
            return True
        self.stalls += 1
        return False

    def grant(self, n: int) -> None:
        """Receiver granted ``n`` credits back (capped at capacity: the
        receiver only grants for events this window paid for, so the cap
        can bind only across an incarnation mismatch — where full is the
        correct, deadlock-free answer)."""
        if n < 0:
            raise ValueError(f"cannot grant negative credits ({n})")
        self.available = min(self.capacity, self.available + n)

    def reset(self) -> None:
        """Back to a full window (peer lost its state: fresh incarnation)."""
        self.available = self.capacity

    @property
    def exhausted(self) -> bool:
        return self.available == 0

    def __repr__(self) -> str:
        return f"CreditWindow({self.available}/{self.capacity})"
