"""Bounded queues with explicit, observable shedding policies.

Every queue the overlay grows under load — broker inbound queues,
per-link outbound (credit-blocked) queues, publisher local queues,
durable offline buffers — is bounded by a :class:`BoundedQueue`.  On
overflow the queue *returns* what it shed instead of discarding it
silently; the owner counts the loss and emits a ``shed`` tracing span.

Policies:

- ``drop_tail``: reject the arriving item (protects established work).
- ``drop_oldest``: evict the head to admit the arrival (freshness wins —
  the semantics durable offline buffers have always had, now explicit).
- ``priority_by_selectivity``: evict the lowest-priority item, where
  priority comes from a caller-supplied estimator — brokers use the
  covering index's per-form match counts, so the event predicted to
  reach the fewest subscribers is shed first.  Ties evict the oldest
  (deterministic: no hash order, no randomness).
"""

from collections import deque
from typing import Any, Callable, Deque, Iterator, List, Optional, Tuple

#: The recognised shedding policies.
POLICIES = ("drop_tail", "drop_oldest", "priority_by_selectivity")


class BoundedQueue:
    """FIFO queue with a capacity and a shedding policy.

    ``capacity=None`` means unbounded (``offer`` never sheds) — the
    uncontrolled baseline the overload experiments compare against.
    ``priority`` maps an item to a number (higher = keep longer); it is
    only consulted by ``priority_by_selectivity`` and is evaluated once
    per item, at admission.
    """

    __slots__ = ("capacity", "policy", "priority", "_items", "_priorities")

    def __init__(
        self,
        capacity: Optional[int],
        policy: str = "drop_tail",
        priority: Optional[Callable[[Any], float]] = None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        if policy not in POLICIES:
            raise ValueError(f"unknown shedding policy {policy!r}; have {POLICIES}")
        self.capacity = capacity
        self.policy = policy
        self.priority = priority
        self._items: Deque[Any] = deque()
        self._priorities: Optional[Deque[float]] = (
            deque() if policy == "priority_by_selectivity" else None
        )

    def offer(
        self, item: Any, capacity: Optional[int] = None
    ) -> Tuple[bool, List[Any]]:
        """Try to enqueue ``item``; returns ``(accepted, shed_items)``.

        ``capacity`` overrides the configured bound for this call (the
        overload detector shrinks a broker's effective capacity while it
        is in shedding mode).
        """
        limit = self.capacity if capacity is None else capacity
        if limit is None or len(self._items) < limit:
            self._append(item)
            return True, []
        if self.policy == "drop_tail":
            return False, [item]
        if self.policy == "drop_oldest":
            shed = self._pop_index(0)
            self._append(item)
            return True, [shed]
        # priority_by_selectivity: evict the lowest-priority entry; the
        # arrival itself loses ties against the queue (oldest-first scan
        # already prefers evicting older equal-priority entries).
        arriving = self.priority(item) if self.priority is not None else 0.0
        assert self._priorities is not None
        victim_index = 0
        victim_priority = self._priorities[0]
        for index, value in enumerate(self._priorities):
            if value < victim_priority:
                victim_index = index
                victim_priority = value
        if arriving <= victim_priority:
            return False, [item]
        shed = self._pop_index(victim_index)
        self._append(item, arriving)
        return True, [shed]

    def popleft(self) -> Any:
        item = self._items.popleft()
        if self._priorities is not None:
            self._priorities.popleft()
        return item

    def drain(self) -> List[Any]:
        """Remove and return everything (e.g. sheds on a peer reset)."""
        items = list(self._items)
        self.clear()
        return items

    def clear(self) -> None:
        self._items.clear()
        if self._priorities is not None:
            self._priorities.clear()

    def _append(self, item: Any, priority: Optional[float] = None) -> None:
        self._items.append(item)
        if self._priorities is not None:
            if priority is None:
                priority = self.priority(item) if self.priority is not None else 0.0
            self._priorities.append(priority)

    def _pop_index(self, index: int) -> Any:
        if index == 0:
            return self.popleft()
        item = self._items[index]
        del self._items[index]
        if self._priorities is not None:
            del self._priorities[index]
        return item

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __repr__(self) -> str:
        bound = "inf" if self.capacity is None else str(self.capacity)
        return f"BoundedQueue({len(self._items)}/{bound}, {self.policy})"
