"""Configuration bundle for the flow-control subsystem."""

from dataclasses import dataclass
from typing import Optional

from repro.flow.shedding import POLICIES


@dataclass(frozen=True)
class FlowConfig:
    """Knobs for credit flow control, shedding, and overload detection.

    Passing a ``FlowConfig`` to :class:`~repro.core.engine.
    MultiStageEventSystem` (or directly to brokers/publishers) turns the
    subsystem on; ``None`` keeps the pre-flow behaviour bit-for-bit.
    """

    #: Broker inbound event queue bound (events awaiting processing).
    queue_capacity: int = 128
    #: Per-downstream-link bound on events blocked waiting for credits.
    outbound_capacity: int = 64
    #: Credits a data link starts with (receiver grants them back
    #: one-for-one as it processes, so this is the max in-flight +
    #: receiver-queued events per link).
    link_window: int = 32
    #: Bound on a reliable control channel's outstanding-frame set.
    control_window: int = 64
    #: Shedding policy on queue overflow: one of
    #: ``drop_tail`` / ``drop_oldest`` / ``priority_by_selectivity``.
    policy: str = "drop_tail"
    #: Publisher-side local queue bound (events waiting for credits).
    publisher_queue_capacity: int = 256
    #: Publisher token-bucket rate in events/s (``None`` = no limiter).
    publisher_rate: Optional[float] = None
    #: Publisher token-bucket burst size.
    publisher_burst: float = 16.0
    #: Overload detector: EWMA smoothing factor for queue depth.
    ewma_alpha: float = 0.4
    #: Enter OVERLOADED when the EWMA exceeds this fraction of
    #: ``queue_capacity``...
    overload_high: float = 0.75
    #: ...and return to NORMAL when it falls below this fraction
    #: (hysteresis: ``overload_low < overload_high``).
    overload_low: float = 0.25
    #: Effective inbound capacity fraction while OVERLOADED (shedding
    #: mode: admit less, recover faster).
    overload_capacity_factor: float = 0.5
    #: Return credits for events a lossy link swallowed, detected via the
    #: per-link sequence numbers on data frames (the DESIGN §10
    #: credit-leak fix).  ``False`` keeps the leaky pre-fix accounting
    #: (same wire format) for ablation.
    gap_grant: bool = True

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.outbound_capacity < 1:
            raise ValueError(
                f"outbound_capacity must be >= 1, got {self.outbound_capacity}"
            )
        if self.link_window < 1:
            raise ValueError(f"link_window must be >= 1, got {self.link_window}")
        if self.control_window < 1:
            raise ValueError(f"control_window must be >= 1, got {self.control_window}")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown shedding policy {self.policy!r}; have {POLICIES}")
        if self.publisher_queue_capacity < 1:
            raise ValueError(
                "publisher_queue_capacity must be >= 1, got "
                f"{self.publisher_queue_capacity}"
            )
        if self.publisher_rate is not None and self.publisher_rate <= 0:
            raise ValueError(
                f"publisher_rate must be positive, got {self.publisher_rate}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if not 0.0 <= self.overload_low < self.overload_high:
            raise ValueError(
                "need 0 <= overload_low < overload_high, got "
                f"low={self.overload_low} high={self.overload_high}"
            )
        if not 0.0 < self.overload_capacity_factor <= 1.0:
            raise ValueError(
                "overload_capacity_factor must be in (0, 1], got "
                f"{self.overload_capacity_factor}"
            )
