"""Per-broker overload detection: queue-depth EWMA with hysteresis.

A broker cannot tell overload from a transient burst by looking at one
queue-depth sample; the detector smooths the depth with an exponentially
weighted moving average and runs a two-state machine over it:

    NORMAL --[ewma >= high * capacity]--> OVERLOADED
    OVERLOADED --[ewma <= low * capacity]--> NORMAL

The high/low watermarks (``low < high``) give hysteresis so the state
does not flap at the threshold.  While OVERLOADED the broker switches to
shedding mode (its effective inbound capacity shrinks, see
:class:`~repro.flow.config.FlowConfig.overload_capacity_factor`), which
drains the backlog faster and keeps admitted-event latency bounded.

Observation rides the existing :class:`~repro.obs.sampling.StageSampler`
tick — no extra timers — via the broker's public ``queue_depth()``
accessor; ticks land at fixed simulated times, so detector transitions
are as deterministic as everything else.
"""

from typing import Callable, Optional

NORMAL = "normal"
OVERLOADED = "overloaded"

#: ``on_transition(new_state, simulated_time, ewma)``.
TransitionHook = Callable[[str, float, float], None]


class OverloadDetector:
    """EWMA-of-queue-depth state machine for one broker."""

    __slots__ = (
        "capacity",
        "alpha",
        "high",
        "low",
        "state",
        "ewma",
        "transitions",
        "on_transition",
    )

    def __init__(
        self,
        capacity: int,
        alpha: float = 0.4,
        high: float = 0.75,
        low: float = 0.25,
        on_transition: Optional[TransitionHook] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= low < high:
            raise ValueError(f"need 0 <= low < high, got low={low} high={high}")
        self.capacity = capacity
        self.alpha = alpha
        self.high = high * capacity
        self.low = low * capacity
        self.state = NORMAL
        self.ewma = 0.0
        self.transitions = 0
        self.on_transition = on_transition

    def observe(self, now: float, depth: int) -> Optional[str]:
        """Feed one queue-depth sample; returns the new state on a
        transition, ``None`` otherwise."""
        self.ewma = self.alpha * depth + (1.0 - self.alpha) * self.ewma
        if self.state == NORMAL and self.ewma >= self.high:
            return self._transition(OVERLOADED, now)
        if self.state == OVERLOADED and self.ewma <= self.low:
            return self._transition(NORMAL, now)
        return None

    def _transition(self, state: str, now: float) -> str:
        self.state = state
        self.transitions += 1
        if self.on_transition is not None:
            self.on_transition(state, now, self.ewma)
        return state

    @property
    def overloaded(self) -> bool:
        return self.state == OVERLOADED

    def reset(self) -> None:
        """Forget history (broker crash wipes soft state)."""
        self.state = NORMAL
        self.ewma = 0.0

    def __repr__(self) -> str:
        return f"OverloadDetector({self.state}, ewma={self.ewma:.2f})"
