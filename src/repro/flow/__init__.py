"""Flow control, backpressure, and overload protection.

The paper's scalability argument (§5) bounds per-broker *filtering* cost;
this package bounds the *arrival* side, which the paper leaves implicit:
without it every queue in the overlay is unbounded, and a fast publisher
or a slow stage-2 broker grows memory without limit while the simulator
happily models an OOM as "fine".  Gryphon frames brokering as
information *flow* for exactly this reason — flow must be controlled end
to end, not just filtered.

Four small, simulator-agnostic mechanisms compose into the overlay's
overload story (wired up in ``overlay/`` and ``obs/``):

- :class:`CreditWindow` — the sender half of credit-based per-link flow
  control.  Receivers grant credits one-for-one as they *process*
  events; grants ride the existing reliable control channel (so a grant
  lost to the wire is retransmitted, never deadlocking the loop), and
  senders block/queue locally when the window empties — backpressure
  propagates hop-by-hop from a slow broker back to the publishers.
- :class:`BoundedQueue` — a capacity-limited queue with pluggable
  shedding policies (``drop_tail``, ``drop_oldest``,
  ``priority_by_selectivity``).  Every shed is returned to the caller,
  which counts it and emits a tracing span: loss is observable, never
  silent.
- :class:`RateLimiter` — a token bucket over *simulated* time, applied
  at publishers to cap offered load at the source.
- :class:`OverloadDetector` — a queue-depth EWMA with hysteresis,
  observed on the existing :class:`~repro.obs.sampling.StageSampler`
  tick, that flips a broker between NORMAL and OVERLOADED shedding
  modes.

:class:`FlowConfig` bundles the knobs; everything here is deterministic
(no wall clocks, no ``id()``, no hash-order iteration) so flow-controlled
runs stay byte-identical across same-seed executions.
"""

from repro.flow.config import FlowConfig
from repro.flow.credits import CreditWindow
from repro.flow.overload import NORMAL, OVERLOADED, OverloadDetector
from repro.flow.ratelimit import RateLimiter
from repro.flow.shedding import POLICIES, BoundedQueue

__all__ = [
    "FlowConfig",
    "CreditWindow",
    "BoundedQueue",
    "POLICIES",
    "RateLimiter",
    "OverloadDetector",
    "NORMAL",
    "OVERLOADED",
]
